"""Benchmarks: ablations of the paper's design choices.

One benchmark per knob — promotion threshold, miss-penalty factor,
sequential-probe cost, replacement policy, split TLBs and the
multiprogramming mix the paper lists as missing from its traces.
"""

from conftest import run_once

from repro.experiments import (
    run_multiprogramming_ablation,
    run_penalty_ablation,
    run_probe_ablation,
    run_replacement_ablation,
    run_split_ablation,
    run_threshold_ablation,
)


def test_threshold_ablation(benchmark, scale, publish):
    result = run_once(benchmark, lambda: run_threshold_ablation(scale))
    publish("ablation_threshold", result.render())
    for name in result.ws:
        assert result.ws[name][0.25] >= result.ws[name][1.0] - 1e-9


def test_penalty_ablation(benchmark, scale, publish):
    result = run_once(benchmark, lambda: run_penalty_ablation(scale))
    publish("ablation_penalty", result.render())
    assert result.breakeven_factor("matrix300") >= 2.0
    assert result.breakeven_factor("espresso") <= 1.0


def test_probe_ablation(benchmark, scale, publish):
    result = run_once(benchmark, lambda: run_probe_ablation(scale))
    publish("ablation_probe", result.render())
    for name in result.misses:
        assert result.reprobes[name] >= result.misses[name]


def test_replacement_ablation(benchmark, scale, publish):
    result = run_once(benchmark, lambda: run_replacement_ablation(scale))
    publish("ablation_replacement", result.render())
    for name in result.cpi:
        assert result.cpi[name]["lru"] <= 2.0 * min(result.cpi[name].values())


def test_split_ablation(benchmark, scale, publish):
    result = run_once(benchmark, lambda: run_split_ablation(scale))
    publish("ablation_split", result.render())
    assert result.large_utilisation["espresso"] == 0.0


def test_multiprogramming_ablation(benchmark, scale, publish):
    result = run_once(benchmark, lambda: run_multiprogramming_ablation(scale))
    publish("ablation_multiprogramming", result.render())
    for value in result.mixed_cpi.values():
        assert value >= min(result.solo_cpi.values())
    for quantum in result.quanta:
        assert (
            result.mixed_cpi[("asid", quantum)]
            <= result.mixed_cpi[("flush", quantum)] + 1e-9
        )


def test_walkcost_ablation(benchmark, scale, publish):
    from repro.experiments import run_walkcost_ablation

    result = run_once(benchmark, lambda: run_walkcost_ablation(scale))
    publish("ablation_walkcost", result.render())
    assert result.blended_factor["espresso"] == 1.0
    assert result.blended_factor["matrix300"] > 1.05


def test_memdemand(benchmark, scale, publish):
    from repro.experiments import run_memdemand

    result = run_once(benchmark, lambda: run_memdemand(scale))
    publish("memdemand", result.render())
    tight = result.memory_sizes[0]
    assert (
        result.fault_ratio[("worm", "32KB", tight)]
        > result.fault_ratio[("worm", "4KB", tight)]
    )


def test_twolevel_ablation(benchmark, scale, publish):
    from repro.experiments import run_twolevel_ablation

    result = run_once(benchmark, lambda: run_twolevel_ablation(scale))
    publish("ablation_twolevel", result.render())
    assert max(result.l2_hit_rate.values()) > 0.3
