"""Benchmark: regenerate Figure 4.1 (WS_Normalized vs page size).

Paper shape: inflation grows with page size for every program; dense
linear-loopers (matrix300, nasa7, tomcatv) barely inflate while sparse
programs (worm, espresso, li) inflate several-fold; the cross-workload
average lands near the paper's 1.67 at 32KB / 2.03 at 64KB.
"""

from conftest import run_once

from repro.experiments import run_fig41
from repro.types import PAGE_8KB, PAGE_32KB, PAGE_64KB


def test_fig41(benchmark, scale, publish):
    result = run_once(benchmark, lambda: run_fig41(scale))
    publish("fig41", result.render())

    for name, per_size in result.values.items():
        assert per_size[PAGE_64KB] >= per_size[PAGE_8KB] - 1e-9, name
    assert result.values["matrix300"][PAGE_32KB] < result.values["worm"][
        PAGE_32KB
    ]
    assert 1.3 < result.average(PAGE_32KB) < 2.8
    assert result.average(PAGE_64KB) >= result.average(PAGE_32KB)
