"""Benchmark: regenerate Figure 4.2 (WS_Normalized, single vs two sizes).

Paper shape: the two-page-size scheme inflates working sets less than
any single page size above 4KB — about 10% on average (paper range
1.01-1.22) versus ~24% even for 8KB pages.
"""

from conftest import run_once

from repro.experiments import run_fig42
from repro.types import PAGE_8KB


def test_fig42(benchmark, scale, publish):
    result = run_once(benchmark, lambda: run_fig42(scale))
    publish("fig42", result.render())

    # Per program, two sizes track or beat the cheapest single size (a
    # small slack covers low-inflation programs like fpppp, where eager
    # promotion of half-warm code chunks costs a few percent more than
    # 8KB pages; see EXPERIMENTS.md).
    for name in result.workloads():
        smallest_single = min(result.single[name].values())
        assert result.two_size[name] <= smallest_single + 0.10, name
    assert result.average_two_size() < result.average_single(PAGE_8KB)
    assert result.average_two_size() < 1.25
    # Promotion-starved programs sit exactly at the 4KB baseline.
    assert result.two_size["espresso"] < 1.02
    assert result.two_size["worm"] < 1.02
