"""Benchmark: regenerate Figure 5.1 (CPI_TLB, 16-entry fully associative).

Paper shape: 32KB pages cut CPI_TLB by a large factor (three to eight,
sometimes more) versus 4KB; the two-page-size bars land close to the
32KB bars (the gap is mostly the 25% penalty), and 8KB sits in between.
"""


from conftest import run_once

from repro.experiments import run_fig51
from repro.metrics import geometric_mean
from repro.types import PAGE_4KB, PAGE_8KB, PAGE_32KB


def test_fig51(benchmark, scale, publish):
    result = run_once(benchmark, lambda: run_fig51(scale))
    publish("fig51", result.render())

    reductions = []
    for name in result.workloads():
        four = result.single[name][PAGE_4KB].cpi_tlb
        eight = result.single[name][PAGE_8KB].cpi_tlb
        large = result.single[name][PAGE_32KB].cpi_tlb
        assert large <= eight + 1e-9 <= four + 2e-9, name
        if large > 0:
            reductions.append(four / large)
    # Paper: "factors of about three to eight (sometimes more)".
    assert geometric_mean(reductions) > 3.0

    # Two sizes beat the single 4KB page for most programs on the FA TLB.
    winners = [
        name
        for name in result.workloads()
        if result.two_size[name].cpi_tlb
        < result.single[name][PAGE_4KB].cpi_tlb
    ]
    assert len(winners) >= 9
