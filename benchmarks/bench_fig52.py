"""Benchmark: regenerate Figure 5.2 (CPI_TLB, two-way set-associative).

Paper shape: large pages mostly help; a solid majority of the twelve
programs (paper: eight) improve with two page sizes over single 4KB even
with the higher penalty; espresso and worm degrade; tomcatv thrashes
dramatically once chunk bits index the TLB.
"""

from conftest import run_once

from repro.experiments import run_fig52
from repro.types import PAGE_4KB, PAGE_32KB


def test_fig52(benchmark, scale, publish):
    result = run_once(benchmark, lambda: run_fig52(scale))
    publish("fig52", result.render())

    for entries in (16, 32):
        improving = [
            name
            for name in result.workloads()
            if result.improves_with_two_sizes(name, entries)
        ]
        assert len(improving) >= 7, (entries, improving)
        # The degraders of Table 5.1.
        assert "espresso" not in improving
        assert "worm" not in improving
        assert "tomcatv" not in improving

    # The anomaly: tomcatv's two-size CPI exceeds its 4KB CPI severalfold.
    anomaly = (
        result.two_size["tomcatv"][16].cpi_tlb
        / result.single["tomcatv"][(16, PAGE_4KB)].cpi_tlb
    )
    assert anomaly > 2.0

    # matrix300: the paper's flagship large-page win.
    assert (
        result.single["matrix300"][(32, PAGE_32KB)].cpi_tlb
        < 0.3 * result.single["matrix300"][(32, PAGE_4KB)].cpi_tlb
    )
