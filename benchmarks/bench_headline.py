"""Benchmark: regenerate the paper's headline cross-workload statistics.

Prints the side-by-side paper-vs-measured summary (abstract / Section 6
numbers): average working-set inflation, the two-page-size inflation
range, the FA-16 large-page CPI reduction, the improving-program count
and the critical miss-penalty increase range.
"""

import math

from conftest import run_once

from repro.experiments import run_headline


def test_headline(benchmark, scale, publish):
    result = run_once(benchmark, lambda: run_headline(scale))
    publish("headline", result.render())

    # Paper bands (loosely): 1.67 / 2.03 / ~1.1 / 3-8x / 8 of 12.
    assert 1.3 < result.ws_normalized_32kb < 2.8
    assert result.ws_normalized_64kb >= result.ws_normalized_32kb
    assert 1.0 <= result.ws_normalized_two_size_mean < 1.25
    low, high = result.ws_normalized_two_size_range
    assert low >= 1.0 - 1e-9 and high < 1.4
    assert result.fa16_mean_reduction > 3.0
    assert 7 <= len(result.improving_programs_16) <= 11
    cp_low, cp_high = result.critical_penalty_range
    assert cp_low > 0 and cp_high > 100
    assert math.isfinite(cp_high)
