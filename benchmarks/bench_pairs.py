"""Benchmark: the 4KB/16KB and 4KB/64KB pair comparison.

The paper collected this data but had no space to print it (Section
3.2); this regenerates the comparison on the 16-entry FA TLB.
"""

from conftest import run_once

from repro.experiments import run_pairs
from repro.types import PAIR_4KB_16KB, PAIR_4KB_32KB, PAIR_4KB_64KB


def test_pairs(benchmark, scale, publish):
    result = run_once(benchmark, lambda: run_pairs(scale))
    publish("pairs", result.render())

    for pair in (PAIR_4KB_16KB, PAIR_4KB_32KB, PAIR_4KB_64KB):
        # Promotion never shrinks the working set...
        for name in result.ws:
            assert result.ws[name][pair] >= 1.0 - 1e-9
        # ...and the flagship improver wins with every pair.
        assert (
            result.cpi["matrix300"][pair].cpi_tlb
            < result.baseline_cpi["matrix300"]
        )
