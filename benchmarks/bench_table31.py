"""Benchmark: regenerate Table 3.1 (the workload roster).

Paper shape to check in the printed table: twelve programs, the first
six with working sets below the "small" boundary and the last six above,
each category in ascending working-set order.
"""

from conftest import run_once

from repro.experiments import run_table31


def test_table31(benchmark, scale, publish):
    result = run_once(benchmark, lambda: run_table31(scale))
    publish("table31", result.render())

    names = [row.name for row in result.rows]
    assert names[0] == "li" and names[-1] == "verilog"
    small = [row for row in result.rows if row.category == "small"]
    large = [row for row in result.rows if row.category == "large"]
    assert max(row.ws_bytes for row in small) < min(
        row.ws_bytes for row in large
    )
