"""Benchmark: regenerate Table 5.1 (indexing schemes).

Paper shape: using the large-page index with *no* large pages allocated
severely degrades CPI_TLB versus a conventional 4KB TLB (Section
5.2.1's caution); with the dynamic policy, exact indexing is at least
comparable to large-page indexing, and better where small pages carry
the pressure.
"""

from conftest import run_once

from repro.experiments import run_table51


def test_table51(benchmark, scale, publish):
    result = run_once(benchmark, lambda: run_table51(scale))
    publish("table51", result.render())

    degraded = 0
    for name in result.workloads():
        if result.cpi(name, 16, "4KB large index") > 1.1 * result.cpi(
            name, 16, "4KB"
        ):
            degraded += 1
    assert degraded >= 10  # nearly every program suffers

    comparable_or_better = 0
    for name in result.workloads():
        exact = result.cpi(name, 32, "4KB/32KB exact index")
        large = result.cpi(name, 32, "4KB/32KB large index")
        if exact <= large * 1.25:
            comparable_or_better += 1
    assert comparable_or_better >= 9
