"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures at the
default experiment scale (400K-reference traces, T = 50K; override with
``REPRO_TRACE_LENGTH`` / ``REPRO_WINDOW``), prints the paper-style
rendering, and archives it under ``results/``.  ``pytest-benchmark``
times the run; the printed tables are the scientific output.

``--jobs N`` (or ``REPRO_JOBS``) spreads each experiment's per-workload
measurement across worker processes; rendered outputs are identical at
any job count, only the wall time changes.
"""

from dataclasses import replace
from pathlib import Path

import pytest

from repro.experiments import default_scale

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        action="store",
        type=int,
        default=None,
        help=(
            "worker processes for per-workload measurement "
            "(0 = one per CPU; default REPRO_JOBS or serial)"
        ),
    )


@pytest.fixture(scope="session")
def scale(request):
    """The experiment scale every benchmark runs at."""
    base = default_scale()
    jobs = request.config.getoption("--jobs")
    if jobs is not None:
        base = replace(base, jobs=jobs)
    return base


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def publish(results_dir):
    """Print a rendered experiment and archive it to results/<name>.txt."""

    def _publish(name, rendered):
        print()
        print(rendered)
        (results_dir / f"{name}.txt").write_text(rendered + "\n")

    return _publish


def run_once(benchmark, func):
    """Run an experiment exactly once under the benchmark timer.

    The experiments take tens of seconds; multiple timing rounds would
    add nothing but wall-clock.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
