#!/usr/bin/env python
"""Define a new workload from the pattern library and evaluate it.

Shows the extension point a downstream user cares about: build a
program model from the same primitives as the twelve paper workloads —
here, a toy key-value store with a hot index, a scattered record heap
and a sequential log — then ask whether *your* program would benefit
from two page sizes.
"""

import numpy as np

from repro.sim import SingleSizeScheme, TLBConfig, TwoSizeScheme
from repro.sim.driver import run_single_size, run_two_sizes
from repro.trace import KIND_IFETCH
from repro.types import KB, MB, PAGE_4KB, PAGE_32KB
from repro.workloads import (
    DenseZipf,
    Region,
    SequentialRuns,
    SequentialSweep,
    SparseHot,
    StreamMix,
    SyntheticWorkload,
)


class KeyValueStore(SyntheticWorkload):
    """A toy KV store: hot B-tree index, scattered records, append log."""

    name = "kvstore"
    description = "toy key-value store: index + records + append log"
    refs_per_instruction = 1.30

    def _build(self, rng: np.random.Generator):
        code = Region(0x0001_0000, 64 * KB)
        index = Region(2 * MB + 36 * KB, 512 * KB)  # dense, promotable
        records = Region(8 * MB + 36 * KB, 8 * MB)  # scattered, not
        log = Region(32 * MB + 72 * KB, 256 * KB)  # sequential appends
        return [
            StreamMix(
                SequentialRuns(code, rng, run_length=24, alpha=1.3),
                weight=0.74,
                kind=KIND_IFETCH,
            ),
            StreamMix(
                DenseZipf(index, rng, hot_pages=96, alpha=1.0, burst=20),
                weight=0.13,
            ),
            StreamMix(
                SparseHot(
                    records, rng, hot_blocks=120, alpha=0.9, chunk_fill=2,
                    burst=24,
                ),
                weight=0.08,
                store_fraction=0.3,
            ),
            StreamMix(
                SequentialSweep(log, stride=64),
                weight=0.05,
                store_fraction=0.9,
            ),
        ]


def main() -> int:
    length = 300_000
    window = 40_000
    trace = KeyValueStore().generate(length, seed=1)
    config = TLBConfig(entries=32, associativity=2)

    small = run_single_size(trace, SingleSizeScheme(PAGE_4KB), config)
    large = run_single_size(trace, SingleSizeScheme(PAGE_32KB), config)
    (two,) = run_two_sizes(trace, TwoSizeScheme(window=window), [config])

    print(f"kvstore on a {config.label} TLB ({length:,} refs)\n")
    print(f"{'scheme':10s} {'miss%':>7s} {'CPI_TLB':>8s}")
    for result in (small, large, two):
        print(
            f"{result.scheme_label:10s} {100 * result.miss_ratio:6.2f}% "
            f"{result.cpi_tlb:8.3f}"
        )
    print(
        f"\npromotions: {two.promotions} (the index and log promote; "
        f"the scattered records cannot)"
    )
    verdict = "yes" if two.cpi_tlb < small.cpi_tlb else "no"
    print(f"would this program benefit from two page sizes? {verdict}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
