#!/usr/bin/env python
"""How should a set-associative TLB be indexed with two page sizes?

Section 2.2's design question, answered empirically for one program:
compare small-page, large-page and exact indexing (parallel and
sequential probing) on a two-way set-associative TLB, against the fully
associative alternative the schemes try to approximate.

Usage::

    python examples/indexing_schemes.py [workload] [entries]
"""

import sys

from repro.sim import TLBConfig, TwoSizeScheme
from repro.sim.driver import run_two_sizes
from repro.tlb import IndexingScheme, ProbeStrategy
from repro.workloads import generate_trace


def main() -> int:
    workload = sys.argv[1] if len(sys.argv) > 1 else "tomcatv"
    entries = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    length = 300_000
    window = 40_000
    trace = generate_trace(workload, length, seed=0)
    scheme = TwoSizeScheme(window=window)

    configs = [
        TLBConfig(entries),  # fully associative reference point
        TLBConfig(entries, 2, IndexingScheme.SMALL_INDEX),
        TLBConfig(entries, 2, IndexingScheme.LARGE_INDEX),
        TLBConfig(entries, 2, IndexingScheme.EXACT_INDEX),
        TLBConfig(
            entries,
            2,
            IndexingScheme.EXACT_INDEX,
            probe_strategy=ProbeStrategy.SEQUENTIAL,
        ),
    ]
    labels = [
        "fully assoc",
        "2-way small idx",
        "2-way large idx",
        "2-way exact (par)",
        "2-way exact (seq)",
    ]

    # One shared trace pass drives all five TLBs (the tycho trick).
    results = run_two_sizes(trace, scheme, configs)

    print(
        f"{workload}: 4KB/32KB scheme on {entries}-entry TLBs "
        f"({length:,} refs)\n"
    )
    print(f"{'organisation':18s} {'misses':>8s} {'CPI_TLB':>8s} {'reprobes':>9s}")
    for label, result in zip(labels, results):
        print(
            f"{label:18s} {result.misses:8d} {result.cpi_tlb:8.3f} "
            f"{result.reprobes:9d}"
        )
    print(
        "\nReading: exact indexing needs a second probe (parallel port or\n"
        "sequential reprobe); small-page indexing duplicates large-page\n"
        "entries; large-page indexing makes a chunk's small pages collide.\n"
        "Try tomcatv to see the paper's pathological chunk-congruence case."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
