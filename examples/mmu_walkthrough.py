#!/usr/bin/env python
"""Walk through the full MMU: promotion mechanics, end to end.

Drives the integrated machine — TLB + promotion policy + two-page-size
page table + buddy frame allocator — address by address, narrating the
events the paper costs out in Section 3.4: small-page faults, the
promotion that consolidates a chunk into one large frame (copying the
resident blocks), TLB shootdowns, and a promotion *cancelled* by
physical-memory fragmentation.
"""

from repro.mem import MemoryManagementUnit
from repro.policy import DynamicPromotionPolicy
from repro.tlb import FullyAssociativeTLB
from repro.types import MB, PAGE_4KB, PAGE_32KB, PAIR_4KB_32KB


def narrate(mmu, address, note=""):
    outcome = mmu.translate(address)
    events = []
    if outcome.page_fault:
        events.append("page fault")
    if not outcome.tlb_hit:
        events.append(f"TLB miss ({outcome.cycles:.0f} cycles)")
    print(
        f"  VA {address:#010x} -> PA {outcome.physical:#010x}"
        f"  [{', '.join(events) if events else 'TLB hit'}] {note}"
    )


def main() -> int:
    policy = DynamicPromotionPolicy(PAIR_4KB_32KB, window=1000)
    mmu = MemoryManagementUnit(
        FullyAssociativeTLB(16), policy, memory_size=16 * MB
    )

    print("1. Touch four blocks of chunk 0: the fourth crosses the")
    print("   promote-at-half threshold and consolidates the chunk.\n")
    for block in range(4):
        narrate(mmu, block * PAGE_4KB, note=f"(block {block})")
    stats = mmu.stats
    print(
        f"\n   promotions={stats.promotions_applied}, "
        f"blocks copied={stats.blocks_copied}, "
        f"TLB shootdowns={mmu.tlb.stats.invalidations}"
    )
    frame = mmu.page_table.lookup_large(0)
    print(f"   chunk 0 now maps to one 32KB frame at PA {frame:#x}\n")

    print("2. Any address in the chunk now translates through the large")
    print("   page — including blocks never touched before.\n")
    narrate(mmu, 7 * PAGE_4KB + 0x123, note="(untouched block, no fault)")

    print("\n3. Fragment physical memory, then try to promote chunk 8:")
    print("   no contiguous 32KB frame exists, so the OS cancels.\n")
    frames = []
    while True:
        frame = mmu.allocator.try_allocate(PAGE_4KB)
        if frame is None:
            break
        frames.append(frame)
    for frame in sorted(frames)[::2]:
        mmu.allocator.free(frame)
    print(
        f"   free={mmu.allocator.free_bytes() // 1024}KB, largest "
        f"block={mmu.allocator.largest_free_block() // 1024}KB, "
        f"fragmentation={mmu.allocator.external_fragmentation():.2f}"
    )
    base = 8 * PAGE_32KB
    for block in range(4):
        mmu.translate(base + block * PAGE_4KB)
    print(
        f"   promotions cancelled={mmu.stats.promotions_cancelled} "
        f"(chunk 8 stays on small pages)"
    )

    print(
        f"\ntotals: {mmu.stats.translations} translations, "
        f"{mmu.stats.page_faults} faults, {mmu.stats.cycles:.0f} miss cycles"
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
