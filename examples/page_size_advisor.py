#!/usr/bin/env python
"""Ask the advisor: should this workload get two page sizes?

Runs the full analysis pipeline — working-set inflation, CPI crossover
sweep, promotion behaviour, penalty robustness — and prints the verdict
with its reasons, for any of the twelve paper workloads (or compare a
winner and a loser side by side with no arguments).

Usage::

    python examples/page_size_advisor.py [workload ...]
"""

import sys

from repro.analysis import advise
from repro.workloads import generate_trace, workload_names


def main() -> int:
    names = sys.argv[1:] or ["matrix300", "espresso"]
    unknown = [name for name in names if name not in workload_names()]
    if unknown:
        print(f"unknown workloads: {', '.join(unknown)}")
        print("choose from: " + " ".join(workload_names()))
        return 1

    for name in names:
        trace = generate_trace(name, 200_000, seed=0)
        report = advise(trace, window=25_000)
        print(report.render())
        print(
            f"(promotions={report.promotions}, "
            f"large-page miss share={report.promoted_share:.0%})\n"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
