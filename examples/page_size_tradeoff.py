#!/usr/bin/env python
"""The paper's central tradeoff, for one program: memory vs TLB misses.

For a chosen workload, sweeps single page sizes 4KB..64KB and the
dynamic 4KB/32KB scheme, printing working-set inflation next to
CPI_TLB — the two axes the paper trades against each other (Figures 4.1
and 5.1 in miniature).

Usage::

    python examples/page_size_tradeoff.py [workload]
"""

import sys

from repro.policy import dynamic_average_working_set
from repro.sim import TLBConfig, TwoSizeScheme
from repro.sim.driver import run_two_sizes
from repro.sim.sweep import sweep_single_size
from repro.stacksim import average_working_set_bytes
from repro.types import (
    PAGE_4KB,
    PAGE_8KB,
    PAGE_16KB,
    PAGE_32KB,
    PAGE_64KB,
    PAIR_4KB_32KB,
    format_size,
)
from repro.workloads import generate_trace

PAGE_SIZES = (PAGE_4KB, PAGE_8KB, PAGE_16KB, PAGE_32KB, PAGE_64KB)


def main() -> int:
    workload = sys.argv[1] if len(sys.argv) > 1 else "li"
    length = 300_000
    window = 40_000
    trace = generate_trace(workload, length, seed=0)
    config = TLBConfig(entries=16)

    print(f"{workload}: page-size tradeoff (16-entry FA TLB, T={window})\n")
    print(f"{'scheme':10s} {'avg WS':>10s} {'WS_norm':>8s} {'CPI_TLB':>8s}")

    swept = sweep_single_size(trace, PAGE_SIZES, [config])
    baseline_ws = average_working_set_bytes(trace, PAGE_4KB, [window])[window]
    for page_size in PAGE_SIZES:
        ws = average_working_set_bytes(trace, page_size, [window])[window]
        cpi = swept[(page_size, config.label)].cpi_tlb
        print(
            f"{format_size(page_size):10s} {format_size(ws):>10s} "
            f"{ws / baseline_ws:8.2f} {cpi:8.3f}"
        )

    (two,) = run_two_sizes(trace, TwoSizeScheme(window=window), [config])
    dynamic = dynamic_average_working_set(trace, PAIR_4KB_32KB, window)
    print(
        f"{'4KB/32KB':10s} {format_size(dynamic.average_bytes):>10s} "
        f"{dynamic.average_bytes / baseline_ws:8.2f} {two.cpi_tlb:8.3f}"
    )
    print(
        "\nReading: larger single pages trade memory (WS_norm) for TLB "
        "performance;\nthe two-page-size scheme takes most of the CPI win "
        "at a fraction of the memory cost."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
