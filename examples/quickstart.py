#!/usr/bin/env python
"""Quickstart: measure one TLB on one workload, one page size vs two.

Runs the paper's flagship comparison on a single program in a few
seconds: a 16-entry fully associative TLB with 4KB pages, 32KB pages,
and the dynamic 4KB/32KB two-page-size scheme.

Usage::

    python examples/quickstart.py [workload] [trace_length]

where ``workload`` is any of the twelve paper programs (default
``matrix300``).
"""

import sys

from repro.sim import SingleSizeScheme, TLBConfig, TwoSizeScheme
from repro.sim.driver import run_single_size, run_two_sizes
from repro.types import PAGE_4KB, PAGE_32KB
from repro.workloads import generate_trace, workload_names


def main() -> int:
    workload = sys.argv[1] if len(sys.argv) > 1 else "matrix300"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 200_000
    if workload not in workload_names():
        print(f"unknown workload {workload!r}; choose from:")
        print("  " + " ".join(workload_names()))
        return 1

    print(f"generating {length:,}-reference trace for {workload}...")
    trace = generate_trace(workload, length, seed=0)
    config = TLBConfig(entries=16)  # 16-entry fully associative
    window = max(1, length // 8)

    small = run_single_size(trace, SingleSizeScheme(PAGE_4KB), config)
    large = run_single_size(trace, SingleSizeScheme(PAGE_32KB), config)
    (two,) = run_two_sizes(trace, TwoSizeScheme(window=window), [config])

    print(f"\n{config.label} TLB on {workload} ({length:,} references)\n")
    print(f"{'scheme':12s} {'misses':>8s} {'miss%':>7s} {'CPI_TLB':>8s}")
    for result in (small, large, two):
        print(
            f"{result.scheme_label:12s} {result.misses:8d} "
            f"{100 * result.miss_ratio:6.2f}% {result.cpi_tlb:8.3f}"
        )
    print(
        f"\ntwo-page-size scheme: {two.promotions} promotions, "
        f"{two.demotions} demotions, {two.invalidations} TLB shootdowns"
    )
    improvement = small.cpi_tlb / two.cpi_tlb if two.cpi_tlb else float("inf")
    print(f"CPI improvement over single 4KB pages: {improvement:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
