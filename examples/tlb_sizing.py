#!/usr/bin/env python
"""Size a TLB for the paper's workloads, and find the scheme crossovers.

Two architect's questions, answered with the analysis package:

1. How many fully associative entries does each program need to keep
   the TLB miss ratio under 1%, at 4KB and at 32KB pages?  (The reach
   argument of Section 1, made concrete.)
2. For one program, which page-size scheme wins at each TLB size —
   where are the crossovers?

Usage::

    python examples/tlb_sizing.py [crossover_workload]
"""

import sys

from repro.analysis import (
    entries_required,
    scheme_ranking,
    two_size_crossover,
)
from repro.types import PAGE_4KB, PAGE_32KB
from repro.workloads import generate_trace, workload_names


def main() -> int:
    length = 200_000
    target = 0.01

    print(f"entries for <{target:.0%} miss ratio ({length:,}-ref traces)\n")
    print(f"{'program':10s} {'@4KB':>6s} {'reach':>7s} {'@32KB':>6s} {'reach':>7s}")
    for name in workload_names():
        trace = generate_trace(name, length, seed=0)
        small = entries_required(trace, PAGE_4KB, target)
        large = entries_required(trace, PAGE_32KB, target)

        def cell(result):
            if result.entries is None:
                return ">64", "-"
            return str(result.entries), result.reach

        s_entries, s_reach = cell(small)
        l_entries, l_reach = cell(large)
        print(
            f"{name:10s} {s_entries:>6s} {s_reach:>7s} "
            f"{l_entries:>6s} {l_reach:>7s}"
        )

    workload = sys.argv[1] if len(sys.argv) > 1 else "li"
    print(f"\nscheme ranking by TLB size for {workload} (best first)\n")
    trace = generate_trace(workload, length, seed=0)
    result = two_size_crossover(trace, window=25_000)
    ranking = scheme_ranking(result)
    for capacity in result.capacities:
        order = ranking[capacity]
        values = ", ".join(
            f"{scheme}={result.cpi[scheme][capacity]:.3f}" for scheme in order
        )
        print(f"  {capacity:3d} entries: {values}")
    wins = result.two_size_wins_at()
    if wins:
        print(
            f"\ntwo page sizes beat single 4KB pages at "
            f"{', '.join(str(c) for c in wins)} entries"
        )
    else:
        print("\ntwo page sizes never beat single 4KB pages here")
    return 0


if __name__ == "__main__":
    sys.exit(main())
