"""Reproduction of "Tradeoffs in Supporting Two Page Sizes" (ISCA 1992).

The public API re-exports the pieces a downstream user composes:

* page-size primitives (:class:`PageSizePair`, size constants),
* workload traces (:func:`generate_trace`, :func:`get_workload`),
* TLB models (:class:`FullyAssociativeTLB`, :class:`SetAssociativeTLB`,
  :class:`SplitTLB`) and the indexing-scheme enums,
* the page-size assignment policies (:class:`DynamicPromotionPolicy`),
* simulation drivers (:func:`run_single_size`, :func:`run_two_sizes`),
* metrics (:class:`TLBPerformance`, :func:`critical_miss_penalty_increase`),
* and the experiment runners under :mod:`repro.experiments`.

Start with ``examples/quickstart.py`` or DESIGN.md.
"""

from repro.metrics import (
    TLBPerformance,
    critical_miss_penalty_increase,
    speedup_over_baseline,
)
from repro.policy import (
    DynamicPromotionPolicy,
    ExplicitAssignmentPolicy,
    StaticLargePolicy,
    StaticSmallPolicy,
    dynamic_average_working_set,
)
from repro.sim import (
    RunResult,
    SingleSizeScheme,
    TLBConfig,
    TwoSizeScheme,
    run_single_size,
    run_two_sizes,
    run_with_policy,
    sweep_single_size,
)
from repro.stacksim import (
    average_working_set_bytes,
    average_working_set_pages,
    lru_miss_curve,
    per_set_miss_curve,
)
from repro.tlb import (
    FullyAssociativeTLB,
    IndexingScheme,
    ProbeStrategy,
    SetAssociativeTLB,
    SplitTLB,
)
from repro.trace import Trace, read_trace, write_trace
from repro.types import (
    KB,
    MB,
    PAGE_4KB,
    PAGE_8KB,
    PAGE_16KB,
    PAGE_32KB,
    PAGE_64KB,
    PAIR_4KB_16KB,
    PAIR_4KB_32KB,
    PAIR_4KB_64KB,
    PageSizePair,
)
from repro.workloads import (
    SyntheticWorkload,
    all_workloads,
    cached_trace,
    generate_trace,
    get_workload,
    workload_names,
)

__version__ = "1.0.0"

__all__ = [
    "KB",
    "MB",
    "PAGE_16KB",
    "PAGE_32KB",
    "PAGE_4KB",
    "PAGE_64KB",
    "PAGE_8KB",
    "PAIR_4KB_16KB",
    "PAIR_4KB_32KB",
    "PAIR_4KB_64KB",
    "DynamicPromotionPolicy",
    "ExplicitAssignmentPolicy",
    "FullyAssociativeTLB",
    "IndexingScheme",
    "PageSizePair",
    "ProbeStrategy",
    "RunResult",
    "SetAssociativeTLB",
    "SingleSizeScheme",
    "SplitTLB",
    "StaticLargePolicy",
    "StaticSmallPolicy",
    "SyntheticWorkload",
    "TLBConfig",
    "TLBPerformance",
    "Trace",
    "TwoSizeScheme",
    "all_workloads",
    "average_working_set_bytes",
    "average_working_set_pages",
    "cached_trace",
    "critical_miss_penalty_increase",
    "dynamic_average_working_set",
    "generate_trace",
    "get_workload",
    "lru_miss_curve",
    "per_set_miss_curve",
    "read_trace",
    "run_single_size",
    "run_two_sizes",
    "run_with_policy",
    "speedup_over_baseline",
    "sweep_single_size",
    "workload_names",
    "write_trace",
    "__version__",
]
