"""Analysis helpers: TLB sizing and page-size-scheme crossovers.

The questions an architect asks after reading the paper, answered for
arbitrary traces with one or two stack passes each.
"""

from repro.analysis.advisor import (
    RECOMMEND_BASELINE,
    RECOMMEND_SINGLE_LARGE,
    RECOMMEND_TWO_SIZES,
    AdvisorReport,
    advise,
)
from repro.analysis.crossover import (
    CrossoverResult,
    scheme_ranking,
    two_size_crossover,
)
from repro.analysis.sizing import (
    SizingResult,
    entries_required,
    miss_ratio_curve,
    reach_equivalent_entries,
    working_set_entries,
)

__all__ = [
    "AdvisorReport",
    "CrossoverResult",
    "RECOMMEND_BASELINE",
    "RECOMMEND_SINGLE_LARGE",
    "RECOMMEND_TWO_SIZES",
    "SizingResult",
    "advise",
    "entries_required",
    "miss_ratio_curve",
    "reach_equivalent_entries",
    "scheme_ranking",
    "two_size_crossover",
    "working_set_entries",
]
