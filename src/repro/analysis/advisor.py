"""The page-size advisor: the paper's analysis applied to one workload.

Given a trace, produce the report an OS/architecture team would want
when deciding whether to enable two page sizes for a workload:

* working-set inflation at each scheme (the memory cost);
* CPI_TLB at each scheme across TLB sizes (the performance side);
* promotion behaviour (how much of the footprint actually promotes);
* the critical miss-penalty increase (robustness margin);
* a recommendation with the reasons spelled out.

This is deliberately judgement-with-numbers, mirroring how the paper's
Section 6 frames its own conclusions ("neither conclusively reject nor
conclusively support").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.crossover import CrossoverResult, two_size_crossover
from repro.errors import ConfigurationError
from repro.mem.misshandler import (
    SINGLE_SIZE_PENALTY_CYCLES,
    TWO_SIZE_PENALTY_FACTOR,
)
from repro.metrics.cpi import critical_miss_penalty_increase
from repro.parallel.cache import SimulationCache
from repro.policy.dynamic_ws import dynamic_average_working_set
from repro.report.table import TextTable
from repro.sim.config import TLBConfig, TwoSizeScheme
from repro.sim.driver import run_two_sizes
from repro.stacksim.working_set import average_working_set_bytes
from repro.trace.record import Trace
from repro.types import PAGE_4KB, PAGE_32KB, PAIR_4KB_32KB, format_size

#: Verdicts the advisor can reach.
RECOMMEND_TWO_SIZES = "enable two page sizes"
RECOMMEND_SINGLE_LARGE = "use a single larger page size"
RECOMMEND_BASELINE = "stay with 4KB pages"


@dataclass(frozen=True)
class AdvisorReport:
    """Everything the advisor measured, plus its verdict.

    Attributes:
        workload: trace name.
        ws_baseline_bytes: average 4KB working set.
        ws_inflation: {scheme: WS_Normalized} for 32KB and 4KB/32KB.
        crossover: per-capacity CPI for every scheme.
        promotions / demotions: policy transitions over the trace.
        promoted_share: fraction of two-size misses on large pages (how
            much of the pressure actually moved to large pages).
        critical_penalty_percent: Δmp at the reference TLB, or inf.
        reference_entries: TLB size the verdict is judged at.
        capacities: the effective, normalized TLB sizes actually swept
            (sorted, deduplicated, always containing
            ``reference_entries``).
        verdict: one of the RECOMMEND_* strings.
        reasons: human-readable bullet points behind the verdict.
    """

    workload: str
    ws_baseline_bytes: float
    ws_inflation: Dict[str, float]
    crossover: CrossoverResult
    promotions: int
    demotions: int
    promoted_share: float
    critical_penalty_percent: float
    reference_entries: int
    capacities: Tuple[int, ...]
    verdict: str
    reasons: Sequence[str]

    def render(self) -> str:
        table = TextTable(
            ["Scheme", "WS_Normalized",
             f"CPI@{self.reference_entries}e"],
            title=(
                f"Page-size advisor: {self.workload} "
                f"(4KB working set {format_size(self.ws_baseline_bytes)})"
            ),
            float_format="{:.3f}",
        )
        reference = self.reference_entries
        table.add_row("4KB", 1.0, self.crossover.cpi["4KB"][reference])
        table.add_row(
            "32KB",
            self.ws_inflation["32KB"],
            self.crossover.cpi["32KB"][reference],
        )
        table.add_row(
            "4KB/32KB",
            self.ws_inflation["4KB/32KB"],
            self.crossover.cpi["4KB/32KB"][reference],
        )
        lines = [table.render(), ""]
        lines.append(f"verdict: {self.verdict}")
        for reason in self.reasons:
            lines.append(f"  - {reason}")
        return "\n".join(lines)


def decide_verdict(
    *,
    baseline_cpi: float,
    two_cpi: float,
    large_cpi: float,
    inflation: Dict[str, float],
    critical: float,
    promotions: int,
    reference_entries: int,
) -> Tuple[str, List[str]]:
    """The advisor's verdict logic, separated so each path is testable.

    The single-larger-page check runs on *both* branches: a workload
    whose all-32KB run beats the 4KB baseline deserves that verdict
    even when the two-page-size scheme loses (dense footprints with
    promotion-hostile layouts).  It compares against whichever of the
    other two schemes won.
    """
    reasons: List[str] = []
    two_wins = two_cpi < baseline_cpi
    if two_wins:
        gain = baseline_cpi / two_cpi if two_cpi else math.inf
        reasons.append(
            f"two page sizes cut CPI_TLB {gain:.1f}x at "
            f"{reference_entries} entries"
        )
        reasons.append(
            f"working-set cost is {inflation['4KB/32KB']:.2f}x vs "
            f"{inflation['32KB']:.2f}x for all-32KB pages"
        )
        if math.isfinite(critical):
            reasons.append(
                f"the win survives a {critical:.0f}% slower miss handler"
            )
        verdict = RECOMMEND_TWO_SIZES
    else:
        verdict = RECOMMEND_BASELINE
        if promotions == 0:
            reasons.append(
                "the promotion policy never fires: hot data is scattered "
                "below the half-chunk threshold"
            )
        reasons.append(
            "two page sizes only add the 25% miss-penalty surcharge "
            f"(CPI {baseline_cpi:.3f} -> {two_cpi:.3f})"
        )

    best_cpi = two_cpi if two_wins else baseline_cpi
    if large_cpi < best_cpi * 0.8 and inflation["32KB"] < 1.3:
        verdict = RECOMMEND_SINGLE_LARGE
        if two_wins:
            reasons.append(
                "but the footprint is dense enough that a single 32KB "
                "page is cheaper still, with little memory cost"
            )
        else:
            reasons.append(
                "a single 32KB page beats the 4KB baseline outright, "
                "with little memory cost"
            )
    return verdict, reasons


def advise(
    trace: Trace,
    *,
    window: int,
    reference_entries: int = 16,
    capacities: Sequence[int] = (8, 16, 32),
    base_penalty: float = SINGLE_SIZE_PENALTY_CYCLES,
    penalty_factor: float = TWO_SIZE_PENALTY_FACTOR,
    cache: Optional[SimulationCache] = None,
) -> AdvisorReport:
    """Produce an :class:`AdvisorReport` for one workload trace.

    ``capacities`` is normalized once — sorted, deduplicated, with
    ``reference_entries`` inserted — and the effective tuple is
    recorded on the report.  ``base_penalty``/``penalty_factor`` thread
    the miss-penalty model through every simulation *and* the
    critical-penalty reconstruction, so the robustness margin is
    computed against the penalties actually charged.
    """
    if reference_entries <= 0:
        raise ConfigurationError("reference_entries must be positive")
    if any(entries <= 0 for entries in capacities):
        raise ConfigurationError("TLB capacities must be positive")
    capacities = tuple(sorted({*capacities, reference_entries}))

    baseline_ws = average_working_set_bytes(trace, PAGE_4KB, [window])[window]
    large_ws = average_working_set_bytes(trace, PAGE_32KB, [window])[window]
    dynamic = dynamic_average_working_set(trace, PAIR_4KB_32KB, window)
    inflation = {
        "32KB": large_ws / baseline_ws if baseline_ws else 1.0,
        "4KB/32KB": (
            dynamic.average_bytes / baseline_ws if baseline_ws else 1.0
        ),
    }

    crossover = two_size_crossover(
        trace,
        window,
        capacities=capacities,
        base_penalty=base_penalty,
        penalty_factor=penalty_factor,
        cache=cache,
    )
    (two_run,) = run_two_sizes(
        trace,
        TwoSizeScheme(window=window),
        [TLBConfig(reference_entries)],
        base_penalty=base_penalty,
        penalty_factor=penalty_factor,
        cache=cache,
    )
    promoted_share = (
        two_run.large_misses / two_run.misses if two_run.misses else 0.0
    )

    baseline_cpi = crossover.cpi["4KB"][reference_entries]
    two_cpi = crossover.cpi["4KB/32KB"][reference_entries]
    large_cpi = crossover.cpi["32KB"][reference_entries]

    critical = (
        critical_miss_penalty_increase(
            _as_performance(
                trace, crossover, "4KB", reference_entries,
                base_penalty=base_penalty,
            ),
            two_run.performance,
        )
        if two_run.misses
        else math.inf
    )

    verdict, reasons = decide_verdict(
        baseline_cpi=baseline_cpi,
        two_cpi=two_cpi,
        large_cpi=large_cpi,
        inflation=inflation,
        critical=critical,
        promotions=two_run.promotions,
        reference_entries=reference_entries,
    )

    return AdvisorReport(
        workload=trace.name,
        ws_baseline_bytes=baseline_ws,
        ws_inflation=inflation,
        crossover=crossover,
        promotions=two_run.promotions,
        demotions=two_run.demotions,
        promoted_share=promoted_share,
        critical_penalty_percent=critical,
        reference_entries=reference_entries,
        capacities=capacities,
        verdict=verdict,
        reasons=tuple(reasons),
    )


def _as_performance(
    trace, crossover, scheme, entries, *,
    base_penalty: float = SINGLE_SIZE_PENALTY_CYCLES,
):
    """Rebuild a TLBPerformance for a swept single-size scheme.

    The miss count is recovered from CPI with the *same* penalty the
    sweep charged; a hardcoded 20.0 here would silently misreport the
    critical-penalty margin whenever ``base_penalty`` differs.
    """
    from repro.metrics.cpi import TLBPerformance

    cpi = crossover.cpi[scheme][entries]
    misses = round(
        cpi * (len(trace) / trace.refs_per_instruction) / base_penalty
    )
    return TLBPerformance(
        misses=misses,
        references=len(trace),
        refs_per_instruction=trace.refs_per_instruction,
        miss_penalty_cycles=base_penalty,
    )
