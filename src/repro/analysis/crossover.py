"""Crossover analysis: where does each page-size scheme start winning?

The paper's conclusions hinge on crossovers — two page sizes beat a
single 8KB page *here* but not *there*; larger TLBs wash the advantage
out.  This module locates those crossovers explicitly for one workload:

* :func:`two_size_crossover` — the TLB sizes at which the two-page-size
  scheme's CPI (25-cycle penalty) overtakes a single-4KB TLB's
  (20-cycle penalty), and where it stops mattering because both are
  negligible;
* :func:`scheme_ranking` — which scheme wins at each TLB size.

Both run the single-size schemes through one stack pass and the
two-size scheme through one shared multi-TLB pass, so a full sweep
costs about two trace traversals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.mem.misshandler import (
    SINGLE_SIZE_PENALTY_CYCLES,
    TWO_SIZE_PENALTY_FACTOR,
)
from repro.parallel.cache import SimulationCache
from repro.sim.config import TLBConfig, TwoSizeScheme
from repro.sim.driver import run_two_sizes
from repro.sim.sweep import sweep_single_size
from repro.trace.record import Trace
from repro.types import PAGE_4KB, PAGE_8KB, PAGE_32KB, format_size

#: TLB sizes swept by default (the paper's 16/32 plus neighbours).
DEFAULT_CAPACITIES = (4, 8, 16, 32, 64)


@dataclass(frozen=True)
class CrossoverResult:
    """Per-capacity CPI for each scheme on one workload.

    ``cpi[scheme_label][capacity]`` holds CPI_TLB; scheme labels are
    the page-size strings plus ``"4KB/32KB"``.
    """

    workload: str
    cpi: Dict[str, Dict[int, float]]
    capacities: Sequence[int]

    def winner(self, capacity: int) -> str:
        """The scheme with the lowest CPI at ``capacity``."""
        return min(self.cpi, key=lambda scheme: self.cpi[scheme][capacity])

    def two_size_wins_at(self) -> List[int]:
        """Capacities where two page sizes beat the single 4KB page."""
        return [
            capacity
            for capacity in self.capacities
            if self.cpi["4KB/32KB"][capacity] < self.cpi["4KB"][capacity]
        ]

    def advantage(self, capacity: int) -> float:
        """CPI(4KB) - CPI(4KB/32KB) at ``capacity`` (positive = win)."""
        return (
            self.cpi["4KB"][capacity] - self.cpi["4KB/32KB"][capacity]
        )


def two_size_crossover(
    trace: Trace,
    window: int,
    *,
    capacities: Sequence[int] = DEFAULT_CAPACITIES,
    page_sizes: Sequence[int] = (PAGE_4KB, PAGE_8KB, PAGE_32KB),
    base_penalty: float = SINGLE_SIZE_PENALTY_CYCLES,
    penalty_factor: float = TWO_SIZE_PENALTY_FACTOR,
    cache: Optional[SimulationCache] = None,
) -> CrossoverResult:
    """Sweep fully associative TLB sizes for every scheme.

    ``base_penalty`` is the single-size miss penalty in cycles; the
    two-page-size scheme is charged ``base_penalty * penalty_factor``
    per miss — the same penalty model everywhere, so downstream
    consumers (the advisor's critical-penalty figure) see consistent
    CPI numbers under non-default penalties.
    """
    if not capacities:
        raise ConfigurationError("capacities must not be empty")
    configs = [TLBConfig(entries) for entries in capacities]

    cpi: Dict[str, Dict[int, float]] = {
        format_size(page_size): {} for page_size in page_sizes
    }
    swept = sweep_single_size(
        trace, page_sizes, configs, base_penalty=base_penalty, cache=cache
    )
    for page_size in page_sizes:
        label = format_size(page_size)
        for config in configs:
            cpi[label][config.entries] = swept[
                (page_size, config.label)
            ].cpi_tlb

    scheme = TwoSizeScheme(window=window)
    results = run_two_sizes(
        trace,
        scheme,
        configs,
        base_penalty=base_penalty,
        penalty_factor=penalty_factor,
        cache=cache,
    )
    cpi["4KB/32KB"] = {
        result.config.entries: result.cpi_tlb for result in results
    }
    return CrossoverResult(trace.name, cpi, tuple(capacities))


def scheme_ranking(result: CrossoverResult) -> Dict[int, List[str]]:
    """Schemes ordered best-first at each swept capacity."""
    return {
        capacity: sorted(
            result.cpi, key=lambda scheme: result.cpi[scheme][capacity]
        )
        for capacity in result.capacities
    }
