"""TLB sizing analysis: how many entries does a workload need?

Section 1 of the paper frames the whole problem as TLB *reach* (entries
x page size) versus working set.  These helpers answer the architect's
direct questions from one stack-simulation pass:

* the smallest fully associative TLB meeting a miss-ratio target at a
  given page size;
* the reach (bytes mapped) of a configuration;
* the miss-ratio curve across capacities, for plotting reach/miss
  tradeoffs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.errors import ConfigurationError
from repro.mem.address import page_numbers_array
from repro.stacksim.lru_stack import lru_miss_curve
from repro.trace.record import Trace
from repro.types import format_size, validate_page_size


@dataclass(frozen=True)
class SizingResult:
    """Outcome of a sizing query.

    Attributes:
        page_size: page size analysed.
        target_miss_ratio: the requested ceiling.
        entries: smallest power-of-two-free capacity meeting the target,
            or None if even ``max_entries`` missed too often.
        achieved_miss_ratio: miss ratio at ``entries`` (or at
            ``max_entries`` when the target was unreachable).
        max_entries: the search bound used.
    """

    page_size: int
    target_miss_ratio: float
    entries: Optional[int]
    achieved_miss_ratio: float
    max_entries: int

    @property
    def reach(self) -> Optional[str]:
        """Memory mapped by the sized TLB, formatted (e.g. ``"128KB"``)."""
        if self.entries is None:
            return None
        return format_size(self.entries * self.page_size)


def entries_required(
    trace: Trace,
    page_size: int,
    target_miss_ratio: float,
    *,
    max_entries: int = 64,
) -> SizingResult:
    """Smallest fully associative capacity with miss ratio <= target."""
    validate_page_size(page_size)
    if not 0.0 < target_miss_ratio < 1.0:
        raise ConfigurationError(
            f"target miss ratio must be in (0, 1), got {target_miss_ratio}"
        )
    if max_entries <= 0:
        raise ConfigurationError("max_entries must be positive")

    pages = page_numbers_array(trace.addresses, page_size)
    curve = lru_miss_curve(pages, max_capacity=max_entries)
    for capacity in range(1, max_entries + 1):
        ratio = curve.miss_ratio(capacity)
        if ratio <= target_miss_ratio:
            return SizingResult(
                page_size, target_miss_ratio, capacity, ratio, max_entries
            )
    return SizingResult(
        page_size,
        target_miss_ratio,
        None,
        curve.miss_ratio(max_entries),
        max_entries,
    )


def miss_ratio_curve(
    trace: Trace,
    page_size: int,
    capacities: Sequence[int],
    *,
    max_entries: int = 64,
) -> Dict[int, float]:
    """Miss ratio at each requested fully associative capacity."""
    validate_page_size(page_size)
    if not capacities:
        raise ConfigurationError("capacities must not be empty")
    bound = max(max(capacities), max_entries)
    pages = page_numbers_array(trace.addresses, page_size)
    curve = lru_miss_curve(pages, max_capacity=bound)
    return {
        int(capacity): curve.miss_ratio(capacity) for capacity in capacities
    }


def reach_equivalent_entries(
    small_entries: int, small_page: int, large_page: int
) -> int:
    """Entries a ``large_page`` TLB needs to match a small-page TLB's reach.

    The paper's "maps eight times more memory for free" arithmetic, made
    explicit: a 16-entry 32KB TLB reaches as far as a 128-entry 4KB one.
    """
    validate_page_size(small_page)
    validate_page_size(large_page)
    if small_entries <= 0:
        raise ConfigurationError("small_entries must be positive")
    return max(1, (small_entries * small_page) // large_page)


def working_set_entries(
    trace: Trace, page_size: int, window: int
) -> float:
    """Average working-set size expressed in TLB entries at ``page_size``.

    The paper's rule of thumb: a TLB is comfortable when its entry count
    exceeds the working set in pages.
    """
    from repro.stacksim.working_set import average_working_set_pages

    pages = page_numbers_array(trace.addresses, page_size)
    return average_working_set_pages(pages, [window])[window]
