"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` and
friends) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A simulation or hardware configuration is internally inconsistent.

    Examples: a page size that is not a power of two, a TLB with zero
    entries, or an associativity that does not divide the entry count.
    """


class PageSizeError(ConfigurationError):
    """A page size (or page-size pair) violates the paper's constraints.

    The paper requires page sizes to be powers of two and pages to be
    aligned on their own size; a two-page-size pair additionally requires
    the large size to be a multiple of the small size.
    """


class TraceError(ReproError):
    """A trace file or trace buffer is malformed or inconsistent."""


class TraceFormatError(TraceError):
    """A serialized trace does not conform to the on-disk format."""


class TraceIntegrityError(TraceError):
    """A trace file's payload checksum does not match its contents.

    Raised when an ``RPT2`` file parses structurally but its stored CRC32
    disagrees with the bytes actually read — bit rot, torn writes, or
    deliberate corruption (see :mod:`repro.robustness.faultinject`).
    """


class WorkloadError(ReproError):
    """A workload specification is invalid or an unknown workload was named."""


class SimulationError(ReproError):
    """A simulation was driven incorrectly (e.g. results read before run)."""


class AllocationError(ReproError):
    """The physical memory allocator could not satisfy a request."""


class ExperimentError(ReproError):
    """An experiment suite was driven incorrectly or could not proceed."""


class StudyError(ExperimentError):
    """A declarative study is malformed or could not be executed.

    Raised by :mod:`repro.studies` for schema violations (unknown unit
    kind, a factor naming no parameter, an unconsumed fixed parameter),
    for unreadable study declaration files, and — in strict runs — when
    any compiled unit fails after retries.
    """


class BenchmarkError(ReproError):
    """A benchmark run or baseline comparison could not proceed.

    Raised by ``repro-bench`` when a baseline file is missing, corrupt,
    or from an incompatible suite — conditions distinct from a measured
    regression, which is reported through the comparison result (and a
    different exit code) rather than an exception.
    """


class DeadlineExceededError(ExperimentError):
    """A per-experiment wall-clock deadline expired before completion."""


class ParallelError(ReproError):
    """The parallel experiment engine was driven incorrectly.

    Examples: a dependency cycle among unit specs, a unit naming an
    unknown dependency, or a worker pool used after it was closed.
    """


class WorkerCrashError(ParallelError):
    """A worker process died without reporting a result.

    Raised (or recorded as a unit failure) when a forked worker
    disappears mid-unit — segfault, OOM kill, ``os._exit`` — rather
    than failing with a Python exception it could report over the
    result queue.
    """


class WorkerHangError(ParallelError):
    """A worker was detected hung and killed by the pool supervisor.

    Synthesized when a worker blows its per-unit deadline, stops
    heartbeating, or trips the RSS watchdog; the supervision layer kills
    the process (SIGKILL after a grace period) and requeues or fails the
    unit it was running.
    """


class PoisonUnitError(WorkerCrashError):
    """A unit was quarantined after killing too many workers.

    A unit that repeatedly crashes or hangs its worker (a segfaulting
    input, an unbounded allocation, an infinite loop) must not respawn
    workers forever; after ``max_worker_kills`` kill events the unit is
    marked FAILED with this error and a structured ``detail`` record in
    the journal, and the rest of the suite proceeds.
    """


class CacheError(ReproError):
    """A result-cache directory could not be created or written.

    Corrupt cache *entries* never raise — they are discarded and
    recomputed — but an unusable cache root is a configuration problem
    worth surfacing.
    """


class JournalError(ReproError):
    """A run journal is unreadable, corrupt, or from an incompatible run.

    Raised when a checkpoint journal's meta line is missing or its
    fingerprint (scale, seed, generator version) does not match the run
    being resumed, or when a non-final journal line is corrupt.  A torn
    *final* line — the signature of a crash mid-write — is tolerated and
    dropped, since re-running that one unit is exactly what resume is for.
    """
