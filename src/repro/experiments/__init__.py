"""One module per paper table/figure, plus headline stats and a CLI.

See DESIGN.md's per-experiment index for the mapping from paper
table/figure to module and benchmark target.
"""

from repro.experiments.ablations import (
    MultiprogrammingAblation,
    TwoLevelAblation,
    WalkCostAblation,
    run_twolevel_ablation,
    run_walkcost_ablation,
    PenaltyAblation,
    ProbeAblation,
    ReplacementAblation,
    SplitAblation,
    ThresholdAblation,
    run_multiprogramming_ablation,
    run_penalty_ablation,
    run_probe_ablation,
    run_replacement_ablation,
    run_split_ablation,
    run_threshold_ablation,
)
from repro.experiments.fig41 import Fig41Result, run_fig41
from repro.experiments.fig42 import Fig42Result, run_fig42
from repro.experiments.fig51 import Fig51Result, run_fig51
from repro.experiments.fig52 import Fig52Result, run_fig52
from repro.experiments.headline import HeadlineResult, run_headline
from repro.experiments.memdemand import MemDemandResult, run_memdemand
from repro.experiments.pairs import PairsResult, run_pairs
from repro.experiments.scale import ExperimentScale, default_scale, smoke_scale
from repro.experiments.table31 import Table31Result, run_table31
from repro.experiments.table51 import Table51Result, run_table51

__all__ = [
    "ExperimentScale",
    "MultiprogrammingAblation",
    "PairsResult",
    "PenaltyAblation",
    "ProbeAblation",
    "ReplacementAblation",
    "SplitAblation",
    "ThresholdAblation",
    "run_multiprogramming_ablation",
    "run_pairs",
    "run_memdemand",
    "MemDemandResult",
    "run_penalty_ablation",
    "run_probe_ablation",
    "run_replacement_ablation",
    "run_split_ablation",
    "run_threshold_ablation",
    "run_twolevel_ablation",
    "run_walkcost_ablation",
    "TwoLevelAblation",
    "WalkCostAblation",
    "Fig41Result",
    "Fig42Result",
    "Fig51Result",
    "Fig52Result",
    "HeadlineResult",
    "Table31Result",
    "Table51Result",
    "default_scale",
    "run_fig41",
    "run_fig42",
    "run_fig51",
    "run_fig52",
    "run_headline",
    "run_table31",
    "run_table51",
    "smoke_scale",
]
