"""Ablations of the design choices DESIGN.md calls out.

These go beyond the paper's printed evaluation but probe exactly the
sensitivities its text discusses:

* **Promotion threshold** (Section 3.4: "half or more") — sweep the
  promote fraction and watch CPI and working-set inflation trade off.
* **Miss-penalty factor** (Section 2.3's 25% estimate) — at what factor
  does each program's two-page-size win evaporate?  (The critical
  miss-penalty increase of Section 3.2, evaluated directly.)
* **Probe strategy** (Section 2.2 options a/b) — how many reprobes does
  the sequential exact-index strategy perform, and what hit-latency
  surcharge would erase the parallel strategy's advantage?
* **Split TLBs** (Section 2.2 option c) — a split 12+4 TLB versus a
  unified 16-entry one, including the "unused hardware" failure mode.
* **Replacement policy** — LRU (the paper's assumption) versus FIFO,
  random and tree-PLRU on the fully associative TLB.
* **Two-level TLBs** (Section 1's latency argument) — a micro-TLB
  backed by a larger L2 versus a flat design.
* **Walk-derived penalties** (Section 2.3) — the handler-cost factor
  the page-table structure itself implies, versus the assumed 1.25x.
* **Multiprogramming** (Sections 3.1/6: the missing workload) — flush
  versus ASID context handling under round-robin mixes, versus the
  programs run alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.scale import ExperimentScale, default_scale
from repro.report.table import TextTable
from repro.sim.config import TLBConfig, TwoSizeScheme
from repro.sim.driver import run_single_size, run_two_sizes
from repro.sim.config import SingleSizeScheme

# The study engine imports this package's ``scale`` module; importing it
# lazily (it pulls in the full driver stack anyway) keeps
# ``repro.studies`` importable on its own without a cycle through
# ``repro.experiments.__init__``.
from repro.studies.registry import (
    ABLATION_WORKLOADS,
    penalty_study,
    probe_study,
    replacement_study,
    split_study,
    threshold_study,
    twolevel_study,
)
from repro.trace.mix import round_robin_mix
from repro.types import PAGE_4KB


def _run_study(study, *, scale):
    """Run ``study`` through the compiler (lazy engine import)."""
    from repro.studies.engine import run_study

    return run_study(study, scale=scale)


def _by_workload(result, metric: str, **point) -> Dict[str, float]:
    """``{workload: value}`` in ablation-workload order."""
    return {
        name: result.value(metric, workload=name, **point)
        for name in ABLATION_WORKLOADS
    }


@dataclass(frozen=True)
class ThresholdAblation:
    """CPI and WS_Normalized per workload per promote fraction."""

    cpi: Dict[str, Dict[float, float]]
    ws: Dict[str, Dict[float, float]]
    fractions: Sequence[float]
    scale: ExperimentScale

    def render(self) -> str:
        headers = ["Program"]
        for fraction in self.fractions:
            headers += [f"CPI@{fraction:.2f}", f"WS@{fraction:.2f}"]
        table = TextTable(
            headers, title="Ablation: promotion threshold (16e FA, 4KB/32KB)"
        )
        for name in self.cpi:
            row: List = [name]
            for fraction in self.fractions:
                row += [self.cpi[name][fraction], self.ws[name][fraction]]
            table.add_row(*row)
        return table.render()


def run_threshold_ablation(
    scale: ExperimentScale = None,
    fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
) -> ThresholdAblation:
    """Sweep the promote threshold on the ablation workloads."""
    if scale is None:
        scale = default_scale()
    study = _run_study(threshold_study(fractions), scale=scale)
    fractions = tuple(fractions)
    cpi = {
        name: {
            f: study.value("cpi_tlb", workload=name, promote_fraction=f)
            for f in fractions
        }
        for name in ABLATION_WORKLOADS
    }
    ws = {
        name: {
            f: study.value("ws_normalized", workload=name, promote_fraction=f)
            for f in fractions
        }
        for name in ABLATION_WORKLOADS
    }
    return ThresholdAblation(cpi, ws, fractions, scale)


@dataclass(frozen=True)
class PenaltyAblation:
    """Two-size CPI as the penalty factor grows, vs the 4KB baseline."""

    baseline: Dict[str, float]
    cpi: Dict[str, Dict[float, float]]
    factors: Sequence[float]
    scale: ExperimentScale

    def breakeven_factor(self, name: str) -> float:
        """Largest swept factor at which two sizes still beat 4KB."""
        best = 0.0
        for factor in self.factors:
            if self.cpi[name][factor] < self.baseline[name]:
                best = factor
        return best

    def render(self) -> str:
        headers = ["Program", "4KB"] + [f"x{f:.2f}" for f in self.factors]
        table = TextTable(
            headers,
            title="Ablation: miss-penalty factor (16e FA, 4KB/32KB CPI)",
        )
        for name in self.cpi:
            table.add_row(
                name,
                self.baseline[name],
                *[self.cpi[name][factor] for factor in self.factors],
            )
        return table.render()


def run_penalty_ablation(
    scale: ExperimentScale = None,
    factors: Sequence[float] = (1.0, 1.25, 1.5, 2.0, 4.0),
) -> PenaltyAblation:
    """Sweep the two-page-size penalty factor on the ablation workloads."""
    if scale is None:
        scale = default_scale()
    study = _run_study(penalty_study(), scale=scale)
    baseline = _by_workload(study, "cpi_tlb", kind="single")
    # One simulation per workload; the penalty is a post-hoc scalar.
    cpi = {
        name: {
            factor: study.value("cpi_tlb", workload=name, kind="two_size")
            * factor
            for factor in factors
        }
        for name in ABLATION_WORKLOADS
    }
    return PenaltyAblation(baseline, cpi, tuple(factors), scale)


@dataclass(frozen=True)
class ProbeAblation:
    """Reprobe counts and latency surcharge of sequential exact probing."""

    misses: Dict[str, int]
    reprobes: Dict[str, int]
    references: Dict[str, int]
    scale: ExperimentScale

    def reprobe_rate(self, name: str) -> float:
        """Reprobes per reference (each costs an extra probe cycle)."""
        if self.references[name] == 0:
            return 0.0
        return self.reprobes[name] / self.references[name]

    def render(self) -> str:
        table = TextTable(
            ["Program", "misses", "reprobes", "reprobes/ref"],
            title=(
                "Ablation: sequential exact-index probing "
                "(16e 2-way, 4KB/32KB)"
            ),
            float_format="{:.4f}",
        )
        for name in self.misses:
            table.add_row(
                name,
                self.misses[name],
                self.reprobes[name],
                self.reprobe_rate(name),
            )
        return table.render()


def run_probe_ablation(scale: ExperimentScale = None) -> ProbeAblation:
    """Count sequential-probe reprobes on the ablation workloads."""
    if scale is None:
        scale = default_scale()
    study = _run_study(probe_study(), scale=scale)
    return ProbeAblation(
        _by_workload(study, "misses"),
        _by_workload(study, "reprobes"),
        _by_workload(study, "references"),
        scale,
    )


@dataclass(frozen=True)
class ReplacementAblation:
    """Single-4KB CPI on a 16-entry FA TLB per replacement policy."""

    cpi: Dict[str, Dict[str, float]]
    policies: Sequence[str]
    scale: ExperimentScale

    def render(self) -> str:
        table = TextTable(
            ["Program", *self.policies],
            title="Ablation: replacement policy (16e FA, 4KB pages, CPI)",
        )
        for name in self.cpi:
            table.add_row(
                name, *[self.cpi[name][policy] for policy in self.policies]
            )
        return table.render()


def run_replacement_ablation(
    scale: ExperimentScale = None,
    policies: Sequence[str] = ("lru", "fifo", "random", "plru"),
) -> ReplacementAblation:
    """Compare replacement policies on the ablation workloads."""
    if scale is None:
        scale = default_scale()
    study = _run_study(replacement_study(policies), scale=scale)
    cpi = {
        name: {
            policy: study.value("cpi_tlb", workload=name, replacement=policy)
            for policy in policies
        }
        for name in ABLATION_WORKLOADS
    }
    return ReplacementAblation(cpi, tuple(policies), scale)


@dataclass(frozen=True)
class SplitAblation:
    """Split 12+4 TLB versus unified 16-entry, two-page-size scheme."""

    unified_cpi: Dict[str, float]
    split_cpi: Dict[str, float]
    large_utilisation: Dict[str, float]
    scale: ExperimentScale

    def render(self) -> str:
        table = TextTable(
            ["Program", "unified 16e", "split 12+4", "large TLB util"],
            title="Ablation: split TLB (4KB/32KB, fully associative halves)",
        )
        for name in self.unified_cpi:
            table.add_row(
                name,
                self.unified_cpi[name],
                self.split_cpi[name],
                self.large_utilisation[name],
            )
        return table.render()


def run_split_ablation(scale: ExperimentScale = None) -> SplitAblation:
    """Compare a split TLB to a unified one on the ablation workloads."""
    if scale is None:
        scale = default_scale()
    study = _run_study(split_study(), scale=scale)
    utilisation = {
        name: study.value("large_occupancy", workload=name, kind="split")
        / 4.0
        for name in ABLATION_WORKLOADS
    }
    return SplitAblation(
        _by_workload(study, "cpi_tlb", kind="two_size"),
        _by_workload(study, "cpi_tlb", kind="split"),
        utilisation,
        scale,
    )


@dataclass(frozen=True)
class TwoLevelAblation:
    """Flat TLB versus a micro-TLB + L2 hierarchy (beyond-paper).

    Section 1's argument against simply growing the TLB is lookup
    latency; the hierarchy answer keeps a tiny L1 on the critical path.
    This ablation compares a flat 16-entry FA TLB against a 4-entry L1
    backed by a 32-entry L2 under the two-page-size scheme, charging
    ``l2_hit_cycles`` per L1-miss/L2-hit on top of the walk penalty for
    true misses.
    """

    flat_cpi: Dict[str, float]
    hierarchy_cpi: Dict[str, float]
    l2_hit_rate: Dict[str, float]
    l1_entries: int
    l2_entries: int
    scale: ExperimentScale

    def render(self) -> str:
        table = TextTable(
            ["Program", "flat 16e", f"{self.l1_entries}+{self.l2_entries} 2-level",
             "L2 catch rate"],
            title=(
                "Ablation: two-level TLB (4KB/32KB; L2 hit costs 4 cycles)"
            ),
        )
        for name in self.flat_cpi:
            table.add_row(
                name,
                self.flat_cpi[name],
                self.hierarchy_cpi[name],
                self.l2_hit_rate[name],
            )
        return table.render()


def run_twolevel_ablation(
    scale: ExperimentScale = None,
    l1_entries: int = 4,
    l2_entries: int = 32,
    l2_hit_cycles: float = 4.0,
) -> TwoLevelAblation:
    """Compare a flat TLB to a two-level hierarchy on the ablation set.

    Both arms run through the vector drivers: the flat TLB via
    :func:`run_two_sizes`, the hierarchy via
    :func:`~repro.sim.driver.run_two_level` (the reconstructed-L1-miss-
    stream kernel), with results threaded through the shared cache.
    The hierarchy is charged the same walk penalty as the flat arm on
    true misses, plus ``l2_hit_cycles`` per L1-miss/L2-hit.
    """
    if scale is None:
        scale = default_scale()
    study = _run_study(
        twolevel_study(l1_entries, l2_entries, l2_hit_cycles), scale=scale
    )
    return TwoLevelAblation(
        _by_workload(study, "cpi_tlb", kind="two_size"),
        _by_workload(study, "cpi_tlb", kind="twolevel"),
        _by_workload(study, "l2_catch_rate", kind="twolevel"),
        l1_entries,
        l2_entries,
        scale,
    )


@dataclass(frozen=True)
class WalkCostAblation:
    """Walk-derived miss penalties versus the paper's flat 25 cycles.

    For each workload: the large-page share of the dynamic scheme's
    misses and the blended penalty factor it implies under the
    :class:`~repro.mem.walkmodel.WalkCycleModel` (small miss = trap +
    two table reads, large miss = trap + three).  The paper assumed a
    flat 1.25x; this measures what the table structure itself predicts.
    """

    large_miss_fraction: Dict[str, float]
    blended_factor: Dict[str, float]
    small_cost: float
    large_cost: float
    scale: ExperimentScale

    def render(self) -> str:
        table = TextTable(
            ["Program", "large-miss share", "blended factor"],
            title=(
                f"Ablation: walk-derived penalty (small miss "
                f"{self.small_cost:.0f} cyc, large {self.large_cost:.0f}; "
                f"paper assumes flat 1.25x)"
            ),
        )
        for name in self.large_miss_fraction:
            table.add_row(
                name,
                self.large_miss_fraction[name],
                self.blended_factor[name],
            )
        return table.render()


def run_walkcost_ablation(scale: ExperimentScale = None) -> WalkCostAblation:
    """Derive per-workload penalty factors from page-table walk costs."""
    from repro.mem.walkmodel import WalkCycleModel
    from repro.workloads.registry import all_workloads

    if scale is None:
        scale = default_scale()
    model = WalkCycleModel()
    config = TLBConfig(16)
    cache = scale.sim_cache()
    scheme = TwoSizeScheme(window=scale.window)
    fractions: Dict[str, float] = {}
    factors: Dict[str, float] = {}
    for workload in all_workloads():
        trace = scale.trace(workload.name)
        (result,) = run_two_sizes(trace, scheme, [config], cache=cache)
        fraction = (
            result.large_misses / result.misses if result.misses else 0.0
        )
        fractions[workload.name] = fraction
        factors[workload.name] = model.blended_factor(fraction)
    return WalkCostAblation(
        fractions,
        factors,
        model.small_page_cost(),
        model.large_page_cost(),
        scale,
    )


@dataclass(frozen=True)
class MultiprogrammingAblation:
    """Solo vs mixed CPI on the 16-entry FA TLB, per context policy.

    ``mixed_cpi[(policy_name, quantum)]`` covers the flush-on-switch and
    ASID-tagged designs at each swept scheduling quantum, and
    ``disjoint_cpi[quantum]`` a disjoint-address-space mix (the
    :func:`round_robin_mix` model) at the *same* quanta, so every row of
    the table compares like-for-like.
    """

    solo_cpi: Dict[str, float]
    mixed_cpi: Dict[Tuple[str, int], float]
    disjoint_cpi: Dict[int, float]
    quanta: Tuple[int, ...]
    programs: Tuple[str, ...]
    scale: ExperimentScale

    def render(self) -> str:
        table = TextTable(
            ["Workload / design", "CPI_TLB"],
            title=(
                "Ablation: multiprogramming (round-robin, 16e FA, 4KB; "
                "beyond-paper)"
            ),
        )
        for name, value in self.solo_cpi.items():
            table.add_row(f"{name} (solo)", value)
        table.add_rule()
        for quantum in self.quanta:
            for policy in ("flush", "asid"):
                table.add_row(
                    f"mix, {policy}, quantum={quantum}",
                    self.mixed_cpi[(policy, quantum)],
                )
        table.add_rule()
        for quantum in self.quanta:
            table.add_row(
                f"mix, disjoint address spaces, quantum={quantum}",
                self.disjoint_cpi[quantum],
            )
        return table.render()


def run_multiprogramming_ablation(
    scale: ExperimentScale = None,
    programs: Sequence[str] = ABLATION_WORKLOADS,
    quanta: Sequence[int] = (5_000, 20_000),
) -> MultiprogrammingAblation:
    """The experiment the paper could not run: mixed-program TLB pressure.

    The flush/ASID grid is one :func:`sweep_multiprogrammed` call: each
    quantum's interleaving is built once and serves both policies from
    one epoch-segmented kernel pass apiece, with per-cell results cached
    under the ``"multiprog"`` kind and cells fanned out over
    ``scale.jobs`` workers.
    """
    from repro.sim.multiprog import sweep_multiprogrammed
    from repro.tlb.context import ContextSwitchPolicy

    if scale is None:
        scale = default_scale()
    config = TLBConfig(16)
    cache = scale.sim_cache()
    solo: Dict[str, float] = {}
    traces = []
    for name in programs:
        trace = scale.trace(name)
        traces.append(trace)
        solo[name] = run_single_size(
            trace, SingleSizeScheme(PAGE_4KB), config, cache=cache
        ).cpi_tlb

    grid = sweep_multiprogrammed(
        traces,
        (config,),
        quanta=quanta,
        policies=(ContextSwitchPolicy.FLUSH, ContextSwitchPolicy.ASID),
        cache=cache,
        jobs=scale.jobs,
    )
    mixed: Dict[Tuple[str, int], float] = {
        (policy, quantum): result.cpi_tlb
        for (policy, quantum, _label), result in grid.items()
    }

    disjoint_cpi: Dict[int, float] = {}
    for quantum in quanta:
        disjoint = round_robin_mix(traces, quantum=quantum)
        disjoint_cpi[quantum] = run_single_size(
            disjoint, SingleSizeScheme(PAGE_4KB), config, cache=cache
        ).cpi_tlb
    return MultiprogrammingAblation(
        solo, mixed, disjoint_cpi, tuple(quanta), tuple(programs), scale
    )
