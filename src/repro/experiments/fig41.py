"""Experiment: Figure 4.1 — WS_Normalized vs single page size.

For each workload and each single page size (8KB..64KB), the average
working-set size normalised to 4KB pages.  The paper's findings to
reproduce: every curve rises with page size (roughly proportionally),
dense linear-looping programs (matrix300, tomcatv) rise least, sparse
programs (li, espresso) most, and the cross-workload averages land
around 1.67 at 32KB and 2.03 at 64KB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.scale import ExperimentScale, default_scale
from repro.metrics.wsnorm import arithmetic_mean
from repro.report.table import TextTable
from repro.stacksim.working_set import average_working_set_bytes
from repro.types import (
    PAGE_4KB,
    PAGE_8KB,
    PAGE_16KB,
    PAGE_32KB,
    PAGE_64KB,
    format_size,
)

#: The page sizes on Figure 4.1's X axis (4KB is the normalisation base).
FIG41_PAGE_SIZES = (PAGE_8KB, PAGE_16KB, PAGE_32KB, PAGE_64KB)


@dataclass(frozen=True)
class Fig41Result:
    """WS_Normalized per workload per page size.

    ``values[name][page_size]`` is WS_Normalized; the 4KB baseline (1.0)
    is implicit.  ``baselines[name]`` is s(T, 4KB) in bytes.
    """

    values: Dict[str, Dict[int, float]]
    baselines: Dict[str, float]
    page_sizes: Sequence[int]
    scale: ExperimentScale

    def average(self, page_size: int) -> float:
        """Cross-workload average WS_Normalized at ``page_size``."""
        return arithmetic_mean(
            [per_size[page_size] for per_size in self.values.values()]
        )

    def workloads(self) -> List[str]:
        return list(self.values)

    def render(self) -> str:
        headers = ["Program"] + [
            format_size(page_size) for page_size in self.page_sizes
        ]
        table = TextTable(
            headers,
            title=(
                f"Figure 4.1: WS_Normalized vs page size "
                f"(T={self.scale.window} refs; 4KB = 1.0)"
            ),
            float_format="{:.2f}",
        )
        for name, per_size in self.values.items():
            table.add_row(
                name, *[per_size[size] for size in self.page_sizes]
            )
        table.add_rule()
        table.add_row(
            "average", *[self.average(size) for size in self.page_sizes]
        )
        return table.render()

    def to_csv(self) -> str:
        """Export the WS_Normalized series for external plotting."""
        from repro.report.figures import series_csv

        columns = {
            format_size(size): {
                name: self.values[name][size] for name in self.values
            }
            for size in self.page_sizes
        }
        return series_csv(list(self.values), columns)


def run_fig41(
    scale: ExperimentScale = None,
    page_sizes: Sequence[int] = FIG41_PAGE_SIZES,
) -> Fig41Result:
    """Measure Figure 4.1 at the given scale."""
    if scale is None:
        scale = default_scale()
    from repro.experiments.scale import map_workloads
    from repro.workloads.registry import workload_names

    all_sizes = [PAGE_4KB] + list(page_sizes)

    def measure(name: str) -> Dict[int, float]:
        trace = scale.trace(name)
        return {
            size: average_working_set_bytes(trace, size, [scale.window])[
                scale.window
            ]
            for size in all_sizes
        }

    values: Dict[str, Dict[int, float]] = {}
    baselines: Dict[str, float] = {}
    names = workload_names()
    for name, measured in zip(
        names, map_workloads(measure, names, jobs=scale.jobs)
    ):
        baseline = measured[PAGE_4KB]
        baselines[name] = baseline
        values[name] = {
            size: (measured[size] / baseline if baseline else 1.0)
            for size in page_sizes
        }
    return Fig41Result(values, baselines, tuple(page_sizes), scale)
