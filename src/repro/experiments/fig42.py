"""Experiment: Figure 4.2 — WS_Normalized, single sizes vs two page sizes.

Extends Figure 4.1 with the two-page-size scheme (4KB/32KB under the
Section 3.4 promotion policy).  The paper's findings to reproduce: the
two-page-size working set inflates only 1.01x-1.22x (average ~1.1) —
less than *any* single page size above 4KB, including 8KB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.scale import ExperimentScale, default_scale
from repro.metrics.wsnorm import arithmetic_mean
from repro.policy.dynamic_ws import dynamic_average_working_set
from repro.report.table import TextTable
from repro.stacksim.working_set import average_working_set_bytes
from repro.types import (
    PAGE_4KB,
    PAGE_8KB,
    PAGE_16KB,
    PAGE_32KB,
    PAIR_4KB_32KB,
    PageSizePair,
    format_size,
)

#: Figure 4.2's single-page-size bars (plus the two-size scheme).
FIG42_PAGE_SIZES = (PAGE_8KB, PAGE_16KB, PAGE_32KB)


@dataclass(frozen=True)
class Fig42Result:
    """WS_Normalized per workload: single sizes and the two-size scheme.

    ``single[name][page_size]`` and ``two_size[name]`` are WS_Normalized
    values; ``promotions[name]`` counts policy promotions (zero means the
    scheme degenerated to all-small pages for that program).
    """

    single: Dict[str, Dict[int, float]]
    two_size: Dict[str, float]
    promotions: Dict[str, int]
    page_sizes: Sequence[int]
    pair: PageSizePair
    scale: ExperimentScale

    def average_single(self, page_size: int) -> float:
        return arithmetic_mean(
            [per_size[page_size] for per_size in self.single.values()]
        )

    def average_two_size(self) -> float:
        return arithmetic_mean(list(self.two_size.values()))

    def workloads(self) -> List[str]:
        return list(self.single)

    def render(self) -> str:
        headers = (
            ["Program"]
            + [format_size(size) for size in self.page_sizes]
            + [str(self.pair), "promotions"]
        )
        table = TextTable(
            headers,
            title=(
                f"Figure 4.2: WS_Normalized, single vs two page sizes "
                f"(T={self.scale.window} refs; 4KB = 1.0)"
            ),
            float_format="{:.2f}",
        )
        for name in self.single:
            table.add_row(
                name,
                *[self.single[name][size] for size in self.page_sizes],
                self.two_size[name],
                self.promotions[name],
            )
        table.add_rule()
        table.add_row(
            "average",
            *[self.average_single(size) for size in self.page_sizes],
            self.average_two_size(),
            None,
        )
        return table.render()

    def to_csv(self) -> str:
        """Export the WS_Normalized series for external plotting."""
        from repro.report.figures import series_csv

        columns = {
            format_size(size): {
                name: self.single[name][size] for name in self.single
            }
            for size in self.page_sizes
        }
        columns[str(self.pair)] = dict(self.two_size)
        return series_csv(list(self.single), columns)


def run_fig42(
    scale: ExperimentScale = None,
    page_sizes: Sequence[int] = FIG42_PAGE_SIZES,
    pair: PageSizePair = PAIR_4KB_32KB,
) -> Fig42Result:
    """Measure Figure 4.2 at the given scale."""
    if scale is None:
        scale = default_scale()
    from repro.experiments.scale import map_workloads
    from repro.workloads.registry import workload_names

    def measure(name: str):
        trace = scale.trace(name)
        baseline = average_working_set_bytes(trace, PAGE_4KB, [scale.window])[
            scale.window
        ]
        normalized = {}
        for size in page_sizes:
            measured = average_working_set_bytes(trace, size, [scale.window])[
                scale.window
            ]
            normalized[size] = measured / baseline if baseline else 1.0
        dynamic = dynamic_average_working_set(trace, pair, scale.window)
        ratio = dynamic.average_bytes / baseline if baseline else 1.0
        return normalized, ratio, dynamic.promotions

    single: Dict[str, Dict[int, float]] = {}
    two_size: Dict[str, float] = {}
    promotions: Dict[str, int] = {}
    names = workload_names()
    for name, (normalized, ratio, promoted) in zip(
        names, map_workloads(measure, names, jobs=scale.jobs)
    ):
        single[name] = normalized
        two_size[name] = ratio
        promotions[name] = promoted
    return Fig42Result(
        single, two_size, promotions, tuple(page_sizes), pair, scale
    )
