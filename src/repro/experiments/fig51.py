"""Experiment: Figure 5.1 — CPI_TLB for a 16-entry fully associative TLB.

Four bars per program: single page sizes 4KB, 8KB, 32KB (20-cycle miss
penalty) and the two-page-size 4KB/32KB scheme (25-cycle penalty).  The
paper's findings to reproduce: 32KB cuts CPI_TLB by roughly the page-size
ratio (a factor approaching eight); the two-page-size scheme comes close
to the 32KB bar (the gap being mostly the penalty increase) and usually
beats a single 8KB page.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.scale import ExperimentScale, default_scale
from repro.report.table import TextTable
from repro.sim.config import TLBConfig, TwoSizeScheme
from repro.sim.driver import RunResult, run_two_sizes
from repro.sim.sweep import sweep_single_size
from repro.types import PAGE_4KB, PAGE_8KB, PAGE_32KB, format_size

#: Figure 5.1's single-size bars.
FIG51_PAGE_SIZES = (PAGE_4KB, PAGE_8KB, PAGE_32KB)

#: The figure's hardware: one 16-entry fully associative TLB.
FIG51_CONFIG = TLBConfig(entries=16)


@dataclass(frozen=True)
class Fig51Result:
    """CPI_TLB per workload per scheme for the FA-16 TLB.

    ``single[name][page_size]`` and ``two_size[name]`` hold
    :class:`RunResult` objects (use ``.cpi_tlb``).
    """

    single: Dict[str, Dict[int, RunResult]]
    two_size: Dict[str, RunResult]
    page_sizes: Sequence[int]
    config: TLBConfig
    scale: ExperimentScale

    def workloads(self) -> List[str]:
        return list(self.single)

    def reduction_factor(self, name: str, page_size: int = PAGE_32KB) -> float:
        """CPI(4KB) / CPI(page_size): the large-page improvement factor."""
        large = self.single[name][page_size].cpi_tlb
        base = self.single[name][PAGE_4KB].cpi_tlb
        if large == 0.0:
            return float("inf")
        return base / large

    def render(self) -> str:
        headers = (
            ["Program"]
            + [format_size(size) for size in self.page_sizes]
            + ["4KB/32KB"]
        )
        table = TextTable(
            headers,
            title=(
                f"Figure 5.1: CPI_TLB, {self.config.label} "
                f"(penalty 20 cycles; 25 for two sizes)"
            ),
        )
        for name in self.single:
            table.add_row(
                name,
                *[self.single[name][size].cpi_tlb for size in self.page_sizes],
                self.two_size[name].cpi_tlb,
            )
        return table.render()

    def render_chart(self) -> str:
        """Render the figure as grouped bars, like the paper's histogram."""
        from repro.report.figures import GroupedBarChart

        labels = [format_size(size) for size in self.page_sizes] + [
            "4KB/32KB"
        ]
        chart = GroupedBarChart(
            labels,
            title=f"Figure 5.1: CPI_TLB, {self.config.label}",
        )
        for name in self.single:
            values = {
                format_size(size): self.single[name][size].cpi_tlb
                for size in self.page_sizes
            }
            values["4KB/32KB"] = self.two_size[name].cpi_tlb
            chart.add_group(name, values)
        return chart.render()

    def to_csv(self) -> str:
        """Export the figure's series as CSV for external plotting."""
        from repro.report.figures import series_csv

        columns = {
            format_size(size): {
                name: self.single[name][size].cpi_tlb for name in self.single
            }
            for size in self.page_sizes
        }
        columns["4KB/32KB"] = {
            name: self.two_size[name].cpi_tlb for name in self.two_size
        }
        return series_csv(list(self.single), columns)


def run_fig51(
    scale: ExperimentScale = None,
    page_sizes: Sequence[int] = FIG51_PAGE_SIZES,
    config: TLBConfig = FIG51_CONFIG,
) -> Fig51Result:
    """Measure Figure 5.1 at the given scale."""
    if scale is None:
        scale = default_scale()
    from repro.experiments.scale import map_workloads
    from repro.workloads.registry import workload_names

    scheme = TwoSizeScheme(window=scale.window)
    cache = scale.sim_cache()

    def measure(name: str):
        trace = scale.trace(name)
        swept = sweep_single_size(trace, page_sizes, [config], cache=cache)
        (two,) = run_two_sizes(trace, scheme, [config], cache=cache)
        return swept, two

    single: Dict[str, Dict[int, RunResult]] = {}
    two_size: Dict[str, RunResult] = {}
    names = workload_names()
    for name, (swept, two) in zip(
        names, map_workloads(measure, names, jobs=scale.jobs)
    ):
        single[name] = {
            size: swept[(size, config.label)] for size in page_sizes
        }
        two_size[name] = two
    return Fig51Result(single, two_size, tuple(page_sizes), config, scale)
