"""Experiment: Figure 5.2 — CPI_TLB for two-way set-associative TLBs.

16-entry and 32-entry two-way TLBs; bars for single page sizes 4KB, 8KB,
32KB and for the two-page-size scheme with the *exact* index (the best
of the Section 2.2 options).  The paper's findings to reproduce: large
pages mostly help (matrix300 dramatically); eight of twelve programs
improve with two page sizes over 4KB; espresso and worm degrade; and
tomcatv thrashes pathologically once chunk bits index the TLB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.scale import ExperimentScale, default_scale
from repro.report.table import TextTable
from repro.sim.config import TLBConfig, TwoSizeScheme
from repro.sim.driver import RunResult, run_two_sizes
from repro.sim.sweep import sweep_single_size
from repro.tlb.indexing import IndexingScheme
from repro.types import PAGE_4KB, PAGE_8KB, PAGE_32KB, format_size

#: Figure 5.2's single-size bars.
FIG52_PAGE_SIZES = (PAGE_4KB, PAGE_8KB, PAGE_32KB)

#: The figure's hardware: 16- and 32-entry two-way TLBs (exact index for
#: the two-page-size bars).
FIG52_CONFIGS = (
    TLBConfig(16, 2, IndexingScheme.EXACT_INDEX),
    TLBConfig(32, 2, IndexingScheme.EXACT_INDEX),
)


@dataclass(frozen=True)
class Fig52Result:
    """CPI_TLB per workload per (TLB config, scheme).

    ``single[name][(entries, page_size)]`` and ``two_size[name][entries]``
    hold :class:`RunResult` objects.
    """

    single: Dict[str, Dict[Tuple[int, int], RunResult]]
    two_size: Dict[str, Dict[int, RunResult]]
    page_sizes: Sequence[int]
    configs: Sequence[TLBConfig]
    scale: ExperimentScale

    def workloads(self) -> List[str]:
        return list(self.single)

    def improves_with_two_sizes(self, name: str, entries: int) -> bool:
        """Does the two-size scheme beat single 4KB for this program?"""
        return (
            self.two_size[name][entries].cpi_tlb
            < self.single[name][(entries, PAGE_4KB)].cpi_tlb
        )

    def render(self) -> str:
        blocks = []
        for config in self.configs:
            headers = (
                ["Program"]
                + [format_size(size) for size in self.page_sizes]
                + ["4KB/32KB"]
            )
            table = TextTable(
                headers,
                title=(
                    f"Figure 5.2: CPI_TLB, {config.label} "
                    f"(two-size bars use the exact index)"
                ),
            )
            for name in self.single:
                table.add_row(
                    name,
                    *[
                        self.single[name][(config.entries, size)].cpi_tlb
                        for size in self.page_sizes
                    ],
                    self.two_size[name][config.entries].cpi_tlb,
                )
            blocks.append(table.render())
        return "\n\n".join(blocks)

    def render_chart(self) -> str:
        """Render both halves as grouped bars, like the paper's figure."""
        from repro.report.figures import GroupedBarChart

        labels = [format_size(size) for size in self.page_sizes] + [
            "4KB/32KB"
        ]
        blocks = []
        for config in self.configs:
            chart = GroupedBarChart(
                labels, title=f"Figure 5.2: CPI_TLB, {config.label}"
            )
            for name in self.single:
                values = {
                    format_size(size): self.single[name][
                        (config.entries, size)
                    ].cpi_tlb
                    for size in self.page_sizes
                }
                values["4KB/32KB"] = self.two_size[name][
                    config.entries
                ].cpi_tlb
                chart.add_group(name, values)
            blocks.append(chart.render())
        return "\n\n".join(blocks)

    def to_csv(self) -> str:
        """Export both halves' series as CSV (entries prefixed)."""
        from repro.report.figures import series_csv

        columns = {}
        for config in self.configs:
            for size in self.page_sizes:
                columns[f"{config.entries}e-{format_size(size)}"] = {
                    name: self.single[name][(config.entries, size)].cpi_tlb
                    for name in self.single
                }
            columns[f"{config.entries}e-4KB/32KB"] = {
                name: self.two_size[name][config.entries].cpi_tlb
                for name in self.two_size
            }
        return series_csv(list(self.single), columns)


def run_fig52(
    scale: ExperimentScale = None,
    page_sizes: Sequence[int] = FIG52_PAGE_SIZES,
    configs: Sequence[TLBConfig] = FIG52_CONFIGS,
) -> Fig52Result:
    """Measure Figure 5.2 at the given scale."""
    if scale is None:
        scale = default_scale()
    from repro.experiments.scale import map_workloads
    from repro.workloads.registry import workload_names

    scheme = TwoSizeScheme(window=scale.window)
    cache = scale.sim_cache()

    def measure(name: str):
        trace = scale.trace(name)
        swept = sweep_single_size(
            trace, page_sizes, list(configs), cache=cache
        )
        results = run_two_sizes(trace, scheme, list(configs), cache=cache)
        return swept, results

    single: Dict[str, Dict[Tuple[int, int], RunResult]] = {}
    two_size: Dict[str, Dict[int, RunResult]] = {}
    names = workload_names()
    for name, (swept, results) in zip(
        names, map_workloads(measure, names, jobs=scale.jobs)
    ):
        single[name] = {
            (config.entries, size): swept[(size, config.label)]
            for config in configs
            for size in page_sizes
        }
        two_size[name] = {
            result.config.entries: result for result in results
        }
    return Fig52Result(
        single, two_size, tuple(page_sizes), tuple(configs), scale
    )
