"""Experiment: the paper's headline cross-workload statistics.

Collects the numbers quoted in the abstract and Section 6:

* average WS_Normalized at 32KB (~1.67) and 64KB (~2.03), T = 10M;
* two-page-size WS_Normalized range 1.01-1.22, average ~1.1;
* the 32KB CPI_TLB reduction factor for the FA-16 TLB (roughly eight);
* how many of the twelve programs improve with two page sizes on the
  two-way TLBs (paper: eight of twelve at 16 entries);
* the critical miss-penalty increase range over improving programs
  (paper: ~30% to ~1200%).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.fig41 import run_fig41
from repro.experiments.fig42 import run_fig42
from repro.experiments.fig51 import run_fig51
from repro.experiments.fig52 import run_fig52
from repro.experiments.scale import ExperimentScale, default_scale
from repro.metrics.cpi import critical_miss_penalty_increase
from repro.metrics.wsnorm import geometric_mean
from repro.report.table import TextTable
from repro.types import PAGE_4KB, PAGE_32KB, PAGE_64KB


@dataclass(frozen=True)
class HeadlineResult:
    """The cross-workload summary statistics."""

    ws_normalized_32kb: float
    ws_normalized_64kb: float
    ws_normalized_two_size_mean: float
    ws_normalized_two_size_range: Tuple[float, float]
    fa16_reduction_factors: Dict[str, float]
    improving_programs_16: List[str]
    degrading_programs_16: List[str]
    critical_penalty_range: Tuple[float, float]
    scale: ExperimentScale

    @property
    def fa16_mean_reduction(self) -> float:
        """Geometric mean of the per-program reduction factors.

        The geometric mean is the right average for ratios: a couple of
        programs whose misses all but vanish at 32KB (fpppp's code fits
        in a handful of large pages) would dominate an arithmetic mean.
        """
        finite = [
            factor
            for factor in self.fa16_reduction_factors.values()
            if math.isfinite(factor) and factor > 0
        ]
        return geometric_mean(finite) if finite else math.inf

    def render(self) -> str:
        table = TextTable(
            ["Statistic", "Paper", "Measured"],
            title="Headline statistics (paper vs this reproduction)",
            float_format="{:.2f}",
        )
        low, high = self.ws_normalized_two_size_range
        cp_low, cp_high = self.critical_penalty_range
        table.add_row(
            "avg WS_Normalized(32KB)", "1.67", self.ws_normalized_32kb
        )
        table.add_row(
            "avg WS_Normalized(64KB)", "2.03", self.ws_normalized_64kb
        )
        table.add_row(
            "avg WS_Normalized(4KB/32KB)",
            "~1.1",
            self.ws_normalized_two_size_mean,
        )
        table.add_row(
            "WS_Normalized(4KB/32KB) range",
            "1.01-1.22",
            f"{low:.2f}-{high:.2f}",
        )
        table.add_row(
            "FA-16 CPI reduction, 32KB vs 4KB",
            "~3x-8x",
            f"{self.fa16_mean_reduction:.1f}x",
        )
        table.add_row(
            "programs improving w/ two sizes (16e 2-way)",
            "8 of 12",
            f"{len(self.improving_programs_16)} of 12",
        )
        table.add_row(
            "critical penalty increase range",
            "30%-1200%",
            f"{cp_low:.0f}%-{cp_high:.0f}%",
        )
        return table.render()


def run_headline(scale: ExperimentScale = None) -> HeadlineResult:
    """Compute the headline statistics at the given scale."""
    if scale is None:
        scale = default_scale()
    fig41 = run_fig41(scale)
    fig42 = run_fig42(scale)
    fig51 = run_fig51(scale)
    fig52 = run_fig52(scale)

    two_size_values = list(fig42.two_size.values())
    reduction = {
        name: fig51.reduction_factor(name, PAGE_32KB)
        for name in fig51.workloads()
    }

    improving = []
    degrading = []
    critical: List[float] = []
    for name in fig52.workloads():
        baseline = fig52.single[name][(16, PAGE_4KB)].performance
        candidate = fig52.two_size[name][16].performance
        if candidate.cpi_tlb < baseline.cpi_tlb:
            improving.append(name)
            delta = critical_miss_penalty_increase(baseline, candidate)
            if math.isfinite(delta):
                critical.append(delta)
        else:
            degrading.append(name)

    critical_range = (
        (min(critical), max(critical)) if critical else (0.0, 0.0)
    )
    return HeadlineResult(
        ws_normalized_32kb=fig41.average(PAGE_32KB),
        ws_normalized_64kb=fig41.average(PAGE_64KB),
        ws_normalized_two_size_mean=fig42.average_two_size(),
        ws_normalized_two_size_range=(
            min(two_size_values),
            max(two_size_values),
        ),
        fa16_reduction_factors=reduction,
        improving_programs_16=improving,
        degrading_programs_16=degrading,
        critical_penalty_range=critical_range,
        scale=scale,
    )
