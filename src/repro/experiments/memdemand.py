"""Experiment: memory demand — fault rate versus physical memory.

The paper declines to convert working-set inflation into a CPI number
("it is difficult to relate WS_Normalized directly to a change in
program execution time", Section 3.2) but states the mechanism: bigger
working sets mean more page faults at a fixed memory size.  This
beyond-paper experiment runs global-LRU paging for the three schemes —
4KB, 32KB and dynamic 4KB/32KB — across a sweep of memory budgets, so
the inflation columns of Figure 4.2 become fault-rate curves.

Expected shape: at generous memory all schemes fault only on first
touch; under pressure the 32KB scheme faults hardest (its working set
is the most inflated), the two-size scheme tracks the 4KB curve
closely, and the gap is widest for the sparse programs (worm, espresso)
whose 32KB working sets ballooned most in Figure 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.experiments.scale import ExperimentScale, default_scale
from repro.mem.pageout import single_size_paging, two_size_paging
from repro.report.table import TextTable
from repro.types import MB, PAGE_4KB, PAGE_32KB, PAIR_4KB_32KB, format_size

#: Workloads spanning the inflation spectrum: dense, mid, sparse.
MEMDEMAND_WORKLOADS = ("matrix300", "li", "worm")

#: Physical-memory sweep, scaled to the workloads' 0.2-1.5MB footprints.
MEMDEMAND_MEMORY = (256 * 1024, 512 * 1024, 1 * MB, 2 * MB, 4 * MB)

#: Scheme labels in presentation order.
MEMDEMAND_SCHEMES = ("4KB", "32KB", "4KB/32KB")


@dataclass(frozen=True)
class MemDemandResult:
    """Fault ratios per (workload, scheme, memory budget)."""

    fault_ratio: Dict[Tuple[str, str, int], float]
    memory_sizes: Sequence[int]
    scale: ExperimentScale

    def workloads(self):
        return sorted({key[0] for key in self.fault_ratio})

    def render(self) -> str:
        headers = ["Program / scheme"] + [
            format_size(memory) for memory in self.memory_sizes
        ]
        table = TextTable(
            headers,
            title=(
                "Memory demand: page-fault ratio vs physical memory "
                "(global LRU; beyond-paper)"
            ),
            float_format="{:.4f}",
        )
        for name in MEMDEMAND_WORKLOADS:
            if (name, "4KB", self.memory_sizes[0]) not in self.fault_ratio:
                continue
            for scheme in MEMDEMAND_SCHEMES:
                table.add_row(
                    f"{name} / {scheme}",
                    *[
                        self.fault_ratio[(name, scheme, memory)]
                        for memory in self.memory_sizes
                    ],
                )
            table.add_rule()
        return table.render()


def run_memdemand(
    scale: ExperimentScale = None,
    workloads: Sequence[str] = MEMDEMAND_WORKLOADS,
    memory_sizes: Sequence[int] = MEMDEMAND_MEMORY,
) -> MemDemandResult:
    """Measure the fault-rate curves at the given scale."""
    if scale is None:
        scale = default_scale()
    from repro.experiments.scale import map_workloads

    def measure(name: str) -> Dict[Tuple[str, str, int], float]:
        trace = scale.trace(name)
        ratios: Dict[Tuple[str, str, int], float] = {}
        for memory in memory_sizes:
            small = single_size_paging(trace, PAGE_4KB, memory)
            ratios[(name, "4KB", memory)] = small.fault_ratio
            large = single_size_paging(trace, PAGE_32KB, memory)
            ratios[(name, "32KB", memory)] = large.fault_ratio
            two = two_size_paging(
                trace, PAIR_4KB_32KB, scale.window, memory
            )
            ratios[(name, "4KB/32KB", memory)] = two.fault_ratio
        return ratios

    fault_ratio: Dict[Tuple[str, str, int], float] = {}
    for ratios in map_workloads(measure, list(workloads), jobs=scale.jobs):
        fault_ratio.update(ratios)
    return MemDemandResult(fault_ratio, tuple(memory_sizes), scale)
