"""Experiment: alternative page-size pairs (Section 3.2's aside).

The paper collected data for 4KB/16KB and 4KB/64KB alongside the
presented 4KB/32KB but had no space to print it.  This experiment
regenerates that comparison: working-set inflation and CPI_TLB of the
three pairs on the 16-entry fully associative TLB.

Expected shape: a larger large-page size maps more memory per entry
(lower CPI for promotable programs) at the cost of a stricter promotion
threshold (half of 16 blocks for 4KB/64KB) and more inflation when a
promotion over-includes cold blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.experiments.scale import ExperimentScale, default_scale
from repro.policy.dynamic_ws import dynamic_average_working_set
from repro.report.table import TextTable
from repro.sim.config import TLBConfig, TwoSizeScheme
from repro.sim.driver import RunResult, run_two_sizes
from repro.sim.sweep import sweep_single_size
from repro.stacksim.working_set import average_working_set_bytes
from repro.types import (
    PAGE_4KB,
    PAIR_4KB_16KB,
    PAIR_4KB_32KB,
    PAIR_4KB_64KB,
    PageSizePair,
)

#: The three pairs the paper measured.
PAIR_CHOICES = (PAIR_4KB_16KB, PAIR_4KB_32KB, PAIR_4KB_64KB)

#: The comparison hardware: the Figure 5.1 fully associative TLB.
PAIRS_CONFIG = TLBConfig(entries=16)


@dataclass(frozen=True)
class PairsResult:
    """Per workload, per pair: WS_Normalized and CPI_TLB.

    ``ws[name][pair]`` is the two-page-size WS_Normalized;
    ``cpi[name][pair]`` the :class:`RunResult`; ``baseline_cpi[name]``
    the single-4KB CPI for reference.
    """

    ws: Dict[str, Dict[PageSizePair, float]]
    cpi: Dict[str, Dict[PageSizePair, RunResult]]
    baseline_cpi: Dict[str, float]
    pairs: Sequence[PageSizePair]
    scale: ExperimentScale

    def render(self) -> str:
        headers = ["Program", "4KB CPI"]
        for pair in self.pairs:
            headers += [f"{pair} CPI", f"{pair} WS"]
        table = TextTable(
            headers,
            title=(
                "Alternative page-size pairs (16-entry FA TLB; "
                "WS columns are WS_Normalized)"
            ),
        )
        for name in self.ws:
            row = [name, self.baseline_cpi[name]]
            for pair in self.pairs:
                row += [self.cpi[name][pair].cpi_tlb, self.ws[name][pair]]
            table.add_row(*row)
        return table.render()


def run_pairs(
    scale: ExperimentScale = None,
    pairs: Sequence[PageSizePair] = PAIR_CHOICES,
    config: TLBConfig = PAIRS_CONFIG,
) -> PairsResult:
    """Measure the pair comparison at the given scale."""
    if scale is None:
        scale = default_scale()
    from repro.experiments.scale import map_workloads
    from repro.workloads.registry import workload_names

    cache = scale.sim_cache()

    def measure(name: str):
        trace = scale.trace(name)
        baseline_ws = average_working_set_bytes(
            trace, PAGE_4KB, [scale.window]
        )[scale.window]
        swept = sweep_single_size(trace, [PAGE_4KB], [config], cache=cache)
        baseline = swept[(PAGE_4KB, config.label)].cpi_tlb
        pair_cpi: Dict[PageSizePair, RunResult] = {}
        pair_ws: Dict[PageSizePair, float] = {}
        for pair in pairs:
            scheme = TwoSizeScheme(pair=pair, window=scale.window)
            (result,) = run_two_sizes(trace, scheme, [config], cache=cache)
            pair_cpi[pair] = result
            dynamic = dynamic_average_working_set(trace, pair, scale.window)
            pair_ws[pair] = (
                dynamic.average_bytes / baseline_ws if baseline_ws else 1.0
            )
        return baseline, pair_ws, pair_cpi

    ws: Dict[str, Dict[PageSizePair, float]] = {}
    cpi: Dict[str, Dict[PageSizePair, RunResult]] = {}
    baseline_cpi: Dict[str, float] = {}
    names = workload_names()
    for name, (baseline, pair_ws, pair_cpi) in zip(
        names, map_workloads(measure, names, jobs=scale.jobs)
    ):
        baseline_cpi[name] = baseline
        ws[name] = pair_ws
        cpi[name] = pair_cpi
    return PairsResult(ws, cpi, baseline_cpi, tuple(pairs), scale)
