"""Command-line experiment runner.

``repro-experiments [names...]`` regenerates any subset of the paper's
tables and figures at the default (or environment-overridden) scale and
prints them in the paper's layout.  With no arguments it runs everything
in paper order.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.experiments.ablations import (
    run_multiprogramming_ablation,
    run_twolevel_ablation,
    run_walkcost_ablation,
    run_penalty_ablation,
    run_probe_ablation,
    run_replacement_ablation,
    run_split_ablation,
    run_threshold_ablation,
)
from repro.experiments.fig41 import run_fig41
from repro.experiments.fig42 import run_fig42
from repro.experiments.fig51 import run_fig51
from repro.experiments.fig52 import run_fig52
from repro.experiments.headline import run_headline
from repro.experiments.memdemand import run_memdemand
from repro.experiments.pairs import run_pairs
from repro.experiments.scale import ExperimentScale, default_scale
from repro.experiments.table31 import run_table31
from repro.experiments.table51 import run_table51

#: Experiment name -> runner; paper artifacts first, then extensions.
EXPERIMENTS: Dict[str, Callable[[ExperimentScale], object]] = {
    "table31": run_table31,
    "fig41": run_fig41,
    "fig42": run_fig42,
    "fig51": run_fig51,
    "fig52": run_fig52,
    "table51": run_table51,
    "headline": run_headline,
    "pairs": run_pairs,
    "threshold": run_threshold_ablation,
    "penalty": run_penalty_ablation,
    "probe": run_probe_ablation,
    "replacement": run_replacement_ablation,
    "split": run_split_ablation,
    "multiprogramming": run_multiprogramming_ablation,
    "walkcost": run_walkcost_ablation,
    "memdemand": run_memdemand,
    "twolevel": run_twolevel_ablation,
}


def main(argv=None) -> int:
    """Entry point for the ``repro-experiments`` console script."""
    parser = argparse.ArgumentParser(
        description=(
            "Regenerate the tables and figures of 'Tradeoffs in "
            "Supporting Two Page Sizes' (ISCA 1992)."
        )
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=[*EXPERIMENTS, "all"],
        default=["all"],
        help="which experiments to run (default: all)",
    )
    parser.add_argument(
        "--trace-length",
        type=int,
        default=None,
        help="references per workload trace (default 400000)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=None,
        help="working-set window T in references (default 50000)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="regenerate traces instead of using the on-disk cache",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also print bar-chart renderings where an experiment has one",
    )
    parser.add_argument(
        "--csv-dir",
        default=None,
        help="directory to write CSV series exports where available",
    )
    args = parser.parse_args(argv)

    base = default_scale()
    scale = ExperimentScale(
        trace_length=args.trace_length or base.trace_length,
        window=args.window or base.window,
        use_cache=not args.no_cache,
    )

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    for name in names:
        started = time.time()
        result = EXPERIMENTS[name](scale)
        elapsed = time.time() - started
        print(result.render())
        if args.chart and hasattr(result, "render_chart"):
            print()
            print(result.render_chart())
        if args.csv_dir and hasattr(result, "to_csv"):
            from pathlib import Path

            directory = Path(args.csv_dir)
            directory.mkdir(parents=True, exist_ok=True)
            (directory / f"{name}.csv").write_text(result.to_csv() + "\n")
        print(f"[{name}: {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
