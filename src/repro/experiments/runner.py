"""Command-line experiment runner.

``repro-experiments [names...]`` regenerates any subset of the paper's
tables and figures at the default (or environment-overridden) scale and
prints them in the paper's layout.  With no arguments it runs everything
in paper order.

The runner is fault tolerant (see :mod:`repro.robustness` and
``docs/robustness.md``): each experiment runs in isolation with retry,
exponential backoff and an optional per-experiment deadline; a failing
experiment is recorded as FAILED with its traceback while the rest of
the suite completes, and the process exits 1 with a failure report
instead of dying on the first exception.  With ``--journal`` every
completed experiment is checkpointed to a JSONL journal (with its
rendered output as payload), and ``--resume`` skips experiments the
journal already records — reprinting them and regenerating their
``--results-dir``/``--csv-dir`` files from the journaled payload — so
an interrupted suite resumes where it left off instead of restarting.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.errors import ExperimentError, ReproError
from repro.experiments.ablations import (
    run_multiprogramming_ablation,
    run_twolevel_ablation,
    run_walkcost_ablation,
    run_penalty_ablation,
    run_probe_ablation,
    run_replacement_ablation,
    run_split_ablation,
    run_threshold_ablation,
)
from repro.experiments.fig41 import run_fig41
from repro.experiments.fig42 import run_fig42
from repro.experiments.fig51 import run_fig51
from repro.experiments.fig52 import run_fig52
from repro.experiments.headline import run_headline
from repro.experiments.memdemand import run_memdemand
from repro.experiments.pairs import run_pairs
from repro.experiments.scale import ExperimentScale, default_scale
from repro.experiments.table31 import run_table31
from repro.experiments.table51 import run_table51
from repro.parallel.supervisor import SupervisorConfig
from repro.robustness.executor import UnitSpec, run_units
from repro.robustness.journal import RunJournal
from repro.robustness.retry import RetryPolicy
from repro.workloads.registry import GENERATOR_VERSION

#: Experiment name -> runner; paper artifacts first, then extensions.
EXPERIMENTS: Dict[str, Callable[[ExperimentScale], object]] = {
    "table31": run_table31,
    "fig41": run_fig41,
    "fig42": run_fig42,
    "fig51": run_fig51,
    "fig52": run_fig52,
    "table51": run_table51,
    "headline": run_headline,
    "pairs": run_pairs,
    "threshold": run_threshold_ablation,
    "penalty": run_penalty_ablation,
    "probe": run_probe_ablation,
    "replacement": run_replacement_ablation,
    "split": run_split_ablation,
    "multiprogramming": run_multiprogramming_ablation,
    "walkcost": run_walkcost_ablation,
    "memdemand": run_memdemand,
    "twolevel": run_twolevel_ablation,
}

#: Journal path used when ``--resume``/``--journal`` is given without one.
DEFAULT_JOURNAL = "repro-journal.jsonl"


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        description=(
            "Regenerate the tables and figures of 'Tradeoffs in "
            "Supporting Two Page Sizes' (ISCA 1992)."
        )
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="experiment",
        default=[],
        help=(
            "which experiments to run (default: all); known: "
            + ", ".join(EXPERIMENTS)
        ),
    )
    parser.add_argument(
        "--trace-length",
        type=int,
        default=None,
        help="references per workload trace (default 400000)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=None,
        help="working-set window T in references (default 50000)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="regenerate traces instead of using the on-disk cache",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also print bar-chart renderings where an experiment has one",
    )
    parser.add_argument(
        "--csv-dir",
        default=None,
        help="directory to write CSV series exports where available",
    )
    parser.add_argument(
        "--results-dir",
        default=None,
        help="directory to archive each experiment's rendering as <name>.txt",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help=(
            "checkpoint each completed experiment to this JSONL journal "
            f"(default when --resume is given: {DEFAULT_JOURNAL})"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip experiments already recorded as complete in the journal",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retries per experiment after the first failure (default 1)",
    )
    parser.add_argument(
        "--retry-delay",
        type=float,
        default=0.5,
        help="base exponential-backoff delay between retries in seconds",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-experiment wall-clock deadline (checked between attempts)",
    )
    parser.add_argument(
        "--fail-fast",
        action="store_true",
        help="stop the suite at the first failed experiment (still exits 1)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run experiments across N worker processes (0 = one per "
            "CPU; default serial, or the REPRO_JOBS environment "
            "variable); results and output order are identical to a "
            "serial run"
        ),
    )
    parser.add_argument(
        "--unit-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "parallel supervision: kill a worker still running one "
            "experiment after this many seconds and requeue the "
            "experiment (default: no per-unit deadline)"
        ),
    )
    parser.add_argument(
        "--max-respawns",
        type=int,
        default=None,
        metavar="N",
        help=(
            "parallel supervision: total worker respawns allowed before "
            "the pool is declared unhealthy (default: scales with the "
            "suite size)"
        ),
    )
    degraded = parser.add_mutually_exclusive_group()
    degraded.add_argument(
        "--degraded-ok",
        dest="degraded_ok",
        action="store_true",
        default=True,
        help=(
            "fall back to serial in-process execution when the worker "
            "pool cannot be kept healthy (default)"
        ),
    )
    degraded.add_argument(
        "--no-degraded",
        dest="degraded_ok",
        action="store_false",
        help="fail the run instead of degrading to serial execution",
    )
    return parser


def _fingerprint(scale: ExperimentScale) -> Dict[str, object]:
    """What must match for journaled results to satisfy this run."""
    return {
        "trace_length": scale.trace_length,
        "window": scale.window,
        "seed": scale.seed,
        "generator_version": GENERATOR_VERSION,
    }


def _run_suite(args: argparse.Namespace) -> int:
    unknown = [
        name
        for name in args.experiments
        if name != "all" and name not in EXPERIMENTS
    ]
    if unknown:
        raise ExperimentError(
            f"unknown experiment(s) {', '.join(unknown)}; "
            f"known: {', '.join([*EXPERIMENTS, 'all'])}"
        )
    base = default_scale()
    scale = ExperimentScale(
        trace_length=args.trace_length or base.trace_length,
        window=args.window or base.window,
        use_cache=not args.no_cache,
        jobs=args.jobs if args.jobs is not None else base.jobs,
    )

    journal: Optional[RunJournal] = None
    journal_path = args.journal
    if journal_path is None and args.resume:
        journal_path = DEFAULT_JOURNAL
    if journal_path is not None:
        journal = RunJournal(journal_path, fingerprint=_fingerprint(scale))
        if journal.dropped_torn_line:
            print(
                "repro-experiments: journal had a torn final line "
                "(crash mid-write?); its unit will re-run",
                file=sys.stderr,
            )

    names = (
        list(EXPERIMENTS)
        if not args.experiments or "all" in args.experiments
        else args.experiments
    )

    def publish(spec: UnitSpec, result: object, elapsed: float) -> None:
        name = spec.name.split(":", 1)[1]
        print(result.render())
        if args.chart and hasattr(result, "render_chart"):
            print()
            print(result.render_chart())
        if args.csv_dir and hasattr(result, "to_csv"):
            directory = Path(args.csv_dir)
            directory.mkdir(parents=True, exist_ok=True)
            (directory / f"{name}.csv").write_text(result.to_csv() + "\n")
        if args.results_dir:
            directory = Path(args.results_dir)
            directory.mkdir(parents=True, exist_ok=True)
            (directory / f"{name}.txt").write_text(result.render() + "\n")
        print(f"[{name}: {elapsed:.1f}s]\n")

    def journal_payload(spec: UnitSpec, result: object) -> Dict[str, object]:
        # Stored on the success record so a resumed run can reprint the
        # experiment and regenerate its output files without re-running.
        payload: Dict[str, object] = {"rendered": result.render()}
        if hasattr(result, "render_chart"):
            payload["chart"] = result.render_chart()
        if hasattr(result, "to_csv"):
            payload["csv"] = result.to_csv()
        return payload

    def announce_skip(spec: UnitSpec) -> None:
        name = spec.name.split(":", 1)[1]
        record = journal.get(spec.name) if journal is not None else None
        payload = record.payload if record is not None else None
        rendered = payload.get("rendered") if payload else None
        if not isinstance(rendered, str):
            # Pre-payload journal (or stripped record): nothing to
            # republish, so prior runs' output files must survive.
            print(f"[{name}: already journaled, skipping]\n")
            return
        print(rendered)
        chart = payload.get("chart")
        if args.chart and isinstance(chart, str):
            print()
            print(chart)
        csv_text = payload.get("csv")
        if args.csv_dir and isinstance(csv_text, str):
            directory = Path(args.csv_dir)
            directory.mkdir(parents=True, exist_ok=True)
            (directory / f"{name}.csv").write_text(csv_text + "\n")
        if args.results_dir:
            directory = Path(args.results_dir)
            directory.mkdir(parents=True, exist_ok=True)
            (directory / f"{name}.txt").write_text(rendered + "\n")
        print(f"[{name}: restored from journal]\n")

    def announce_retry(spec, attempt, error, delay) -> None:
        name = spec.name.split(":", 1)[1]
        print(
            f"repro-experiments: {name} attempt {attempt} failed "
            f"({type(error).__name__}: {error}); retrying in {delay:.2f}s",
            file=sys.stderr,
        )

    def announce_failure(spec, error) -> None:
        name = spec.name.split(":", 1)[1]
        print(
            f"repro-experiments: {name} FAILED "
            f"({type(error).__name__}: {error}); continuing with the rest",
            file=sys.stderr,
        )

    def make_unit(name: str) -> UnitSpec:
        return UnitSpec(
            name=f"experiment:{name}",
            run=lambda runner=EXPERIMENTS[name]: runner(scale),
        )

    report = run_units(
        [make_unit(name) for name in names],
        journal=journal,
        resume=args.resume,
        retry_policy=RetryPolicy(
            max_attempts=max(1, args.retries + 1),
            base_delay=max(0.0, args.retry_delay),
        ),
        deadline_seconds=args.deadline,
        fail_fast=args.fail_fast,
        on_success=publish,
        journal_payload=journal_payload,
        on_skip=announce_skip,
        on_retry=announce_retry,
        on_failure=announce_failure,
        jobs=scale.jobs,
        supervision=SupervisorConfig(
            unit_deadline=args.unit_deadline,
            max_respawns=args.max_respawns,
            degraded_ok=args.degraded_ok,
        ),
    )

    if report.supervision and report.supervision.get("degraded"):
        print(
            "repro-experiments: worker pool could not be kept healthy; "
            "finished in degraded serial mode",
            file=sys.stderr,
        )
    if not report.ok or report.skipped:
        print(report.render())
    return report.exit_code


def main(argv=None) -> int:
    """Entry point for the ``repro-experiments`` console script."""
    args = build_parser().parse_args(argv)
    try:
        return _run_suite(args)
    except ReproError as error:
        print(f"repro-experiments: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
