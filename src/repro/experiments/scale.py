"""Experiment scaling knobs.

The paper ran 1-3 *billion* reference traces with a working-set window
of T = 10 million references and burned 5.5 CPU-months.  A pure-Python
reproduction shrinks the *time* axis while keeping the paper's spatial
scale (footprints, page sizes, TLB geometries): the default here is
400K-reference traces with T = 50K, preserving the window/trace ratio
within the paper's T = 10M..50M of 1-3G range.

Every experiment takes an :class:`ExperimentScale`; the benchmark
harness uses :func:`default_scale`, tests use :func:`smoke_scale`.
``REPRO_TRACE_LENGTH`` / ``REPRO_WINDOW`` environment variables override
the defaults for users with more patience; ``REPRO_JOBS`` spreads
per-workload measurement across worker processes and ``REPRO_CACHE=0``
disables the content-addressed simulation result cache.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.errors import ConfigurationError
from repro.parallel.cache import SimulationCache
from repro.trace.record import Trace
from repro.workloads.registry import cached_trace, generate_trace

T = TypeVar("T")


@dataclass(frozen=True)
class ExperimentScale:
    """How big to run the experiments.

    Attributes:
        trace_length: references per workload trace.
        window: working-set window T (promotion policy and WS metrics).
        seed: workload generator seed.
        use_cache: cache generated traces on disk between runs.
        jobs: worker processes for per-workload measurement (None or 1
            = serial; 0 = one per CPU).  Results are identical at any
            job count — parallelism only reorders the computation.
        use_result_cache: consult the content-addressed simulation
            result cache (:mod:`repro.parallel.cache`).  Also requires
            ``REPRO_CACHE`` to not be disabled in the environment.
    """

    trace_length: int = 400_000
    window: int = 50_000
    seed: int = 0
    use_cache: bool = True
    jobs: Optional[int] = None
    use_result_cache: bool = True

    def __post_init__(self) -> None:
        if self.trace_length <= 0:
            raise ConfigurationError("trace_length must be positive")
        if self.window <= 0:
            raise ConfigurationError("window must be positive")
        if self.window > self.trace_length:
            raise ConfigurationError(
                "window larger than the trace makes every working-set "
                "measurement trivial; shrink the window"
            )

    def trace(self, name: str) -> Trace:
        """Materialise the named workload's trace at this scale."""
        if self.use_cache:
            return cached_trace(name, self.trace_length, self.seed)
        return generate_trace(name, self.trace_length, self.seed)

    def sim_cache(self) -> Optional[SimulationCache]:
        """The simulation result cache to pass into the sim layer.

        ``None`` when this scale opts out (``use_result_cache=False``,
        the tests' hermetic default via :func:`smoke_scale`) or when the
        environment disables/cannot provide it.
        """
        if not self.use_result_cache:
            return None
        return SimulationCache.from_environment()


def map_workloads(
    fn: Callable[[str], T],
    names: Optional[Sequence[str]] = None,
    *,
    jobs: Optional[int] = None,
) -> List[T]:
    """Apply ``fn`` to each workload name, optionally across processes.

    Returns results in ``names`` order (default: the paper's workload
    order) regardless of which worker finished first, so experiments
    measuring per-workload values get identical output at any job
    count.  ``fn`` may be a closure — workers are forked after it is
    captured — but its return value must pickle.
    """
    from repro.parallel.pool import parallel_map
    from repro.workloads.registry import workload_names

    if names is None:
        names = workload_names()
    return parallel_map([lambda n=n: fn(n) for n in names], jobs=jobs)


def default_scale() -> ExperimentScale:
    """The benchmark-harness scale, overridable via environment."""
    jobs_text = os.environ.get("REPRO_JOBS", "").strip()
    return ExperimentScale(
        trace_length=int(os.environ.get("REPRO_TRACE_LENGTH", 400_000)),
        window=int(os.environ.get("REPRO_WINDOW", 50_000)),
        jobs=int(jobs_text) if jobs_text else None,
    )


def smoke_scale(trace_length: int = 60_000, window: int = 8_000,
                seed: Optional[int] = None) -> ExperimentScale:
    """A fast scale for tests: seconds, not minutes, per experiment."""
    return ExperimentScale(
        trace_length=trace_length,
        window=window,
        seed=0 if seed is None else seed,
        use_cache=False,
        use_result_cache=False,
    )
