"""Experiment: Table 3.1 — the workload roster.

Reproduces the paper's workload-description table: program name,
category, trace length, references per instruction, and the average
working-set size at 4KB pages over the window T (the paper used T = 10M
references on billion-reference traces; see
:mod:`repro.experiments.scale` for our scaled equivalents).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.scale import ExperimentScale, default_scale
from repro.report.table import TextTable
from repro.stacksim.working_set import average_working_set_bytes
from repro.types import PAGE_4KB, format_size
from repro.workloads.registry import all_workloads


@dataclass(frozen=True)
class WorkloadRow:
    """One row of Table 3.1."""

    name: str
    description: str
    category: str
    references: int
    refs_per_instruction: float
    ws_bytes: float

    @property
    def ws_size(self) -> str:
        return format_size(self.ws_bytes)


@dataclass(frozen=True)
class Table31Result:
    """All twelve rows plus the scale they were measured at."""

    rows: List[WorkloadRow]
    scale: ExperimentScale

    def render(self) -> str:
        table = TextTable(
            ["Program", "Class", "Refs", "RPI", "WS Size", "Description"],
            title=(
                f"Table 3.1: workloads "
                f"(T={self.scale.window} refs, 4KB pages)"
            ),
            float_format="{:.2f}",
        )
        previous_category = self.rows[0].category if self.rows else None
        for row in self.rows:
            if row.category != previous_category:
                table.add_rule()
                previous_category = row.category
            table.add_row(
                row.name,
                row.category,
                row.references,
                row.refs_per_instruction,
                row.ws_size,
                row.description,
            )
        return table.render()


def run_table31(scale: ExperimentScale = None) -> Table31Result:
    """Measure Table 3.1 at the given scale."""
    if scale is None:
        scale = default_scale()
    from repro.experiments.scale import map_workloads
    from repro.workloads.registry import get_workload, workload_names

    def measure(name: str) -> WorkloadRow:
        workload = get_workload(name)
        trace = scale.trace(name)
        ws = average_working_set_bytes(trace, PAGE_4KB, [scale.window])[
            scale.window
        ]
        return WorkloadRow(
            name=workload.name,
            description=workload.description,
            category=workload.category,
            references=len(trace),
            refs_per_instruction=workload.refs_per_instruction,
            ws_bytes=ws,
        )

    names = workload_names()
    rows = map_workloads(measure, names, jobs=scale.jobs)
    return Table31Result(rows, scale)
