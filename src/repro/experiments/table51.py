"""Experiment: Table 5.1 — indexing schemes for set-associative TLBs.

Four CPI_TLB columns per program, for 16- and 32-entry two-way TLBs:

1. ``4KB`` — a conventional single-size TLB (small-page index, 20-cycle
   penalty).
2. ``4KB large index`` — two-page-size hardware indexed by the chunk
   bits while the software allocates *no* large pages (25-cycle
   penalty): Section 5.2.1's cautionary case.
3. ``4KB/32KB large index`` — the dynamic policy with large-page
   indexing.
4. ``4KB/32KB exact index`` — the dynamic policy with exact indexing.

Findings to reproduce: column 2 degrades badly versus column 1 (the
chunk bits are a poor index for small pages); exact indexing is usually
at least as good as large-page indexing but comparable in over half the
programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.scale import ExperimentScale, default_scale
from repro.policy.promotion import StaticSmallPolicy
from repro.report.table import TextTable
from repro.sim.config import TLBConfig, TwoSizeScheme
from repro.sim.driver import RunResult, run_two_sizes, run_with_policy
from repro.sim.sweep import sweep_single_size
from repro.tlb.indexing import IndexingScheme
from repro.types import PAGE_4KB, PAIR_4KB_32KB

#: Column labels in paper order.
TABLE51_COLUMNS = (
    "4KB",
    "4KB large index",
    "4KB/32KB large index",
    "4KB/32KB exact index",
)

#: Total entry counts of the two table halves (both two-way).
TABLE51_ENTRIES = (16, 32)


@dataclass(frozen=True)
class Table51Result:
    """CPI_TLB per workload per (entries, column)."""

    values: Dict[str, Dict[Tuple[int, str], RunResult]]
    scale: ExperimentScale

    def workloads(self) -> List[str]:
        return list(self.values)

    def cpi(self, name: str, entries: int, column: str) -> float:
        return self.values[name][(entries, column)].cpi_tlb

    def render(self) -> str:
        blocks = []
        for entries in TABLE51_ENTRIES:
            table = TextTable(
                ["Program", *TABLE51_COLUMNS],
                title=(
                    f"Table 5.1: indexing schemes, {entries}-entry two-way "
                    f"(CPI_TLB)"
                ),
            )
            for name, cells in self.values.items():
                table.add_row(
                    name,
                    *[cells[(entries, column)].cpi_tlb
                      for column in TABLE51_COLUMNS],
                )
            blocks.append(table.render())
        return "\n\n".join(blocks)


def run_table51(
    scale: ExperimentScale = None,
    entry_counts: Sequence[int] = TABLE51_ENTRIES,
) -> Table51Result:
    """Measure Table 5.1 at the given scale."""
    if scale is None:
        scale = default_scale()
    small_index_configs = [
        TLBConfig(entries, 2, IndexingScheme.SMALL_INDEX)
        for entries in entry_counts
    ]
    large_index_configs = [
        TLBConfig(entries, 2, IndexingScheme.LARGE_INDEX)
        for entries in entry_counts
    ]
    exact_index_configs = [
        TLBConfig(entries, 2, IndexingScheme.EXACT_INDEX)
        for entries in entry_counts
    ]
    scheme = TwoSizeScheme(window=scale.window)
    cache = scale.sim_cache()

    def measure(name: str) -> Dict[Tuple[int, str], RunResult]:
        trace = scale.trace(name)
        cells: Dict[Tuple[int, str], RunResult] = {}

        # Column 1: conventional 4KB TLB (one stack pass for both sizes).
        swept = sweep_single_size(
            trace, [PAGE_4KB], small_index_configs, cache=cache
        )
        for config in small_index_configs:
            cells[(config.entries, "4KB")] = swept[(PAGE_4KB, config.label)]

        # Column 2: large-page indexing with no large pages allocated;
        # the hardware supports two sizes, so the 25-cycle penalty applies.
        no_large = run_with_policy(
            trace,
            StaticSmallPolicy(PAIR_4KB_32KB),
            large_index_configs,
            cache=cache,
        )
        for result in no_large:
            cells[(result.config.entries, "4KB large index")] = result

        # Columns 3-4: the dynamic policy, both indexing schemes, all
        # geometries — one shared trace pass.
        dynamic = run_two_sizes(
            trace,
            scheme,
            large_index_configs + exact_index_configs,
            cache=cache,
        )
        for result in dynamic:
            column = (
                "4KB/32KB large index"
                if result.config.scheme is IndexingScheme.LARGE_INDEX
                else "4KB/32KB exact index"
            )
            cells[(result.config.entries, column)] = result
        return cells

    from repro.experiments.scale import map_workloads
    from repro.workloads.registry import workload_names

    names = workload_names()
    values: Dict[str, Dict[Tuple[int, str], RunResult]] = dict(
        zip(names, map_workloads(measure, names, jobs=scale.jobs))
    )
    return Table51Result(values, scale)
