"""Memory-management substrate: address math, page tables, miss-penalty
cost model, physical frame allocation and the integrated MMU.

These are the operating-system pieces the paper assumes around its TLB
study (Sections 2.3 and 3.4): the software structures a miss handler
walks, the cycle costs it charges, and the physical-contiguity mechanics
that make large pages possible.
"""

from repro.mem.address import (
    align_down,
    align_up,
    is_aligned,
    page_base,
    page_number,
    page_numbers_array,
    page_offset,
    page_span,
    translate,
)
from repro.mem.misshandler import (
    SINGLE_SIZE_PENALTY_CYCLES,
    TWO_SIZE_PENALTY_FACTOR,
    MissPenaltyModel,
    single_size_penalty,
    two_size_penalty,
)
from repro.mem.hashed_table import HashedPageTable
from repro.mem.mmu import MemoryManagementUnit, MMUStatistics, TranslationOutcome
from repro.mem.page_table import Translation, TwoPageSizePageTable
from repro.mem.pageout import (
    PagingResult,
    fault_rate_curve,
    single_size_paging,
    two_size_paging,
)
from repro.mem.physalloc import BuddyAllocator
from repro.mem.walkmodel import WalkCycleModel, measure_walk_costs

__all__ = [
    "BuddyAllocator",
    "HashedPageTable",
    "MMUStatistics",
    "MemoryManagementUnit",
    "MissPenaltyModel",
    "PagingResult",
    "SINGLE_SIZE_PENALTY_CYCLES",
    "TWO_SIZE_PENALTY_FACTOR",
    "Translation",
    "TranslationOutcome",
    "TwoPageSizePageTable",
    "WalkCycleModel",
    "measure_walk_costs",
    "align_down",
    "align_up",
    "is_aligned",
    "page_base",
    "page_number",
    "page_numbers_array",
    "page_offset",
    "page_span",
    "fault_rate_curve",
    "single_size_paging",
    "single_size_penalty",
    "translate",
    "two_size_paging",
    "two_size_penalty",
]
