"""Virtual-address arithmetic for paged memory.

These helpers implement the bit-slicing conventions from Section 2 of the
paper (Figure 2.1): byte addressing, bit<0> least significant, pages that
are powers of two and self-aligned.  Scalar helpers operate on Python ints;
the ``*_array`` variants operate on numpy arrays and are the ones used in
simulation hot paths.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PageSizeError
from repro.types import log2_exact, validate_page_size


def page_number(address: int, page_size: int) -> int:
    """Return the virtual page number of ``address`` for ``page_size`` pages."""
    return address >> log2_exact(page_size)


def page_offset(address: int, page_size: int) -> int:
    """Return the offset of ``address`` within its ``page_size`` page."""
    return address & (page_size - 1)


def page_base(address: int, page_size: int) -> int:
    """Return the base (first byte) of the page containing ``address``."""
    return address & ~(page_size - 1)


def is_aligned(address: int, page_size: int) -> bool:
    """Return True if ``address`` is aligned on a ``page_size`` boundary."""
    validate_page_size(page_size)
    return (address & (page_size - 1)) == 0


def align_down(address: int, page_size: int) -> int:
    """Round ``address`` down to the nearest ``page_size`` boundary."""
    validate_page_size(page_size)
    return address & ~(page_size - 1)


def align_up(address: int, page_size: int) -> int:
    """Round ``address`` up to the nearest ``page_size`` boundary."""
    validate_page_size(page_size)
    return (address + page_size - 1) & ~(page_size - 1)


def translate(virtual: int, physical_page_base: int, page_size: int) -> int:
    """Form a physical address by concatenation (Section 1 of the paper).

    Aligned power-of-two pages let the hardware concatenate the physical
    page frame bits with the page offset instead of adding, which is the
    architectural argument for alignment.  ``physical_page_base`` must be
    aligned on ``page_size``.
    """
    if not is_aligned(physical_page_base, page_size):
        raise PageSizeError(
            f"physical page base {physical_page_base:#x} is not aligned "
            f"on {page_size} bytes"
        )
    return physical_page_base | page_offset(virtual, page_size)


def page_numbers_array(addresses: np.ndarray, page_size: int) -> np.ndarray:
    """Vectorised :func:`page_number` over a numpy address array."""
    shift = log2_exact(page_size)
    return addresses >> np.uint32(shift)


def page_span(start: int, length: int, page_size: int) -> range:
    """Return the range of page numbers touched by ``[start, start+length)``.

    An empty region touches no pages.  Used by workload generators and the
    page table to enumerate pages backing a memory region.
    """
    if length <= 0:
        return range(0)
    first = page_number(start, page_size)
    last = page_number(start + length - 1, page_size)
    return range(first, last + 1)
