"""Hashed page table with size-tagged entries (Section 2.3's alternative).

The paper's miss-handler discussion weighs "a multi-level table or
split tables accessed by trying all page sizes in some order" and notes
that "a software cache of translation entries indexed using techniques
similar to those discussed above might be advantageous".  This module
implements that alternative: one open-hash table whose entries carry
the page size in their tag (exactly like the TLB's entries), probed
with the small-page hash first and the large-page hash second.

Compared with :class:`~repro.mem.page_table.TwoPageSizePageTable`:

* a **hit on the first probe costs one memory touch** plus chain steps
  (vs two for the two-level radix walk) — cheaper when chains are
  short;
* collisions chain within a bucket, so touches *degrade* with load
  factor, whereas the radix walk is always exactly two reads;
* the same small-then-large probe order reproduces the asymmetric
  small/large miss costs the walk-cost model studies.

The translation results are identical by construction; only the touch
counts differ — which is the interesting comparison for handler cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.mem.page_table import Translation
from repro.types import PAIR_4KB_32KB, PageSizePair, is_power_of_two


class HashedPageTable:
    """Open-hash translation table supporting two page sizes.

    Presents the same mapping interface as
    :class:`~repro.mem.page_table.TwoPageSizePageTable` so the two
    organisations are drop-in comparable.

    Args:
        pair: the page-size pair.
        buckets: number of hash buckets (power of two); the classic
            sizing rule is ~2x the expected mapping count.
    """

    def __init__(
        self, pair: PageSizePair = PAIR_4KB_32KB, buckets: int = 1024
    ) -> None:
        if not is_power_of_two(buckets):
            raise ConfigurationError("bucket count must be a power of two")
        self.pair = pair
        self._mask = buckets - 1
        # bucket -> list of ((page, large), frame_base)
        self._buckets: Dict[int, List[Tuple[Tuple[int, bool], int]]] = {}

    # ------------------------------------------------------------------
    # Mapping maintenance.
    # ------------------------------------------------------------------

    def map_small(self, block: int, frame_base: int) -> None:
        """Install a small-page mapping for ``block``."""
        self._check_alignment(frame_base, self.pair.small)
        chunk = block // self.pair.blocks_per_chunk
        if self._find((chunk, True)) is not None:
            raise SimulationError(
                f"block {block} already covered by a large-page mapping"
            )
        self._insert((block, False), frame_base)

    def map_large(self, chunk: int, frame_base: int) -> None:
        """Install a large-page mapping for ``chunk``."""
        self._check_alignment(frame_base, self.pair.large)
        base = chunk * self.pair.blocks_per_chunk
        for block in range(base, base + self.pair.blocks_per_chunk):
            if self._find((block, False)) is not None:
                raise SimulationError(
                    f"chunk {chunk} still has a small mapping for "
                    f"block {block}"
                )
        self._insert((chunk, True), frame_base)

    def unmap_small(self, block: int) -> Optional[int]:
        """Remove a small-page mapping; returns its frame or None."""
        return self._remove((block, False))

    def unmap_large(self, chunk: int) -> Optional[int]:
        """Remove a large-page mapping; returns its frame or None."""
        return self._remove((chunk, True))

    # ------------------------------------------------------------------
    # The walk.
    # ------------------------------------------------------------------

    def walk(self, address: int) -> Optional[Translation]:
        """Translate ``address``, probing the small-page hash first.

        Memory touches count one per chain entry examined (each is a
        memory read in a software handler), across both probes.
        """
        pair = self.pair
        block = address >> pair.small_shift
        touches, frame = self._probe((block, False))
        if frame is not None:
            return Translation(frame, pair.small, touches)
        chunk = address >> pair.large_shift
        more_touches, frame = self._probe((chunk, True))
        touches += more_touches
        if frame is not None:
            return Translation(frame, pair.large, touches)
        return None

    # ------------------------------------------------------------------
    # Introspection (API parity with TwoPageSizePageTable, so either
    # organisation can back the MMU).
    # ------------------------------------------------------------------

    def lookup_small(self, block: int) -> Optional[int]:
        """Return the frame base mapped for ``block``, or None."""
        return self._find((block, False))

    def lookup_large(self, chunk: int) -> Optional[int]:
        """Return the large frame base mapped for ``chunk``, or None."""
        return self._find((chunk, True))

    def large_covers_block(self, block: int) -> bool:
        """Return True if ``block`` falls inside a large-page mapping."""
        return self._find((block // self.pair.blocks_per_chunk, True)) is not None

    def small_mapping_count(self) -> int:
        return sum(
            1
            for chain in self._buckets.values()
            for (key, _frame) in chain
            if not key[1]
        )

    def large_mapping_count(self) -> int:
        return sum(
            1
            for chain in self._buckets.values()
            for (key, _frame) in chain
            if key[1]
        )

    def load_factor(self) -> float:
        """Mappings per bucket (chain-length pressure)."""
        total = sum(len(chain) for chain in self._buckets.values())
        return total / (self._mask + 1)

    # ------------------------------------------------------------------
    # Hash machinery.
    # ------------------------------------------------------------------

    def _bucket_of(self, key: Tuple[int, bool]) -> int:
        page, large = key
        # Fibonacci-style multiplicative hash; the size bit perturbs the
        # stream so a chunk and an equal-numbered block do not collide
        # systematically.
        value = (page * 2654435761 + (0x9E3779B9 if large else 0)) & 0xFFFFFFFF
        return (value >> 16) & self._mask

    def _probe(self, key: Tuple[int, bool]) -> Tuple[int, Optional[int]]:
        """Return (touches, frame or None) for one hash probe."""
        chain = self._buckets.get(self._bucket_of(key), [])
        touches = 0
        for entry_key, frame in chain:
            touches += 1
            if entry_key == key:
                return touches, frame
        # An empty chain still costs one read of the bucket head.
        return max(touches, 1), None

    def _find(self, key: Tuple[int, bool]) -> Optional[int]:
        _touches, frame = self._probe(key)
        return frame

    def _insert(self, key: Tuple[int, bool], frame: int) -> None:
        chain = self._buckets.setdefault(self._bucket_of(key), [])
        for index, (entry_key, _frame) in enumerate(chain):
            if entry_key == key:
                chain[index] = (key, frame)
                return
        chain.append((key, frame))

    def _remove(self, key: Tuple[int, bool]) -> Optional[int]:
        bucket = self._bucket_of(key)
        chain = self._buckets.get(bucket)
        if not chain:
            return None
        for index, (entry_key, frame) in enumerate(chain):
            if entry_key == key:
                del chain[index]
                if not chain:
                    del self._buckets[bucket]
                return frame
        return None

    @staticmethod
    def _check_alignment(frame_base: int, page_size: int) -> None:
        if frame_base % page_size != 0:
            raise ConfigurationError(
                f"frame base {frame_base:#x} not aligned on {page_size} bytes"
            )
