"""TLB miss-penalty cost model (Sections 2.3 and 3.2).

The paper charges a flat **20-cycle** software miss penalty for TLBs
supporting a single page size and estimates that handlers coping with two
page sizes run about **25% longer** (25 cycles), based on SPARC assembly
estimates; the extra 25% also absorbs page-promotion costs.  CPI_TLB is
then simply ``misses-per-instruction * penalty``.

The model here exposes those constants, an optional per-promotion /
per-demotion surcharge (so the "folded into the penalty" assumption can
be checked rather than assumed — an ablation the paper invites), and a
sequential-reprobe surcharge for the exact-index probe strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tlb.stats import TLBStatistics

#: The paper's single-page-size software miss penalty, in cycles.
SINGLE_SIZE_PENALTY_CYCLES = 20.0

#: The paper's multiplier for handlers supporting two page sizes.
TWO_SIZE_PENALTY_FACTOR = 1.25


@dataclass(frozen=True)
class MissPenaltyModel:
    """Cycle costs charged against TLB events.

    Attributes:
        miss_cycles: cycles per TLB miss (the dominant term).
        promotion_cycles: explicit surcharge per chunk promotion (covers
            remapping, shootdown and copying); the paper folds this into
            ``miss_cycles`` via the 25% factor, so the default is 0.
        demotion_cycles: explicit surcharge per chunk demotion.
        reprobe_cycles: cycles per sequential-probe reprobe (Section 2.2
            option b's extra hit latency); 0 for parallel probing.
    """

    miss_cycles: float = SINGLE_SIZE_PENALTY_CYCLES
    promotion_cycles: float = 0.0
    demotion_cycles: float = 0.0
    reprobe_cycles: float = 0.0

    def __post_init__(self) -> None:
        for name in ("miss_cycles", "promotion_cycles", "demotion_cycles",
                     "reprobe_cycles"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    def total_cycles(
        self,
        stats: TLBStatistics,
        *,
        promotions: int = 0,
        demotions: int = 0,
    ) -> float:
        """Total cycles spent in TLB miss handling for a simulation run."""
        return (
            stats.misses * self.miss_cycles
            + stats.reprobes * self.reprobe_cycles
            + promotions * self.promotion_cycles
            + demotions * self.demotion_cycles
        )


def single_size_penalty(miss_cycles: float = SINGLE_SIZE_PENALTY_CYCLES
                        ) -> MissPenaltyModel:
    """The paper's model for a single-page-size TLB: 20 cycles per miss."""
    return MissPenaltyModel(miss_cycles=miss_cycles)


def two_size_penalty(
    miss_cycles: float = SINGLE_SIZE_PENALTY_CYCLES,
    factor: float = TWO_SIZE_PENALTY_FACTOR,
) -> MissPenaltyModel:
    """The paper's model for a two-page-size TLB: 25% costlier misses."""
    if factor < 1.0:
        raise ConfigurationError(
            f"two-page-size handlers cannot be cheaper: factor {factor} < 1"
        )
    return MissPenaltyModel(miss_cycles=miss_cycles * factor)
