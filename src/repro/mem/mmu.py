"""An integrated MMU: TLB + page-size policy + page table + frame allocator.

The figure/table experiments only need miss counts, but a downstream user
of this library gets the whole machine: this module wires a TLB model, a
page-size assignment policy, the two-page-size page table and the buddy
frame allocator into a single ``translate(address)`` engine with cycle
accounting.  It also implements the *mechanics* of promotion that the
paper costs out in Section 3.4: unmapping the small pages, allocating a
contiguous large frame (which can fail under external fragmentation —
promotions are then cancelled), copying resident blocks, and shooting
down stale TLB entries.

Demotion takes the lazy route: the large mapping and TLB entry are
removed and the chunk's blocks are re-mapped on demand at their next
touch — the data is already resident, so this costs page-table
bookkeeping, not page faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.mem.misshandler import MissPenaltyModel, two_size_penalty
from repro.mem.page_table import TwoPageSizePageTable
from repro.mem.physalloc import BuddyAllocator
from repro.policy.promotion import PageSizeAssignmentPolicy
from repro.tlb.base import TLB
from repro.types import MB, PageSizePair


@dataclass(frozen=True)
class TranslationOutcome:
    """What one :meth:`MemoryManagementUnit.translate` call produced.

    Attributes:
        physical: the translated physical address.
        tlb_hit: whether the TLB satisfied the lookup.
        page_fault: whether this reference first-touched an unmapped page.
        cycles: miss-handling cycles charged to this reference.
    """

    physical: int
    tlb_hit: bool
    page_fault: bool
    cycles: float


@dataclass
class MMUStatistics:
    """Aggregate counters for an MMU run."""

    translations: int = 0
    page_faults: int = 0
    promotions_applied: int = 0
    promotions_cancelled: int = 0
    demotions_applied: int = 0
    blocks_copied: int = 0
    cycles: float = 0.0
    _ignore: None = field(default=None, repr=False, compare=False)


class MemoryManagementUnit:
    """Drives address translation end to end.

    Args:
        tlb: any :class:`repro.tlb.base.TLB` model.
        policy: page-size assignment policy; its decisions control which
            page size backs each chunk.
        penalty: cycle cost model; defaults to the paper's two-page-size
            25-cycle penalty.
        memory_size: physical memory backing the frame allocator.
    """

    def __init__(
        self,
        tlb: TLB,
        policy: PageSizeAssignmentPolicy,
        *,
        penalty: Optional[MissPenaltyModel] = None,
        memory_size: int = 64 * MB,
        page_table=None,
    ) -> None:
        self.tlb = tlb
        self.policy = policy
        self.pair: PageSizePair = policy.pair
        self.penalty = penalty if penalty is not None else two_size_penalty()
        if memory_size < self.pair.large:
            raise ConfigurationError(
                "physical memory smaller than one large page"
            )
        # Any organisation with the TwoPageSizePageTable interface works
        # (e.g. repro.mem.hashed_table.HashedPageTable).
        self.page_table = (
            page_table
            if page_table is not None
            else TwoPageSizePageTable(self.pair)
        )
        self.allocator = BuddyAllocator(memory_size, self.pair.small)
        self.stats = MMUStatistics()
        # Blocks whose data has ever been resident: mapping creations for
        # these are remaps (e.g. after demotion), not page faults.
        self._touched_blocks: set = set()

    def translate(self, address: int) -> TranslationOutcome:
        """Translate one virtual address, performing all side effects."""
        pair = self.pair
        decision = self.policy.access(address)
        large = decision.large

        if decision.demoted_chunk is not None:
            self._apply_demotion(decision.demoted_chunk)
        if decision.promoted_chunk is not None:
            applied = self._apply_promotion(decision.promoted_chunk)
            if not applied and decision.promoted_chunk == pair.chunk_of(address):
                large = False  # promotion cancelled; stay on small pages

        block = address >> pair.small_shift
        chunk = address >> pair.large_shift
        hit = self.tlb.access(block, chunk, large)
        self.stats.translations += 1

        cycles = 0.0
        page_fault = False
        if not hit:
            cycles = self.penalty.miss_cycles
            page_fault = self._ensure_mapped(block, chunk, large)
        self.stats.cycles += cycles

        translation = self.page_table.walk(address)
        offset_mask = translation.page_size - 1
        physical = translation.frame_base | (address & offset_mask)
        return TranslationOutcome(physical, hit, page_fault, cycles)

    # ------------------------------------------------------------------
    # Promotion / demotion mechanics (Section 3.4's cost list).
    # ------------------------------------------------------------------

    def _apply_promotion(self, chunk: int) -> bool:
        """Promote ``chunk`` to a large page; returns False if cancelled."""
        pair = self.pair
        frame = self.allocator.try_allocate(pair.large)
        if frame is None:
            # External fragmentation: no contiguous large frame.  Cancel
            # and tell the policy so its mapping state stays truthful.
            self.stats.promotions_cancelled += 1
            cancel = getattr(self.policy, "cancel_promotion", None)
            if cancel is not None:
                cancel(chunk)
            return False

        base_block = chunk * pair.blocks_per_chunk
        for block in range(base_block, base_block + pair.blocks_per_chunk):
            old_frame = self.page_table.unmap_small(block)
            if old_frame is not None:
                # Copying a resident small page into the large frame.
                self.allocator.free(old_frame)
                self.stats.blocks_copied += 1
        self.page_table.map_large(chunk, frame)
        self.tlb.invalidate_small_pages_of_chunk(chunk, pair.blocks_per_chunk)
        # Promotion pages in / zeroes the chunk's non-resident blocks
        # (Section 3.4 cost (c)): the whole chunk is now resident.
        self._touched_blocks.update(self._chunk_blocks(chunk))
        self.stats.promotions_applied += 1
        self.stats.cycles += self.penalty.promotion_cycles
        return True

    def _apply_demotion(self, chunk: int) -> None:
        """Demote ``chunk``: drop the large mapping, remap lazily."""
        frame = self.page_table.unmap_large(chunk)
        if frame is not None:
            self.allocator.free(frame)
        self.tlb.invalidate_large_page(chunk)
        self.stats.demotions_applied += 1
        self.stats.cycles += self.penalty.demotion_cycles

    def _ensure_mapped(self, block: int, chunk: int, large: bool) -> bool:
        """Create the mapping a TLB fill needs; returns True on page fault.

        A page fault means the data was never resident before; creating a
        mapping for previously resident data (the lazy remap after a
        demotion) is OS bookkeeping, not a fault.
        """
        pair = self.pair
        if large:
            if self.page_table.lookup_large(chunk) is not None:
                return False
            # The paper's promotion path goes through _apply_promotion;
            # this path is a large page mapped on first touch (e.g. the
            # static all-large policy).
            for mapped_block in self._chunk_blocks(chunk):
                old_frame = self.page_table.unmap_small(mapped_block)
                if old_frame is not None:
                    self.allocator.free(old_frame)
            frame = self.allocator.try_allocate(pair.large)
            if frame is None:
                raise ConfigurationError(
                    "physical memory exhausted; enlarge memory_size"
                )
            self.page_table.map_large(chunk, frame)
            fault = not any(
                candidate in self._touched_blocks
                for candidate in self._chunk_blocks(chunk)
            )
            self._touched_blocks.update(self._chunk_blocks(chunk))
            if fault:
                self.stats.page_faults += 1
            return fault

        if self.page_table.lookup_small(block) is not None:
            return False
        if self.page_table.large_covers_block(block):
            # Covered by a large mapping (e.g. after a cancelled or raced
            # decision); nothing to install.
            return False
        frame = self.allocator.try_allocate(pair.small)
        if frame is None:
            raise ConfigurationError(
                "physical memory exhausted; enlarge memory_size"
            )
        self.page_table.map_small(block, frame)
        fault = block not in self._touched_blocks
        self._touched_blocks.add(block)
        if fault:
            self.stats.page_faults += 1
        return fault

    def _chunk_blocks(self, chunk: int) -> range:
        base = chunk * self.pair.blocks_per_chunk
        return range(base, base + self.pair.blocks_per_chunk)
