"""Software page tables supporting two page sizes (Section 2.3).

The paper assumes TLB misses trap to a software handler that walks
OS-maintained data structures, and observes that supporting two page
sizes complicates the walk because the faulting reference's page size is
unknown: candidate structures are "a multi-level table or split tables
accessed by trying all page sizes in some order".

This module implements that design point concretely:

* a classic **two-level forward table** for small pages (directory +
  leaf tables, 10+10+12 bit split for 32-bit/4KB), and
* a **separate large-page table** (one level, directly indexed by chunk
  number),

with lookups trying the small-page walk first and falling back to the
large-page table — the same small-first order as the sequential probe
strategy.  The walk reports how many memory touches it performed so the
:mod:`repro.mem.misshandler` cost model can charge cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.types import PAIR_4KB_32KB, PageSizePair


@dataclass(frozen=True)
class Translation:
    """Result of a successful page-table walk.

    Attributes:
        frame_base: physical base address of the mapped page.
        page_size: size of the mapping found (small or large).
        memory_touches: page-table memory references the walk performed,
            the quantity the miss-handler cost model charges for.
    """

    frame_base: int
    page_size: int
    memory_touches: int


class TwoPageSizePageTable:
    """Two-level small-page table plus a one-level large-page table."""

    #: Bits of the small VPN consumed by the leaf level of the walk.
    LEAF_BITS = 10

    def __init__(self, pair: PageSizePair = PAIR_4KB_32KB) -> None:
        self.pair = pair
        self._leaf_mask = (1 << self.LEAF_BITS) - 1
        # directory index -> {leaf index -> frame base}
        self._directory: Dict[int, Dict[int, int]] = {}
        # chunk number -> frame base
        self._large: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Mapping maintenance (what the OS does).
    # ------------------------------------------------------------------

    def map_small(self, block: int, frame_base: int) -> None:
        """Install a small-page mapping for global block number ``block``."""
        self._check_frame(frame_base, self.pair.small)
        if self.large_covers_block(block):
            raise SimulationError(
                f"block {block} already covered by a large-page mapping"
            )
        directory_index = block >> self.LEAF_BITS
        leaf = self._directory.setdefault(directory_index, {})
        leaf[block & self._leaf_mask] = frame_base

    def map_large(self, chunk: int, frame_base: int) -> None:
        """Install a large-page mapping for ``chunk``.

        Any small-page mappings for the chunk's blocks must have been
        removed first (the promotion sequence), mirroring the OS
        invariant that a virtual page has exactly one mapping.
        """
        self._check_frame(frame_base, self.pair.large)
        for block in self._chunk_blocks(chunk):
            if self.lookup_small(block) is not None:
                raise SimulationError(
                    f"chunk {chunk} still has a small mapping for block {block}"
                )
        self._large[chunk] = frame_base

    def unmap_small(self, block: int) -> Optional[int]:
        """Remove a small-page mapping; returns its frame or None."""
        directory_index = block >> self.LEAF_BITS
        leaf = self._directory.get(directory_index)
        if leaf is None:
            return None
        frame = leaf.pop(block & self._leaf_mask, None)
        if not leaf:
            del self._directory[directory_index]
        return frame

    def unmap_large(self, chunk: int) -> Optional[int]:
        """Remove a large-page mapping; returns its frame or None."""
        return self._large.pop(chunk, None)

    # ------------------------------------------------------------------
    # The walk (what the TLB miss handler does).
    # ------------------------------------------------------------------

    def walk(self, address: int) -> Optional[Translation]:
        """Translate ``address``, trying small pages first.

        Returns None for an unmapped address (a page fault, outside this
        paper's scope).  Memory touches: one per table level actually
        read — 2 for a small-page hit (directory + leaf), up to 3 for a
        large-page hit found after a failed small walk.
        """
        block = address >> self.pair.small_shift
        touches = 0

        directory_index = block >> self.LEAF_BITS
        leaf = self._directory.get(directory_index)
        touches += 1  # directory entry read
        if leaf is not None:
            touches += 1  # leaf entry read
            frame = leaf.get(block & self._leaf_mask)
            if frame is not None:
                return Translation(frame, self.pair.small, touches)

        chunk = address >> self.pair.large_shift
        touches += 1  # large-page table read
        frame = self._large.get(chunk)
        if frame is not None:
            return Translation(frame, self.pair.large, touches)
        return None

    # ------------------------------------------------------------------
    # Introspection and helpers.
    # ------------------------------------------------------------------

    def small_mapping_count(self) -> int:
        """Number of installed small-page mappings."""
        return sum(len(leaf) for leaf in self._directory.values())

    def large_mapping_count(self) -> int:
        """Number of installed large-page mappings."""
        return len(self._large)

    def lookup_small(self, block: int) -> Optional[int]:
        """Return the frame base mapped for ``block``, or None."""
        leaf = self._directory.get(block >> self.LEAF_BITS)
        if leaf is None:
            return None
        return leaf.get(block & self._leaf_mask)

    def lookup_large(self, chunk: int) -> Optional[int]:
        """Return the large frame base mapped for ``chunk``, or None."""
        return self._large.get(chunk)

    def large_covers_block(self, block: int) -> bool:
        """Return True if ``block`` falls inside a large-page mapping."""
        return block // self.pair.blocks_per_chunk in self._large


    def _chunk_blocks(self, chunk: int):
        base = chunk * self.pair.blocks_per_chunk
        return range(base, base + self.pair.blocks_per_chunk)

    @staticmethod
    def _check_frame(frame_base: int, page_size: int) -> None:
        if frame_base % page_size != 0:
            raise ConfigurationError(
                f"frame base {frame_base:#x} not aligned on {page_size} bytes"
            )
