"""Page-fault simulation: the memory side of the page-size tradeoff.

The paper quantifies how larger pages inflate working sets but stops
short of the consequence: "unless memory is underutilized, increased
working set size would either require more physical memory ... or would
increase the page fault rate" (Section 3.2).  This module closes that
loop with a global-LRU page-replacement simulation: given a physical
memory budget, how often does each page-size scheme fault?

Pages may have different sizes (the two-page-size scheme mixes 4KB and
32KB residents), so the replacement simulation is a *weighted* LRU: the
resident set is capped in bytes, and a fault evicts least-recently-used
pages until the new page fits.  For a single page size this degenerates
to classic LRU paging and is validated against the Mattson stack
simulation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.policy.promotion import DynamicPromotionPolicy
from repro.trace.record import Trace
from repro.types import PageSizePair, validate_page_size


@dataclass(frozen=True)
class PagingResult:
    """Outcome of one paging simulation.

    Attributes:
        memory_bytes: the physical memory budget.
        references: references simulated.
        faults: page faults (first touches plus re-fetches after
            eviction).
        bytes_paged_in: total bytes loaded from backing store.
    """

    memory_bytes: int
    references: int
    faults: int
    bytes_paged_in: int

    @property
    def fault_ratio(self) -> float:
        """Faults per reference (0.0 for an empty trace)."""
        if self.references == 0:
            return 0.0
        return self.faults / self.references


def _simulate_weighted_lru(
    stream: Iterable[Tuple[int, int]], memory_bytes: int
) -> Tuple[int, int, int]:
    """Run weighted LRU over ``(page_key, page_bytes)`` pairs.

    Returns ``(references, faults, bytes_paged_in)``.  ``page_key`` must
    already be unique across page sizes (callers tag the size into the
    key), because a chunk mapped large and later small is a different
    resident object.
    """
    resident: "OrderedDict[int, int]" = OrderedDict()
    resident_bytes = 0
    references = 0
    faults = 0
    paged_in = 0
    for key, size in stream:
        references += 1
        if key in resident:
            resident.move_to_end(key)
            continue
        faults += 1
        paged_in += size
        resident_bytes += size
        resident[key] = size
        while resident_bytes > memory_bytes and resident:
            _, evicted_size = resident.popitem(last=False)
            resident_bytes -= evicted_size
    return references, faults, paged_in


def single_size_paging(
    trace: Trace, page_size: int, memory_bytes: int
) -> PagingResult:
    """Global-LRU paging with one page size."""
    validate_page_size(page_size)
    if memory_bytes < page_size:
        raise ConfigurationError(
            "physical memory smaller than one page cannot run anything"
        )
    shift = page_size.bit_length() - 1
    pages = (trace.addresses >> np.uint32(shift)).tolist()
    references, faults, paged_in = _simulate_weighted_lru(
        ((page, page_size) for page in pages), memory_bytes
    )
    return PagingResult(memory_bytes, references, faults, paged_in)


def two_size_paging(
    trace: Trace,
    pair: PageSizePair,
    window: int,
    memory_bytes: int,
    *,
    promote_fraction: float = 0.5,
) -> PagingResult:
    """Global-LRU paging under the dynamic two-page-size policy.

    Each reference is charged at the size its chunk is currently mapped
    with; a promotion makes the next touch fault in the whole 32KB
    chunk (page keys are size-tagged, so the old 4KB residents stop
    matching — modelling the copy/zero cost of Section 3.4 as paging
    traffic).
    """
    if memory_bytes < pair.large:
        raise ConfigurationError(
            "physical memory smaller than one large page"
        )
    policy = DynamicPromotionPolicy(
        pair, window, promote_fraction=promote_fraction
    )
    blocks = (trace.addresses >> np.uint32(pair.small_shift)).tolist()

    def stream():
        small, large = pair.small, pair.large
        decide = policy.access_block
        for block in blocks:
            decision = decide(block)
            if decision.large:
                yield (decision.page << 1) | 1, large
            else:
                yield decision.page << 1, small

    references, faults, paged_in = _simulate_weighted_lru(
        stream(), memory_bytes
    )
    return PagingResult(memory_bytes, references, faults, paged_in)


def fault_rate_curve(
    trace: Trace,
    page_size: int,
    memory_sizes: Sequence[int],
) -> Dict[int, PagingResult]:
    """Single-size fault rates across a sweep of memory budgets."""
    if not memory_sizes:
        raise ConfigurationError("memory_sizes must not be empty")
    return {
        int(memory): single_size_paging(trace, page_size, memory)
        for memory in memory_sizes
    }
