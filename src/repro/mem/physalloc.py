"""Buddy allocator for physical page frames.

Supporting two page sizes introduces **external fragmentation** (Section
1, disadvantage five): a large page needs a naturally aligned contiguous
32KB region of physical memory, which may be unavailable even when
plenty of scattered 4KB frames are free.  A buddy allocator is the
classic OS answer — power-of-two blocks, self-aligned, split on demand
and coalesced with their "buddy" on free — and is what lets us quantify
how often promotions would fail for lack of contiguity (an ablation the
paper lists as an open problem).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import AllocationError, ConfigurationError
from repro.types import is_power_of_two, log2_exact


class BuddyAllocator:
    """Power-of-two buddy allocator over ``[0, memory_size)``.

    Args:
        memory_size: total physical memory in bytes (power of two).
        min_block: smallest allocatable block (the small page size).
    """

    def __init__(self, memory_size: int, min_block: int = 4096) -> None:
        if not is_power_of_two(memory_size):
            raise ConfigurationError("memory_size must be a power of two")
        if not is_power_of_two(min_block):
            raise ConfigurationError("min_block must be a power of two")
        if min_block > memory_size:
            raise ConfigurationError("min_block exceeds memory_size")
        self.memory_size = memory_size
        self.min_block = min_block
        self._min_order = log2_exact(min_block)
        self._max_order = log2_exact(memory_size)
        # order -> sorted-unimportant list of free block base addresses
        self._free: Dict[int, List[int]] = {
            order: [] for order in range(self._min_order, self._max_order + 1)
        }
        self._free[self._max_order].append(0)
        # base address -> order, for every live allocation
        self._allocated: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Allocation interface.
    # ------------------------------------------------------------------

    def allocate(self, size: int) -> int:
        """Allocate a naturally aligned block of ``size`` bytes.

        Raises :class:`AllocationError` when no sufficiently large free
        block exists (external fragmentation), even if total free memory
        would suffice.
        """
        order = self._order_for(size)
        found = None
        for candidate in range(order, self._max_order + 1):
            if self._free[candidate]:
                found = candidate
                break
        if found is None:
            raise AllocationError(
                f"no free block of {size} bytes (free={self.free_bytes()}, "
                f"largest={self.largest_free_block()})"
            )
        base = self._free[found].pop()
        # Split down to the requested order, returning upper halves.
        while found > order:
            found -= 1
            self._free[found].append(base + (1 << found))
        self._allocated[base] = order
        return base

    def free(self, base: int) -> None:
        """Free a previously allocated block, coalescing with buddies."""
        order = self._allocated.pop(base, None)
        if order is None:
            raise AllocationError(f"address {base:#x} is not allocated")
        while order < self._max_order:
            buddy = base ^ (1 << order)
            free_list = self._free[order]
            try:
                free_list.remove(buddy)
            except ValueError:
                break
            base = min(base, buddy)
            order += 1
        self._free[order].append(base)

    def try_allocate(self, size: int) -> Optional[int]:
        """Like :meth:`allocate` but returns None instead of raising."""
        try:
            return self.allocate(size)
        except AllocationError:
            return None

    # ------------------------------------------------------------------
    # Fragmentation metrics.
    # ------------------------------------------------------------------

    def free_bytes(self) -> int:
        """Total free memory."""
        return sum(
            len(blocks) << order for order, blocks in self._free.items()
        )

    def allocated_bytes(self) -> int:
        """Total allocated memory."""
        return self.memory_size - self.free_bytes()

    def largest_free_block(self) -> int:
        """Size of the largest allocatable block right now."""
        for order in range(self._max_order, self._min_order - 1, -1):
            if self._free[order]:
                return 1 << order
        return 0

    def external_fragmentation(self) -> float:
        """1 - largest_free_block / free_bytes (0 when memory is unfragmented).

        The standard summary statistic: how much of the free memory is
        unusable for the largest request the free total could serve.
        """
        free = self.free_bytes()
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_block() / free

    def _order_for(self, size: int) -> int:
        if size <= 0:
            raise ConfigurationError(f"allocation size must be positive: {size}")
        if not is_power_of_two(size):
            raise ConfigurationError(
                f"buddy allocations must be powers of two, got {size}"
            )
        order = log2_exact(size)
        if order < self._min_order:
            order = self._min_order
        if order > self._max_order:
            raise AllocationError(
                f"request of {size} bytes exceeds memory size {self.memory_size}"
            )
        return order
