"""Walk-derived miss-penalty model.

The paper *estimates* that a two-page-size miss handler runs ~25% longer
than a single-size one (Section 2.3, from SPARC assembly sketches).
This module derives that overhead from the page-table structure instead
of assuming it: a software miss handler costs a fixed trap/return
sequence plus one memory access per page-table level it reads, and the
two-page-size walk of :class:`~repro.mem.page_table.TwoPageSizePageTable`
reads more levels when the translation turns out to be a large page
(small-page table first, then the large-page table).

With the defaults below, a small-page miss costs 16 + 2x4 = 24 cycles
and a large-page miss 16 + 3x4 = 28 cycles — bracketing the paper's
flat 25-cycle assumption, which is the point: the 1.25x factor is the
blended cost of a handler that tries page sizes in order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.mem.page_table import Translation, TwoPageSizePageTable


@dataclass(frozen=True)
class WalkCycleModel:
    """Cycle cost of a software miss handler, per walk performed.

    Attributes:
        trap_cycles: fixed cost of the trap, register save/restore and
            TLB write (the handler's straight-line portion).
        cycles_per_touch: cost of each page-table memory access the walk
            performs (roughly a cache-missing load in 1992 terms).
    """

    trap_cycles: float = 16.0
    cycles_per_touch: float = 4.0

    def __post_init__(self) -> None:
        if self.trap_cycles < 0 or self.cycles_per_touch < 0:
            raise ConfigurationError("walk-cost cycles must be non-negative")

    def cost(self, translation: Translation) -> float:
        """Cycles to handle a miss whose walk produced ``translation``."""
        return self.trap_cycles + self.cycles_per_touch * (
            translation.memory_touches
        )

    def small_page_cost(self) -> float:
        """Cost of a miss resolved by the two-level small-page walk."""
        return self.trap_cycles + self.cycles_per_touch * 2

    def large_page_cost(self) -> float:
        """Cost of a miss resolved after the failed small walk."""
        return self.trap_cycles + self.cycles_per_touch * 3

    def blended_factor(self, large_fraction: float) -> float:
        """Effective penalty multiplier versus an all-small handler.

        ``large_fraction`` is the fraction of misses that resolve to
        large pages.  At 0 the factor is 1.0; it grows toward
        ``large_page_cost / small_page_cost`` as large pages dominate —
        the measured counterpart of the paper's assumed 1.25.
        """
        if not 0.0 <= large_fraction <= 1.0:
            raise ConfigurationError("large_fraction must lie in [0, 1]")
        blended = (
            (1.0 - large_fraction) * self.small_page_cost()
            + large_fraction * self.large_page_cost()
        )
        return blended / self.small_page_cost()


def measure_walk_costs(
    table: TwoPageSizePageTable,
    addresses,
    model: WalkCycleModel = WalkCycleModel(),
) -> float:
    """Total handler cycles for walking every address in ``addresses``.

    Unmapped addresses cost a full failed walk (all levels read) — the
    handler discovers the page fault the hard way.
    """
    total = 0.0
    failed_walk = model.trap_cycles + model.cycles_per_touch * 3
    for address in addresses:
        translation = table.walk(int(address))
        if translation is None:
            total += failed_walk
        else:
            total += model.cost(translation)
    return total
