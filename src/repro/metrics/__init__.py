"""The paper's metrics: CPI_TLB, MPI, miss ratio, WS_Normalized and the
critical miss-penalty increase (Section 3.2)."""

from repro.metrics.cpi import (
    TLBPerformance,
    critical_miss_penalty_increase,
    performance_from_miss_count,
    speedup_over_baseline,
)
from repro.metrics.wsnorm import (
    NormalizedWorkingSet,
    arithmetic_mean,
    geometric_mean,
    normalize_working_sets,
)

__all__ = [
    "NormalizedWorkingSet",
    "TLBPerformance",
    "arithmetic_mean",
    "critical_miss_penalty_increase",
    "geometric_mean",
    "normalize_working_sets",
    "performance_from_miss_count",
    "speedup_over_baseline",
]
