"""TLB performance metrics (Section 3.2 of the paper).

The paper's headline metric is the TLB's contribution to cycles per
instruction::

    CPI_TLB = (TLB misses per instruction) * (TLB miss penalty)

with derived quantities::

    MPI        = CPI_TLB / penalty
    miss ratio = MPI / RPI        (RPI = references per instruction)

and the *critical miss penalty increase* — how much costlier a two-page-
size miss handler could get before losing to the 4KB baseline::

    delta_mp(ps) = (MPI(4KB) / MPI(ps) - 1) * 100%
                 = (1.25 * CPI_TLB(4KB) / CPI_TLB(ps) - 1) * 100%
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.mem.misshandler import (
    SINGLE_SIZE_PENALTY_CYCLES,
    TWO_SIZE_PENALTY_FACTOR,
)


@dataclass(frozen=True)
class TLBPerformance:
    """One simulation run's TLB performance in the paper's units.

    Attributes:
        misses: total TLB misses.
        references: total memory references simulated.
        refs_per_instruction: the trace's RPI (Table 3.1).
        miss_penalty_cycles: cycles charged per miss (20 or 25).
        extra_cycles: cycles charged beyond miss handling (reprobe or
            promotion surcharges), folded into CPI_TLB.
    """

    misses: int
    references: int
    refs_per_instruction: float
    miss_penalty_cycles: float
    extra_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.references < 0 or self.misses < 0:
            raise SimulationError("negative counts are impossible")
        if self.misses > self.references:
            raise SimulationError("more misses than references")
        if self.refs_per_instruction <= 0:
            raise SimulationError("refs_per_instruction must be positive")

    @property
    def instructions(self) -> float:
        """Instructions executed, recovered from references / RPI."""
        return self.references / self.refs_per_instruction

    @property
    def misses_per_instruction(self) -> float:
        """MPI: TLB misses per instruction."""
        if self.references == 0:
            return 0.0
        return self.misses / self.instructions

    @property
    def miss_ratio(self) -> float:
        """Misses per memory reference."""
        if self.references == 0:
            return 0.0
        return self.misses / self.references

    @property
    def cpi_tlb(self) -> float:
        """The TLB's contribution to cycles per instruction."""
        if self.references == 0:
            return 0.0
        cycles = self.misses * self.miss_penalty_cycles + self.extra_cycles
        return cycles / self.instructions


def critical_miss_penalty_increase(
    baseline: TLBPerformance,
    two_size: TLBPerformance,
    *,
    factor: float = TWO_SIZE_PENALTY_FACTOR,
) -> float:
    """The paper's delta-mp: tolerable penalty increase, in percent.

    ``baseline`` is the single-4KB-page run (20-cycle penalty) and
    ``two_size`` the two-page-size run.  A value of 30.0 means the
    two-page-size handler could take 30% longer than the single-size
    handler before CPI_TLB equalled the 4KB baseline; negative values
    mean the two-page-size scheme already loses.
    """
    if two_size.misses == 0:
        return math.inf
    mpi_ratio = baseline.misses_per_instruction / two_size.misses_per_instruction
    return (mpi_ratio - 1.0) * 100.0


def speedup_over_baseline(
    baseline: TLBPerformance, candidate: TLBPerformance
) -> float:
    """CPI_TLB(baseline) / CPI_TLB(candidate); > 1 means candidate wins."""
    if candidate.cpi_tlb == 0.0:
        return math.inf
    return baseline.cpi_tlb / candidate.cpi_tlb


def performance_from_miss_count(
    misses: int,
    references: int,
    refs_per_instruction: float,
    *,
    two_page_sizes: bool,
    base_penalty: float = SINGLE_SIZE_PENALTY_CYCLES,
    extra_cycles: float = 0.0,
) -> TLBPerformance:
    """Build a :class:`TLBPerformance` with the paper's penalty rules."""
    penalty = base_penalty * (TWO_SIZE_PENALTY_FACTOR if two_page_sizes else 1.0)
    return TLBPerformance(
        misses=misses,
        references=references,
        refs_per_instruction=refs_per_instruction,
        miss_penalty_cycles=penalty,
        extra_cycles=extra_cycles,
    )
