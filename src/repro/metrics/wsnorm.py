"""Normalized working-set size (Section 3.2).

``WS_Normalized(ps) = s(T, ps) / s(T, 4KB)`` — the factor by which a
page-size scheme inflates a program's average working set relative to
the 4KB baseline.  The paper reads memory cost off this number: 1.5
means half again as much memory demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from repro.errors import SimulationError
from repro.types import PAGE_4KB


@dataclass(frozen=True)
class NormalizedWorkingSet:
    """A working-set measurement normalised to the 4KB baseline.

    Attributes:
        scheme: label of the page-size scheme (e.g. ``"32KB"``,
            ``"4KB/32KB"``).
        baseline_bytes: s(T, 4KB) in bytes.
        scheme_bytes: s(T, scheme) in bytes.
    """

    scheme: str
    baseline_bytes: float
    scheme_bytes: float

    def __post_init__(self) -> None:
        if self.baseline_bytes < 0 or self.scheme_bytes < 0:
            raise SimulationError("working-set sizes cannot be negative")

    @property
    def normalized(self) -> float:
        """WS_Normalized: the inflation factor over 4KB pages."""
        if self.baseline_bytes == 0:
            return 1.0
        return self.scheme_bytes / self.baseline_bytes

    @property
    def percent_increase(self) -> float:
        """The inflation expressed as a percentage increase."""
        return (self.normalized - 1.0) * 100.0


def normalize_working_sets(
    measurements: Mapping[str, float],
    *,
    baseline_key: str = f"{PAGE_4KB // 1024}KB",
) -> Dict[str, NormalizedWorkingSet]:
    """Normalise {scheme label: ws bytes} against the baseline entry."""
    if baseline_key not in measurements:
        raise SimulationError(
            f"baseline {baseline_key!r} missing from measurements "
            f"{sorted(measurements)}"
        )
    baseline = measurements[baseline_key]
    return {
        scheme: NormalizedWorkingSet(scheme, baseline, value)
        for scheme, value in measurements.items()
    }


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the right average for ratio metrics like
    WS_Normalized (the paper reports plain averages; we report both)."""
    if not values:
        raise SimulationError("geometric mean of no values")
    product = 1.0
    for value in values:
        if value <= 0:
            raise SimulationError("geometric mean needs positive values")
        product *= value
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    """Plain average, as the paper's cross-workload summaries use."""
    if not values:
        raise SimulationError("mean of no values")
    return sum(values) / len(values)
