"""Multi-process experiment engine.

Three pieces, designed to compose with :mod:`repro.robustness` rather
than replace it:

* :mod:`repro.parallel.pool` — a fork-based worker pool with an explicit
  message protocol (start/done/error/event/crash), batched dispatch with
  per-unit reporting so a dying worker loses exactly the unit it was
  running, and a process-wide persistent pool (:func:`shared_task_pool`
  / :func:`lease_task_pool`) so fork cost is paid once per process.
* :mod:`repro.parallel.scheduler` — dependency validation, stable
  topological ordering and affinity routing, so units that share a stack
  pass land in the same worker.
* :mod:`repro.parallel.cache` — a content-addressed on-disk result cache
  keyed by SHA-256 of (trace fingerprint, config, kernel, penalty
  model), consulted before any simulation.
* :mod:`repro.parallel.supervisor` — the supervision policy layered on
  the pool: heartbeat/deadline hang detection, requeue-then-quarantine
  of worker-killing units, exponential-backoff respawn, AIMD admission
  control, and degraded-serial fallback.

The engine (:mod:`repro.parallel.engine`) ties them together behind
``run_units(..., jobs=N)``; the parent process keeps sole ownership of
the journal and of every publish callback, so checkpoint/resume and
failure isolation behave exactly as in the serial path.
"""

from repro.parallel.cache import SimulationCache, canonical_key
from repro.parallel.pool import (
    PoolLease,
    in_worker,
    lease_task_pool,
    parallel_map,
    resolve_jobs,
    shared_task_pool,
    shutdown_shared_pool,
)
from repro.parallel.supervisor import (
    AIMDController,
    SupervisorConfig,
)

__all__ = [
    "AIMDController",
    "PoolLease",
    "SimulationCache",
    "SupervisorConfig",
    "canonical_key",
    "in_worker",
    "lease_task_pool",
    "parallel_map",
    "resolve_jobs",
    "shared_task_pool",
    "shutdown_shared_pool",
]
