"""Content-addressed on-disk cache of simulation results.

Cross-artifact duplicate work — fig 5.1, fig 5.2 and table 5.1 all
simulate several identical (trace, config) pairs — is computed once per
machine and replayed from disk afterwards.  Entries are addressed by the
SHA-256 of a canonical-JSON *key part* mapping that covers everything
able to change a result:

* the **trace fingerprint** (:attr:`repro.trace.record.Trace.fingerprint`
  — contents, not file name, so a regenerated trace misses cleanly);
* the **configuration** (TLB shape, page size or pair, index shift,
  policy parameters);
* the **kernel** requested (``scalar``/``vector``/``auto``);
* the **penalty model** (base penalty, two-size penalty factor);
* a ``version`` counter bumped whenever simulation semantics change.

Values are JSON documents wrapping the result payload with a CRC32.  A
corrupt, truncated or mismatched entry is **never trusted**: it is
deleted best-effort and the caller recomputes — the cache can only make
runs faster, never wrong.  Only an unusable cache *root* raises
(:class:`~repro.errors.CacheError`); see :meth:`SimulationCache.open`.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.errors import CacheError


class CacheIntegrityWarning(UserWarning):
    """A corrupt cache entry was discarded and will be recomputed.

    Self-healing must be observable: silent discard-and-recompute makes
    a rotting disk look like a slow machine.  The warning names the
    entry; the per-process counter (:func:`corrupt_discarded_total`)
    feeds the suite report's ``cache_corrupt_discarded`` line.
    """


#: Process-wide count of corrupt entries discarded, across all cache
#: instances (workers report theirs to the parent via pool events).
_CORRUPT_DISCARDED = 0


def corrupt_discarded_total() -> int:
    """Corrupt cache entries discarded by this process so far."""
    return _CORRUPT_DISCARDED


def _note_corrupt_entry(path: Path) -> None:
    global _CORRUPT_DISCARDED
    _CORRUPT_DISCARDED += 1
    warnings.warn(
        f"discarding corrupt result-cache entry {path} (recomputing)",
        CacheIntegrityWarning,
        stacklevel=3,
    )
    # In a pool worker the counter above is invisible to the parent:
    # forward the discard as an out-of-band event.  Lazy import — the
    # pool imports nothing from this module, but keep the edge one-way
    # at module load anyway.
    from repro.parallel.pool import emit_event, in_worker

    if in_worker():
        emit_event(("cache_corrupt", str(path)))

#: Entry-file schema; bump on layout changes.
CACHE_SCHEMA = "repro-cache/1"
#: Simulation-semantics counter folded into every key.  ``2``: keys now
#: store the *resolved* kernel ("scalar"/"vector", never "auto") and the
#: two-size vector path moved to the epoch-segmented kernel.  ``3``: the
#: multiprogrammed path gained the ``"multiprog"`` kind (grid cells and
#: single runs share entries) and its mixes are built by the vectorized
#: round-robin mixer.  ``4``: FIFO/random replacement moved to the
#: sampled-set kernel (keys record ``"sampled"`` plus the ``exact``
#: flag), replacement RNGs are seeded from the configuration, and the
#: ``"twolevel"`` and ``"multiprog2"`` kinds joined the namespace.
CACHE_KEY_VERSION = 4


def canonical_key(parts: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of ``parts`` in canonical JSON form.

    ``parts`` must be JSON-serializable with only sortable string keys;
    the encoding is key-sorted and whitespace-free so logically equal
    mappings always hash identically.
    """
    encoded = json.dumps(
        dict(parts), sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def _payload_crc(payload: Any) -> int:
    encoded = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return zlib.crc32(encoded.encode("utf-8")) & 0xFFFFFFFF


def default_cache_root() -> Path:
    """The cache directory honouring ``REPRO_CACHE_DIR`` and XDG."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "results"


@dataclass
class CacheStats:
    """Counters for one cache instance (reset per process)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    discards: int = 0
    errors: int = 0


#: Memoized :meth:`SimulationCache.from_environment` instances, keyed by
#: stringified root.  One instance per root means hit/miss stats
#: accumulate across callers instead of resetting per lookup.
_ENV_CACHES: Dict[str, "SimulationCache"] = {}


@dataclass
class SimulationCache:
    """A content-addressed result store rooted at ``root``."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    @classmethod
    def open(cls, root: Union[str, os.PathLike]) -> "SimulationCache":
        """Create (mkdir -p) and return a cache at ``root``.

        Raises :class:`~repro.errors.CacheError` when the root cannot be
        created — a misconfigured cache should fail loudly up front, not
        as a per-unit failure mid-suite.
        """
        path = Path(root)
        try:
            path.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise CacheError(
                f"cannot create result cache at {path}: {error}"
            ) from error
        return cls(path)

    @classmethod
    def from_environment(cls) -> Optional["SimulationCache"]:
        """The process-default cache, or None when disabled.

        ``REPRO_CACHE=0`` (or ``off``/``no``/``false``) disables caching;
        ``REPRO_CACHE_DIR`` relocates it.  Instances are memoized per
        root: hot paths (a sweep per bench repeat, a unit per
        experiment) call this freely without re-running ``mkdir -p``
        and losing the running hit/miss stats every time.  The memo is
        keyed on the *resolved* root, so flipping ``REPRO_CACHE_DIR``
        mid-process still yields the right cache.
        """
        flag = os.environ.get("REPRO_CACHE", "1").strip().lower()
        if flag in ("0", "off", "no", "false"):
            return None
        root = default_cache_root()
        key = str(root)
        cached = _ENV_CACHES.get(key)
        if cached is None:
            cached = cls.open(root)
            _ENV_CACHES[key] = cached
        return cached

    def _entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the payload stored under ``key``, or None.

        Every failure mode — missing file, bad JSON, wrong schema, key
        mismatch, CRC mismatch — is a miss; corrupt entries are deleted
        so they are recomputed exactly once.
        """
        path = self._entry_path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            document = json.loads(raw)
            if (
                not isinstance(document, dict)
                or document.get("schema") != CACHE_SCHEMA
                or document.get("key") != key
            ):
                raise ValueError("bad cache document")
            payload = document["payload"]
            if _payload_crc(payload) != int(document["crc"]):
                raise ValueError("payload checksum mismatch")
        except (ValueError, KeyError, TypeError):
            # Never trust a damaged entry: drop it and recompute.
            self.stats.discards += 1
            self.stats.misses += 1
            _note_corrupt_entry(path)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` (atomic; best effort).

        Write failures (read-only disk, quota) are counted but swallowed
        — a simulation that just produced a correct result must not fail
        because its cache write did.
        """
        path = self._entry_path(key)
        document = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "crc": _payload_crc(payload),
            "payload": payload,
        }
        temporary = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            temporary.write_text(json.dumps(document, sort_keys=True))
            os.replace(temporary, path)
        except OSError:
            self.stats.errors += 1
            try:
                temporary.unlink()
            except OSError:
                pass
            return
        self.stats.stores += 1


__all__ = [
    "CACHE_KEY_VERSION",
    "CACHE_SCHEMA",
    "CacheIntegrityWarning",
    "CacheStats",
    "SimulationCache",
    "canonical_key",
    "corrupt_discarded_total",
    "default_cache_root",
]
