"""The parallel experiment engine behind ``run_units(..., jobs=N)``.

Workers execute units; the **parent does everything else** — journaling,
publishing, retry announcements, failure reports.  Outcomes are staged
as workers finish (any order) but *flushed* strictly as a contiguous
prefix of the original spec order, so:

* the journal's unit records appear in the same deterministic order a
  serial run would write them, and a ``--resume`` after a crash under
  ``jobs=4`` skips the same set regardless of worker finish order;
* publish callbacks (rendering, result files, stdout) run in spec order
  in the parent, byte-identical to a serial run;
* the publish-before-journal contract holds unchanged: a unit is
  journaled complete only after its outputs exist.

Failure isolation also carries over: a unit that exhausts its retries —
or whose *worker dies outright* (segfault, ``os._exit``, OOM kill) — is
recorded FAILED while the rest of the suite keeps running on the
surviving (or respawned) workers.  Units whose declared dependencies
failed are failed without running.
"""

from __future__ import annotations

import pickle
import traceback as traceback_module
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Type

from repro.errors import ParallelError, WorkerCrashError
from repro.parallel import scheduler
from repro.parallel.pool import (
    WorkerPool,
    emit_event,
    reconstruct_error,
)
from repro.robustness.journal import RunJournal
from repro.robustness.retry import Deadline, RetryPolicy, call_with_retry

#: How long one poll waits for worker messages before rechecking state.
_POLL_SECONDS = 0.05


def run_units_parallel(
    units: Sequence,
    *,
    jobs: int,
    journal: Optional[RunJournal],
    resume: bool,
    retry_policy: RetryPolicy,
    deadline_seconds: Optional[float],
    fail_fast: bool,
    retriable: Tuple[Type[BaseException], ...],
    on_success: Optional[Callable],
    on_skip: Optional[Callable],
    on_failure: Optional[Callable],
    on_retry: Optional[Callable],
    journal_payload: Optional[Callable],
    clock: Callable[[], float],
    sleep: Callable[[float], None],
):
    """Parallel twin of the serial loop in ``robustness.executor``.

    Same report, same journal contents, same callback order — only the
    wall clock differs.  Called via ``run_units(jobs=N)``; not meant to
    be invoked directly.
    """
    from repro.robustness.executor import (
        STATUS_FAILED,
        STATUS_OK,
        STATUS_SKIPPED,
        SuiteReport,
        UnitOutcome,
    )

    scheduler.validate_units(units)
    topo = scheduler.topological_order(units)
    count = len(units)

    #: Per-unit staged outcome, filled as units finish, flushed in
    #: spec order.  Kinds: "skip" | "ok" | "fail".
    staged: List[Optional[Dict[str, Any]]] = [None] * count
    dispatched = [False] * count
    events: List[List[Tuple]] = [[] for _ in range(count)]
    #: Dependencies are satisfied only once the dependency has *flushed*
    #: successfully (outputs published, journal written) — a staged-but-
    #: unflushed success could still fail in its publish step, and a
    #: dependent must not have started by then.
    flushed_ok: Set[str] = set()
    finished_fail: Set[str] = set()

    for index, spec in enumerate(units):
        if resume and journal is not None and journal.completed(spec.name):
            staged[index] = {"kind": "skip"}

    def make_task(spec):
        def task():
            deadline = Deadline(deadline_seconds, clock=clock)

            def notify(attempt, error, delay):
                emit_event(
                    ("retry", attempt, type(error).__name__, str(error), delay)
                )

            return call_with_retry(
                spec.run,
                policy=retry_policy,
                deadline=deadline,
                retriable=retriable,
                on_retry=notify,
                sleep=sleep,
                label=spec.name,
            )

        return task

    runnable = sum(1 for stage in staged if stage is None)
    pool: Optional[WorkerPool] = None
    if runnable:
        pool = WorkerPool([make_task(spec) for spec in units],
                          min(jobs, runnable))
    router = scheduler.AffinityRouter()
    report = SuiteReport()

    def stage_failure(
        index: int,
        *,
        error_text: str,
        traceback_text: Optional[str],
        elapsed: float,
        attempts: int,
        exception: BaseException,
    ) -> None:
        staged[index] = {
            "kind": "fail",
            "error": error_text,
            "traceback": traceback_text,
            "elapsed": elapsed,
            "attempts": attempts,
            "exception": exception,
        }
        finished_fail.add(units[index].name)

    def flush(index: int) -> bool:
        """Publish/journal/report one unit; True if it ended FAILED."""
        spec = units[index]
        stage = staged[index]
        if stage["kind"] == "skip":
            previous = journal.get(spec.name) if journal is not None else None
            report.outcomes.append(
                UnitOutcome(
                    name=spec.name,
                    status=STATUS_SKIPPED,
                    elapsed=previous.elapsed if previous else 0.0,
                )
            )
            if on_skip is not None:
                on_skip(spec)
            flushed_ok.add(spec.name)
            return False
        # Replay the worker's retry notices now, so announcements land
        # in spec order exactly as a serial run would print them.
        for event in events[index]:
            _tag, attempt, type_name, message, delay = event
            if on_retry is not None:
                on_retry(
                    spec, attempt, reconstruct_error(type_name, message), delay
                )
        if stage["kind"] == "ok":
            result = stage["result"]
            attempts = stage["attempts"]
            elapsed = stage["elapsed"]
            payload = None
            try:
                if on_success is not None:
                    on_success(spec, result, elapsed)
                if journal is not None and journal_payload is not None:
                    payload = journal_payload(spec, result)
            except (KeyboardInterrupt, SystemExit) as interrupt:
                if journal is not None:
                    journal.record_failure(
                        spec.name,
                        error=f"interrupted: {interrupt!r}",
                        elapsed=elapsed,
                        attempts=attempts,
                    )
                raise
            except BaseException as error:  # noqa: BLE001 - isolation boundary
                trace_text = "".join(
                    traceback_module.format_exception(
                        type(error), error, error.__traceback__
                    )
                )
                error_text = f"{type(error).__name__}: {error}"
                finished_fail.add(spec.name)
                if journal is not None:
                    journal.record_failure(
                        spec.name,
                        error=error_text,
                        traceback=trace_text,
                        elapsed=elapsed,
                        attempts=attempts,
                    )
                report.outcomes.append(
                    UnitOutcome(
                        name=spec.name,
                        status=STATUS_FAILED,
                        error=error_text,
                        traceback=trace_text,
                        elapsed=elapsed,
                        attempts=attempts,
                    )
                )
                if on_failure is not None:
                    on_failure(spec, error)
                return True
            if journal is not None:
                journal.record_success(
                    spec.name,
                    elapsed=elapsed,
                    attempts=attempts,
                    payload=payload,
                )
            report.outcomes.append(
                UnitOutcome(
                    name=spec.name,
                    status=STATUS_OK,
                    result=result,
                    elapsed=elapsed,
                    attempts=attempts,
                )
            )
            flushed_ok.add(spec.name)
            return False
        # stage["kind"] == "fail"
        if journal is not None:
            journal.record_failure(
                spec.name,
                error=stage["error"],
                traceback=stage["traceback"],
                elapsed=stage["elapsed"],
                attempts=stage["attempts"],
            )
        report.outcomes.append(
            UnitOutcome(
                name=spec.name,
                status=STATUS_FAILED,
                error=stage["error"],
                traceback=stage["traceback"],
                elapsed=stage["elapsed"],
                attempts=stage["attempts"],
            )
        )
        if on_failure is not None:
            on_failure(spec, stage["exception"])
        return True

    flushed = 0
    stop = False
    respawn_budget = count + jobs
    clean = False
    try:
        while flushed < count:
            # Fail units whose dependencies failed (topo order, so one
            # pass cascades the whole chain).
            for index in topo:
                if staged[index] is not None or dispatched[index]:
                    continue
                failed_needs = [
                    need
                    for need in scheduler.unit_needs(units[index])
                    if need in finished_fail
                ]
                if failed_needs:
                    error = ParallelError(
                        f"dependency {failed_needs[0]!r} failed"
                    )
                    stage_failure(
                        index,
                        error_text=f"{type(error).__name__}: {error}",
                        traceback_text=None,
                        elapsed=0.0,
                        attempts=0,
                        exception=error,
                    )
            while flushed < count and staged[flushed] is not None:
                failed = flush(flushed)
                flushed += 1
                if failed and fail_fast:
                    stop = True
                    break
            if stop or flushed >= count:
                break
            if pool is None:
                raise ParallelError(
                    "internal: unfinished units but no worker pool"
                )
            for index in topo:
                if staged[index] is not None or dispatched[index]:
                    continue
                spec = units[index]
                if any(
                    need not in flushed_ok
                    for need in scheduler.unit_needs(spec)
                ):
                    continue
                idle = pool.idle_workers()
                if not idle:
                    break
                worker_id = router.pick_worker(spec, idle)
                if worker_id is None:
                    continue
                pool.submit(worker_id, index)
                dispatched[index] = True
            for message in pool.poll(_POLL_SECONDS):
                index = message.task_id
                if message.kind == "event":
                    if index is not None and message.payload[0] == "retry":
                        events[index].append(message.payload)
                elif message.kind == "done" and staged[index] is None:
                    blob, elapsed = message.payload
                    result, attempts = pickle.loads(blob)
                    staged[index] = {
                        "kind": "ok",
                        "result": result,
                        "attempts": attempts,
                        "elapsed": elapsed,
                    }
                elif message.kind == "error" and staged[index] is None:
                    type_name, text, remote_tb, elapsed = message.payload
                    retries = len(events[index])
                    attempts = (
                        retries
                        if type_name == "DeadlineExceededError"
                        else retries + 1
                    )
                    stage_failure(
                        index,
                        error_text=f"{type_name}: {text}",
                        traceback_text=remote_tb,
                        elapsed=elapsed,
                        attempts=attempts,
                        exception=reconstruct_error(type_name, text, remote_tb),
                    )
                elif message.kind == "crash":
                    router.forget_worker(message.worker_id)
                    if index is not None and staged[index] is None:
                        error = WorkerCrashError(
                            f"worker {message.worker_id} exited with code "
                            f"{message.payload} while running "
                            f"{units[index].name!r}"
                        )
                        stage_failure(
                            index,
                            error_text=f"{type(error).__name__}: {error}",
                            traceback_text=None,
                            elapsed=0.0,
                            attempts=len(events[index]) + 1,
                            exception=error,
                        )
            if pool.alive_count() == 0:
                outstanding = any(
                    staged[index] is None and not dispatched[index]
                    for index in range(count)
                )
                if outstanding:
                    if respawn_budget <= 0:
                        raise ParallelError(
                            "workers keep dying before accepting work; "
                            "giving up on the remaining units"
                        )
                    for worker_id in range(pool.jobs):
                        respawn_budget -= 1
                        pool.respawn(worker_id)
        clean = True
    finally:
        if pool is not None:
            if clean and not stop:
                pool.close()
            else:
                pool.terminate()
    return report


__all__ = ["run_units_parallel"]
