"""The parallel experiment engine behind ``run_units(..., jobs=N)``.

Workers execute units; the **parent does everything else** — journaling,
publishing, retry announcements, failure reports.  Outcomes are staged
as workers finish (any order) but *flushed* strictly as a contiguous
prefix of the original spec order, so:

* the journal's unit records appear in the same deterministic order a
  serial run would write them, and a ``--resume`` after a crash under
  ``jobs=4`` skips the same set regardless of worker finish order;
* publish callbacks (rendering, result files, stdout) run in spec order
  in the parent, byte-identical to a serial run;
* the publish-before-journal contract holds unchanged: a unit is
  journaled complete only after its outputs exist.

Failure isolation also carries over: a unit that exhausts its retries —
or whose *worker dies outright* (segfault, ``os._exit``, OOM kill) — is
recorded FAILED while the rest of the suite keeps running on the
surviving (or respawned) workers.  Units whose declared dependencies
failed are failed without running.

Three throughput decisions (the difference between a correctness demo
and an engine that beats serial):

* **Pool reuse.**  When every unit is picklable and the retry plumbing
  uses the real clock, units ship to the persistent
  :func:`~repro.parallel.pool.shared_task_pool` under a
  :class:`~repro.parallel.pool.PoolLease` — fork cost is paid once per
  process, and the supervisor operates on a pool it does not own
  (kills and respawns against shared members; the lease restores the
  pool's knobs and quiesces leftovers on release).  Unpicklable units
  (closures over traces) fall back to a private fork-inherited
  registry pool exactly as before.
* **Batched dispatch.**  Independent units are packed into batches
  (one queue round-trip each, sized by
  :func:`~repro.parallel.scheduler.plan_batch_size` and the
  per-unit cost model) while the worker still reports
  start/done/error *per unit* — so journal records, cache entries and
  supervision are per-unit, and a poisoned unit quarantines alone
  while its batch siblings come back as ``"requeue"`` messages.
* **Zero-copy results.**  Large numpy payloads return through
  shared-memory segments (:mod:`repro.parallel.shm_results`); the
  pipe carries a descriptor, the parent does one memcpy per array.

Supervision (on by default, see
:class:`~repro.parallel.supervisor.SupervisorConfig`) layers four
behaviors on top:

* a killed worker's in-flight unit is **requeued at the back of the
  dispatch order** (a suspect must not hog every kill opportunity), not
  failed — until the unit has killed ``max_worker_kills`` workers, when
  it is quarantined as a :class:`~repro.errors.PoisonUnitError`;
* hung workers (blown ``unit_deadline``, lost heartbeat, RSS trip)
  surface as ``"hang"`` messages and are treated like crashes;
* respawns back off exponentially and draw from a bounded budget;
  exhausting it falls back to **degraded-serial** execution in the
  parent (or raises, with ``degraded_ok=False``);
* an AIMD window throttles how many workers hold batches at once.

Every unit that runs gets a timing breakdown (``dispatch_s`` /
``queue_wait_s`` / ``run_s`` / ``result_transfer_s`` / ``flush_s``) in
``report.timing`` — orchestration overhead must be diagnosable from
the report alone.
"""

from __future__ import annotations

import pickle
import time as time_module
import traceback as traceback_module
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Type

from repro.errors import (
    DeadlineExceededError,
    ParallelError,
    PoisonUnitError,
    WorkerCrashError,
)
from repro.parallel import scheduler, shm_results
from repro.parallel import pool as pool_module
from repro.parallel.cache import corrupt_discarded_total
from repro.parallel.pool import (
    WorkerPool,
    emit_event,
    reconstruct_error,
)
from repro.parallel.supervisor import SupervisorConfig, UnitSupervisor
from repro.robustness.journal import RunJournal
from repro.robustness.retry import Deadline, RetryPolicy, call_with_retry

#: How long one poll waits for worker messages before rechecking state.
_POLL_SECONDS = 0.05

#: A unit whose pickled task exceeds this rides the private registry
#: pool instead — shipping megabytes per dispatch would hand back the
#: round-trip savings the shared pool exists to capture.
_MAX_SHARED_TASK_BYTES = 512 * 1024

#: The five per-unit timing phases surfaced in ``report.timing``.
_TIMING_KEYS = (
    "dispatch_s",
    "queue_wait_s",
    "run_s",
    "result_transfer_s",
    "flush_s",
)


def _run_unit_remote(run, policy, deadline_seconds, retriable, label):
    """Worker-side body of one unit shipped to the shared pool.

    The shared pool's workers were forked before this suite existed, so
    everything arrives pickled: the unit callable, the retry policy,
    the deadline budget.  Retry notices travel back as events exactly
    like the registry-task path.  Only used when the engine verified
    the caller's clock/sleep are the real ones — the rebuilt
    :class:`Deadline` here uses the defaults.
    """
    deadline = Deadline(deadline_seconds)

    def notify(attempt, error, delay):
        emit_event(("retry", attempt, type(error).__name__, str(error), delay))

    return call_with_retry(
        run,
        policy=policy,
        deadline=deadline,
        retriable=retriable,
        on_retry=notify,
        label=label,
    )


def _shared_task_blobs(
    units: Sequence,
    staged: Sequence,
    retry_policy: RetryPolicy,
    deadline_seconds: Optional[float],
    retriable: Tuple[Type[BaseException], ...],
    clock: Callable[[], float],
    sleep: Callable[[float], None],
) -> Optional[List[Optional[bytes]]]:
    """Pre-pickle every runnable unit for the shared pool, or None.

    Returns None — meaning "use a private registry pool" — when any
    unit refuses to pickle (closures over traces/configs), when a blob
    is unreasonably large, or when the caller injected a fake clock or
    sleep (the shared path rebuilds deadlines worker-side with the real
    clock, which would break virtual-time tests).
    """
    if clock is not time_module.monotonic or sleep is not time_module.sleep:
        return None
    blobs: List[Optional[bytes]] = [None] * len(units)
    for index, spec in enumerate(units):
        if staged[index] is not None:
            continue
        try:
            blob = pickle.dumps(
                (
                    _run_unit_remote,
                    (
                        spec.run,
                        retry_policy,
                        deadline_seconds,
                        retriable,
                        spec.name,
                    ),
                ),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception:  # noqa: BLE001 - any pickling failure → private pool
            return None
        if len(blob) > _MAX_SHARED_TASK_BYTES:
            return None
        blobs[index] = blob
    return blobs


def run_units_parallel(
    units: Sequence,
    *,
    jobs: int,
    journal: Optional[RunJournal],
    resume: bool,
    retry_policy: RetryPolicy,
    deadline_seconds: Optional[float],
    fail_fast: bool,
    retriable: Tuple[Type[BaseException], ...],
    on_success: Optional[Callable],
    on_skip: Optional[Callable],
    on_failure: Optional[Callable],
    on_retry: Optional[Callable],
    journal_payload: Optional[Callable],
    clock: Callable[[], float],
    sleep: Callable[[float], None],
    supervision: Optional[SupervisorConfig] = None,
    batch_size: Optional[int] = None,
):
    """Parallel twin of the serial loop in ``robustness.executor``.

    Same report, same journal contents, same callback order — only the
    wall clock differs.  Called via ``run_units(jobs=N)``; not meant to
    be invoked directly.  ``supervision=None`` means default supervision
    (heartbeats, requeue-then-quarantine, AIMD admission); pass
    ``SupervisorConfig(enabled=False)`` for the bare engine.
    ``batch_size=None`` sizes batches from the scheduler's cost model;
    an explicit value forces that many units per dispatch.
    """
    from repro.robustness.executor import (
        STATUS_FAILED,
        STATUS_OK,
        STATUS_SKIPPED,
        SuiteReport,
        UnitOutcome,
    )

    scheduler.validate_units(units)
    topo = scheduler.topological_order(units)
    #: Dispatch preference order.  Starts as the topological order; a
    #: unit whose worker was killed is *demoted* to the back on requeue,
    #: so a suspected-poison unit cannot hog every kill opportunity
    #: (burning the whole respawn budget, and its own quarantine
    #: allowance, while innocent units starve behind it).  Demotion
    #: never violates dependencies: needs always sit earlier than the
    #: unit did, so moving it later keeps them satisfied.
    dispatch_order = list(topo)
    count = len(units)

    #: Per-unit staged outcome, filled as units finish, flushed in
    #: spec order.  Kinds: "skip" | "ok" | "fail".
    staged: List[Optional[Dict[str, Any]]] = [None] * count
    dispatched = [False] * count
    events: List[List[Tuple]] = [[] for _ in range(count)]
    #: Dependencies are satisfied only once the dependency has *flushed*
    #: successfully (outputs published, journal written) — a staged-but-
    #: unflushed success could still fail in its publish step, and a
    #: dependent must not have started by then.
    flushed_ok: Set[str] = set()
    finished_fail: Set[str] = set()

    for index, spec in enumerate(units):
        if resume and journal is not None and journal.completed(spec.name):
            staged[index] = {"kind": "skip"}

    def make_task(spec):
        def task():
            deadline = Deadline(deadline_seconds, clock=clock)

            def notify(attempt, error, delay):
                emit_event(
                    ("retry", attempt, type(error).__name__, str(error), delay)
                )

            return call_with_retry(
                spec.run,
                policy=retry_policy,
                deadline=deadline,
                retriable=retriable,
                on_retry=notify,
                sleep=sleep,
                label=spec.name,
            )

        return task

    config = supervision if supervision is not None else SupervisorConfig()
    runnable = sum(1 for stage in staged if stage is None)
    worker_count = max(1, min(jobs, runnable))
    supervisor: Optional[UnitSupervisor] = (
        UnitSupervisor(config, jobs=worker_count, count=count)
        if config.enabled
        else None
    )
    pool: Optional[WorkerPool] = None
    lease: Optional[pool_module.PoolLease] = None
    blobs: Optional[List[Optional[bytes]]] = None
    if runnable:
        blobs = _shared_task_blobs(
            units, staged, retry_policy, deadline_seconds, retriable, clock, sleep
        )
        if blobs is not None:
            lease = pool_module.try_lease_shared_pool(worker_count)
            if lease is None:
                blobs = None
        if lease is not None:
            pool = lease.pool
            if supervisor is not None:
                heartbeat_timeout = None
                if config.heartbeat_interval is not None:
                    heartbeat_timeout = config.heartbeat_timeout
                    if (
                        heartbeat_timeout is None
                        and pool.heartbeat_interval is not None
                    ):
                        # Default 6x, against the *pool's* baked-in
                        # interval — the config's interval cannot be
                        # re-forked into shared workers.
                        heartbeat_timeout = 6.0 * pool.heartbeat_interval
                pool.configure_supervision(
                    heartbeat_timeout=heartbeat_timeout,
                    unit_deadline=config.unit_deadline,
                    rss_limit_kb=config.rss_limit_kb,
                    kill_grace=config.kill_grace,
                )
        else:
            pool_options: Dict[str, Any] = {}
            if supervisor is not None:
                pool_options = dict(
                    heartbeat_interval=config.heartbeat_interval,
                    heartbeat_timeout=config.heartbeat_timeout,
                    unit_deadline=config.unit_deadline,
                    rss_limit_kb=config.rss_limit_kb,
                    kill_grace=config.kill_grace,
                )
            pool = WorkerPool(
                [make_task(spec) for spec in units],
                worker_count,
                **pool_options,
            )
    if batch_size is not None:
        batch_cap = max(1, int(batch_size))
        cost_budget: Optional[float] = None
    else:
        batch_cap = scheduler.plan_batch_size(runnable, worker_count)
        cost_budget = (
            scheduler.plan_batch_budget(
                [
                    scheduler.unit_cost(spec)
                    for index, spec in enumerate(units)
                    if staged[index] is None
                ],
                worker_count,
            )
            if batch_cap > 1
            else None
        )
    router = scheduler.AffinityRouter()
    report = SuiteReport()
    # Parent-side discards (cache hits checked in the parent, degraded
    # mode); worker-side ones arrive as "cache_corrupt" events.
    corrupt_before = corrupt_discarded_total()

    engine_started = time_module.monotonic()
    submitted_at: List[Optional[float]] = [None] * count
    unit_timing: Dict[str, Dict[str, float]] = {}

    def record_timing(
        index: int,
        *,
        run_s: float,
        queue_wait_s: float = 0.0,
        result_transfer_s: float = 0.0,
    ) -> None:
        sent = submitted_at[index]
        unit_timing[units[index].name] = {
            "dispatch_s": max(0.0, (sent or engine_started) - engine_started),
            "queue_wait_s": queue_wait_s,
            "run_s": run_s,
            "result_transfer_s": result_transfer_s,
            "flush_s": 0.0,
        }

    def stage_failure(
        index: int,
        *,
        error_text: str,
        traceback_text: Optional[str],
        elapsed: float,
        attempts: int,
        exception: BaseException,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        staged[index] = {
            "kind": "fail",
            "error": error_text,
            "traceback": traceback_text,
            "elapsed": elapsed,
            "attempts": attempts,
            "exception": exception,
            "detail": detail,
        }
        finished_fail.add(units[index].name)

    def flush(index: int) -> bool:
        """Publish/journal/report one unit; True if it ended FAILED."""
        spec = units[index]
        stage = staged[index]
        if stage["kind"] == "skip":
            previous = journal.get(spec.name) if journal is not None else None
            report.outcomes.append(
                UnitOutcome(
                    name=spec.name,
                    status=STATUS_SKIPPED,
                    elapsed=previous.elapsed if previous else 0.0,
                )
            )
            if on_skip is not None:
                on_skip(spec)
            flushed_ok.add(spec.name)
            return False
        # Replay the worker's retry notices now, so announcements land
        # in spec order exactly as a serial run would print them.
        for event in events[index]:
            _tag, attempt, type_name, message, delay = event
            if on_retry is not None:
                on_retry(
                    spec, attempt, reconstruct_error(type_name, message), delay
                )
        if stage["kind"] == "ok":
            result = stage["result"]
            attempts = stage["attempts"]
            elapsed = stage["elapsed"]
            payload = None
            try:
                if on_success is not None:
                    on_success(spec, result, elapsed)
                if journal is not None and journal_payload is not None:
                    payload = journal_payload(spec, result)
            except (KeyboardInterrupt, SystemExit) as interrupt:
                if journal is not None:
                    journal.record_failure(
                        spec.name,
                        error=f"interrupted: {interrupt!r}",
                        elapsed=elapsed,
                        attempts=attempts,
                    )
                raise
            except BaseException as error:  # noqa: BLE001 - isolation boundary
                trace_text = "".join(
                    traceback_module.format_exception(
                        type(error), error, error.__traceback__
                    )
                )
                error_text = f"{type(error).__name__}: {error}"
                finished_fail.add(spec.name)
                if journal is not None:
                    journal.record_failure(
                        spec.name,
                        error=error_text,
                        traceback=trace_text,
                        elapsed=elapsed,
                        attempts=attempts,
                    )
                report.outcomes.append(
                    UnitOutcome(
                        name=spec.name,
                        status=STATUS_FAILED,
                        error=error_text,
                        traceback=trace_text,
                        elapsed=elapsed,
                        attempts=attempts,
                    )
                )
                if on_failure is not None:
                    on_failure(spec, error)
                return True
            if journal is not None:
                journal.record_success(
                    spec.name,
                    elapsed=elapsed,
                    attempts=attempts,
                    payload=payload,
                )
            report.outcomes.append(
                UnitOutcome(
                    name=spec.name,
                    status=STATUS_OK,
                    result=result,
                    elapsed=elapsed,
                    attempts=attempts,
                )
            )
            flushed_ok.add(spec.name)
            return False
        # stage["kind"] == "fail"
        if journal is not None:
            journal.record_failure(
                spec.name,
                error=stage["error"],
                traceback=stage["traceback"],
                elapsed=stage["elapsed"],
                attempts=stage["attempts"],
                detail=stage.get("detail"),
            )
        report.outcomes.append(
            UnitOutcome(
                name=spec.name,
                status=STATUS_FAILED,
                error=stage["error"],
                traceback=stage["traceback"],
                elapsed=stage["elapsed"],
                attempts=stage["attempts"],
            )
        )
        if on_failure is not None:
            on_failure(spec, stage["exception"])
        return True

    def flush_timed(index: int) -> bool:
        flush_started = time_module.monotonic()
        try:
            return flush(index)
        finally:
            timing = unit_timing.get(units[index].name)
            if timing is not None:
                timing["flush_s"] = time_module.monotonic() - flush_started

    def handle_kill(index: int, worker_id: int, reason: str, error_text: str):
        """A worker kill took unit ``index`` with it: requeue or poison.

        ``reason`` is ``"crash"`` or a hang reason; ``error_text`` is the
        human-readable account of what the killed worker was doing, and
        is embedded in the quarantine message so the journal still names
        the underlying failure.
        """
        kills = supervisor.record_kill(index, reason=reason, error=error_text)
        if kills < config.max_worker_kills:
            supervisor.requeues += 1
            dispatched[index] = False
            events[index] = []  # the retry notices died with the attempt
            # Send the suspect to the back of the dispatch order: other
            # units get their turn (and their own workers) first.
            dispatch_order.remove(index)
            dispatch_order.append(index)
            return
        name = units[index].name
        supervisor.poisoned_units.append(name)
        error = PoisonUnitError(
            f"unit {name!r} quarantined after killing {kills} workers; "
            f"last: {error_text}"
        )
        stage_failure(
            index,
            error_text=f"{type(error).__name__}: {error}",
            traceback_text=None,
            elapsed=0.0,
            attempts=kills,
            exception=error,
            detail=supervisor.poison_detail(index),
        )

    def run_inline(index: int) -> None:
        """Degraded mode: run one unit in the parent, staging its outcome."""
        spec = units[index]
        deadline = Deadline(deadline_seconds, clock=clock)
        attempts_seen = {"count": 0}

        def notify(attempt, error, delay):
            attempts_seen["count"] = attempt
            # Staged like worker retry events so flush announces them
            # identically.
            events[index].append(
                ("retry", attempt, type(error).__name__, str(error), delay)
            )

        started = clock()
        try:
            result, attempts = call_with_retry(
                spec.run,
                policy=retry_policy,
                deadline=deadline,
                retriable=retriable,
                on_retry=notify,
                sleep=sleep,
                label=spec.name,
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as error:  # noqa: BLE001 - isolation boundary
            attempts = attempts_seen["count"] + (
                0 if isinstance(error, DeadlineExceededError) else 1
            )
            elapsed = clock() - started
            stage_failure(
                index,
                error_text=f"{type(error).__name__}: {error}",
                traceback_text="".join(
                    traceback_module.format_exception(
                        type(error), error, error.__traceback__
                    )
                ),
                elapsed=elapsed,
                attempts=attempts,
                exception=error,
            )
            record_timing(index, run_s=elapsed)
            return
        elapsed = clock() - started
        staged[index] = {
            "kind": "ok",
            "result": result,
            "attempts": attempts,
            "elapsed": elapsed,
        }
        record_timing(index, run_s=elapsed)

    flushed = 0
    stop = False
    respawn_budget = count + jobs
    clean = False

    def run_degraded_serial() -> None:
        """The pool is gone: finish the suite serially in the parent.

        Spec order is validated dependency-consistent and flush is a
        contiguous prefix, so running and flushing unit ``flushed`` in
        lockstep preserves every ordering contract.
        """
        nonlocal flushed, stop
        supervisor.degraded = True
        while flushed < count and not stop:
            if staged[flushed] is None:
                failed_needs = [
                    need
                    for need in scheduler.unit_needs(units[flushed])
                    if need in finished_fail
                ]
                if failed_needs:
                    error = ParallelError(
                        f"dependency {failed_needs[0]!r} failed"
                    )
                    stage_failure(
                        flushed,
                        error_text=f"{type(error).__name__}: {error}",
                        traceback_text=None,
                        elapsed=0.0,
                        attempts=0,
                        exception=error,
                    )
                else:
                    run_inline(flushed)
            failed = flush_timed(flushed)
            flushed += 1
            if failed and fail_fast:
                stop = True
    try:
        while flushed < count:
            # Fail units whose dependencies failed (topo order, so one
            # pass cascades the whole chain).
            for index in topo:
                if staged[index] is not None or dispatched[index]:
                    continue
                failed_needs = [
                    need
                    for need in scheduler.unit_needs(units[index])
                    if need in finished_fail
                ]
                if failed_needs:
                    error = ParallelError(
                        f"dependency {failed_needs[0]!r} failed"
                    )
                    stage_failure(
                        index,
                        error_text=f"{type(error).__name__}: {error}",
                        traceback_text=None,
                        elapsed=0.0,
                        attempts=0,
                        exception=error,
                    )
            while flushed < count and staged[flushed] is not None:
                failed = flush_timed(flushed)
                flushed += 1
                if failed and fail_fast:
                    stop = True
                    break
            if stop or flushed >= count:
                break
            if pool is None:
                raise ParallelError(
                    "internal: unfinished units but no worker pool"
                )
            busy = pool.busy_count()
            for worker_id in pool.idle_workers():
                # The AIMD window admits *workers holding batches*, not
                # individual units — at batch size 1 the two are the
                # same thing, which is what the window's jobs-sized cap
                # was calibrated against.
                if supervisor is not None and busy >= supervisor.window():
                    break
                batch: List[int] = []
                batch_cost = 0.0
                for index in dispatch_order:
                    if len(batch) >= batch_cap:
                        break
                    if (
                        cost_budget is not None
                        and batch
                        and batch_cost >= cost_budget
                    ):
                        break
                    if staged[index] is not None or dispatched[index]:
                        continue
                    spec = units[index]
                    if any(
                        need not in flushed_ok
                        for need in scheduler.unit_needs(spec)
                    ):
                        continue
                    if router.pick_worker(spec, (worker_id,)) != worker_id:
                        continue
                    batch.append(index)
                    dispatched[index] = True
                    batch_cost += scheduler.unit_cost(spec)
                if not batch:
                    continue
                now = time_module.monotonic()
                for index in batch:
                    submitted_at[index] = now
                pool.submit_batch(
                    worker_id,
                    [
                        (index, None if blobs is None else blobs[index])
                        for index in batch
                    ],
                )
                busy += 1
            for message in pool.poll(_POLL_SECONDS):
                index = message.task_id
                if message.kind == "event":
                    if message.payload[0] == "cache_corrupt":
                        report.cache_corrupt_discarded += 1
                    elif index is not None and message.payload[0] == "retry":
                        events[index].append(message.payload)
                elif message.kind == "requeue":
                    # A batch sibling of a dead worker: it never ran, so
                    # it is not charged a kill — just dispatched again.
                    if index is not None and staged[index] is None:
                        dispatched[index] = False
                        events[index] = []
                        submitted_at[index] = None
                        if supervisor is not None:
                            supervisor.sibling_requeues += 1
                elif message.kind == "done" and staged[index] is None:
                    blob, elapsed, meta = message.payload
                    received = time_module.monotonic()
                    try:
                        result, attempts = shm_results.decode_result(
                            blob, meta.get("shm")
                        )
                    except ParallelError as error:
                        stage_failure(
                            index,
                            error_text=f"{type(error).__name__}: {error}",
                            traceback_text=None,
                            elapsed=elapsed,
                            attempts=len(events[index]) + 1,
                            exception=error,
                        )
                        continue
                    decode_s = time_module.monotonic() - received
                    sent = submitted_at[index]
                    started_at = meta.get("started_at")
                    sent_at = meta.get("sent_at")
                    record_timing(
                        index,
                        run_s=meta.get("run_s", elapsed),
                        queue_wait_s=(
                            max(0.0, started_at - sent)
                            if sent is not None and started_at is not None
                            else 0.0
                        ),
                        result_transfer_s=(
                            (
                                max(0.0, received - sent_at)
                                if sent_at is not None
                                else 0.0
                            )
                            + meta.get("encode_s", 0.0)
                            + decode_s
                        ),
                    )
                    staged[index] = {
                        "kind": "ok",
                        "result": result,
                        "attempts": attempts,
                        "elapsed": elapsed,
                    }
                    if supervisor is not None:
                        supervisor.on_healthy()
                elif message.kind == "error" and staged[index] is None:
                    type_name, text, remote_tb, elapsed = message.payload
                    retries = len(events[index])
                    attempts = (
                        retries
                        if type_name == "DeadlineExceededError"
                        else retries + 1
                    )
                    stage_failure(
                        index,
                        error_text=f"{type_name}: {text}",
                        traceback_text=remote_tb,
                        elapsed=elapsed,
                        attempts=attempts,
                        exception=reconstruct_error(type_name, text, remote_tb),
                    )
                    record_timing(index, run_s=elapsed)
                    if supervisor is not None:
                        # An ordinary reported error is a *healthy*
                        # worker doing its job; only kills shrink the
                        # admission window.
                        supervisor.on_healthy()
                elif message.kind == "crash":
                    router.forget_worker(message.worker_id)
                    if index is None or staged[index] is not None:
                        continue
                    error_text = (
                        f"WorkerCrashError: worker {message.worker_id} "
                        f"exited with code {message.payload} while running "
                        f"{units[index].name!r}"
                    )
                    if supervisor is not None:
                        handle_kill(
                            index, message.worker_id, "crash", error_text
                        )
                    else:
                        error = WorkerCrashError(
                            f"worker {message.worker_id} exited with code "
                            f"{message.payload} while running "
                            f"{units[index].name!r}"
                        )
                        stage_failure(
                            index,
                            error_text=f"{type(error).__name__}: {error}",
                            traceback_text=None,
                            elapsed=0.0,
                            attempts=len(events[index]) + 1,
                            exception=error,
                        )
                elif message.kind == "hang":
                    # Only supervised pools synthesize hangs; the worker
                    # is already dead (killed by the pool).
                    router.forget_worker(message.worker_id)
                    if index is not None and staged[index] is None:
                        reason = message.payload["reason"]
                        hang_elapsed = message.payload["elapsed"]
                        handle_kill(
                            index,
                            message.worker_id,
                            reason,
                            f"WorkerHangError: worker {message.worker_id} "
                            f"hung ({reason}) after {hang_elapsed:.1f}s "
                            f"running {units[index].name!r}",
                        )
            if supervisor is None:
                if pool.alive_count() == 0:
                    outstanding = any(
                        staged[index] is None and not dispatched[index]
                        for index in range(count)
                    )
                    if outstanding:
                        if respawn_budget <= 0:
                            raise ParallelError(
                                "workers keep dying before accepting work; "
                                "giving up on the remaining units"
                            )
                        for worker_id in range(pool.jobs):
                            respawn_budget -= 1
                            pool.respawn(worker_id)
                continue
            outstanding = any(
                staged[index] is None and not dispatched[index]
                for index in range(count)
            )
            if not outstanding:
                continue
            dead = pool.dead_workers()
            if dead:
                delay = supervisor.backoff_delay()
                if delay > 0.0:
                    sleep(delay)
                for worker_id in dead:
                    if not supervisor.consume_respawn():
                        break
                    pool.respawn(worker_id)
            if pool.alive_count() == 0:
                # The respawn budget is gone and no worker survives:
                # the pool cannot be kept healthy.
                if not config.degraded_ok:
                    raise ParallelError(
                        "workers keep dying and the respawn budget is "
                        f"exhausted after {supervisor.respawns} respawns; "
                        "remaining units not run "
                        "(degraded_ok would fall back to serial)"
                    )
                if lease is None:
                    pool.terminate()
                else:
                    # A borrowed pool is not ours to tear down; the
                    # lease quiesces and revives it on release.
                    lease.dirty = True
                run_degraded_serial()
        clean = True
    finally:
        if lease is not None:
            lease.dirty = lease.dirty or not clean or stop
            lease.release()
        elif pool is not None:
            if clean and not stop:
                pool.close()
            else:
                pool.terminate()
    if supervisor is not None:
        report.supervision = supervisor.stats()
    if unit_timing:
        report.timing = {
            "units": unit_timing,
            "totals": {
                key: sum(timing[key] for timing in unit_timing.values())
                for key in _TIMING_KEYS
            },
        }
    report.cache_corrupt_discarded += (
        corrupt_discarded_total() - corrupt_before
    )
    return report


__all__ = ["run_units_parallel"]
