"""Fork-based worker pool with an explicit message protocol.

The pool exists to run *experiment units* — closures over traces,
configs and policies that are expensive or impossible to pickle — so it
forks workers **after** the task registry is built and ships only small
integers (task ids) to workers.  Dynamic tasks (a module-level function
plus picklable arguments, e.g. a shared-memory trace handle) can also be
submitted after the fork, which is what the sweep family pool uses.

Design decisions, each load-bearing:

* **One outstanding task per worker.**  The parent dispatches a task to
  a worker only when that worker is idle, so a worker that dies takes
  down exactly the unit it was running — nothing is ever stranded in a
  dead worker's pipe.  Scheduling (readiness, affinity) lives in the
  parent, which is what makes deterministic journal ordering possible.
* **Results are pickled inside the worker's try block.**  A
  ``multiprocessing.Queue`` serializes in a background feeder thread; an
  unpicklable result would otherwise be dropped silently and look like a
  hang.  Pickling eagerly turns that into an ordinary reported error.
* **Crashes are messages, not exceptions.**  ``poll`` watches worker
  liveness and synthesizes a ``"crash"`` message for the in-flight task
  of a dead worker, so callers handle a segfault with the same code path
  as a Python exception.
* **Hangs are messages too.**  A supervised pool (one built with
  ``heartbeat_interval`` and/or ``unit_deadline``) runs a daemon
  heartbeat thread in every worker and tracks dispatch times in the
  parent; ``poll`` synthesizes a ``"hang"`` message — after killing the
  worker, SIGTERM then SIGKILL past the grace period — when a worker
  blows its per-unit deadline, stops heartbeating (a GIL-holding C
  hang, a SIGSTOP, a dead queue feeder), or trips the optional RSS
  watchdog.  An unsupervised pool pays none of this: no thread, no
  clock reads.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import queue as queue_module
import threading
import time
import traceback as traceback_module
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ParallelError, WorkerCrashError

#: Worker-side globals, set once per forked process.
_CURRENT_WORKER: Optional[int] = None
_CURRENT_TASK: Optional[int] = None
_RESULT_QUEUE: Any = None


class RemoteTaskError(RuntimeError):
    """Base of dynamically rebuilt worker exceptions.

    A worker reports failures as ``(type_name, message, traceback)``
    strings; :func:`reconstruct_error` rebuilds an exception whose
    *class name* matches the original, so parent-side formatting
    (``f"{type(error).__name__}: {error}"``) is identical to a serial
    run.  The worker's formatted traceback rides along as
    ``remote_traceback``.
    """


def reconstruct_error(
    type_name: str, message: str, traceback_text: Optional[str] = None
) -> BaseException:
    """Rebuild a worker-reported exception for parent-side handling."""
    error = type(type_name, (RemoteTaskError,), {})(message)
    error.remote_traceback = traceback_text
    return error


def in_worker() -> bool:
    """True inside a pool worker process (used to forbid nesting)."""
    return _CURRENT_WORKER is not None


def emit_event(payload: Any) -> None:
    """Send an out-of-band event (e.g. a retry notice) to the parent.

    No-op outside a worker, so code instrumented with events runs
    unchanged in serial mode.
    """
    if _RESULT_QUEUE is not None:
        _RESULT_QUEUE.put(("event", _CURRENT_WORKER, _CURRENT_TASK, payload))


def fork_available() -> bool:
    """Whether this platform supports the fork start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` request to an actual worker count.

    ``None`` or ``1`` mean serial; ``0`` means one worker per CPU;
    anything else is taken literally.  Inside a pool worker, or on a
    platform without fork, the answer is always 1 — parallelism never
    nests and never silently switches to spawn semantics (which could
    not see the parent's task closures).
    """
    if jobs is None:
        return 1
    if jobs < 0:
        raise ParallelError(f"jobs must be >= 0, got {jobs}")
    if in_worker() or not fork_available():
        return 1
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


#: A pool message: kind is "start" | "done" | "error" | "event" |
#: "bye" | "crash" | "hang".  ``payload`` is kind-specific (see
#: ``_worker_main``; for "hang" it is a dict with ``reason`` —
#: ``"deadline"``/``"heartbeat"``/``"rss"`` — and ``elapsed`` seconds).
#: "heartbeat" messages exist on the wire but are consumed inside
#: ``poll`` and never returned to callers.
@dataclass(frozen=True)
class Message:
    kind: str
    worker_id: int
    task_id: Optional[int]
    payload: Any = None


def _heartbeat_loop(worker_id, result_queue, interval) -> None:
    """Worker-side daemon thread: prove liveness every ``interval`` seconds.

    The thread keeps beating through a pure-Python busy loop in the main
    thread (the GIL is released every switch interval), so a lost
    heartbeat means something harder — a C extension holding the GIL, a
    stopped process, a broken queue feeder — which is exactly what the
    parent's hang detector should treat as dead.
    """
    while True:
        time.sleep(interval)
        try:
            result_queue.put(
                ("heartbeat", worker_id, _CURRENT_TASK, time.monotonic())
            )
        except Exception:  # noqa: BLE001 - interpreter teardown
            return


def _worker_main(
    worker_id, tasks, task_queue, result_queue, heartbeat_interval=None
) -> None:
    """Worker loop: take (task_id, spec) off the queue, report outcome.

    ``spec`` is either an int (index into the fork-inherited ``tasks``
    registry) or pickled ``(function, args)`` bytes for dynamic tasks.
    """
    global _CURRENT_WORKER, _CURRENT_TASK, _RESULT_QUEUE
    _CURRENT_WORKER = worker_id
    _RESULT_QUEUE = result_queue
    if heartbeat_interval is not None:
        threading.Thread(
            target=_heartbeat_loop,
            args=(worker_id, result_queue, heartbeat_interval),
            daemon=True,
        ).start()
    while True:
        item = task_queue.get()
        if item is None:
            result_queue.put(("bye", worker_id, None, None))
            return
        task_id, spec = item
        _CURRENT_TASK = task_id
        result_queue.put(("start", worker_id, task_id, None))
        started = time.monotonic()
        try:
            if isinstance(spec, bytes):
                function, arguments = pickle.loads(spec)
                result = function(*arguments)
            else:
                result = tasks[spec]()
            blob = pickle.dumps(result)
        except BaseException as error:  # noqa: BLE001 - reported, not handled
            detail = (
                type(error).__name__,
                str(error),
                "".join(
                    traceback_module.format_exception(
                        type(error), error, error.__traceback__
                    )
                ),
                time.monotonic() - started,
            )
            result_queue.put(("error", worker_id, task_id, detail))
            if isinstance(error, (KeyboardInterrupt, SystemExit)):
                return
        else:
            result_queue.put(
                ("done", worker_id, task_id, (blob, time.monotonic() - started))
            )
        finally:
            _CURRENT_TASK = None


@dataclass
class _WorkerHandle:
    worker_id: int
    process: Any
    task_queue: Any
    in_flight: Optional[int] = None
    dispatched: int = 0
    sentinel_sent: bool = False
    said_bye: bool = False
    reported_dead: bool = False
    #: Supervision bookkeeping: when the in-flight task was dispatched
    #: and when the worker last proved liveness (parent clock).
    dispatched_at: Optional[float] = None
    last_beat: Optional[float] = None

    @property
    def usable(self) -> bool:
        return (
            not self.sentinel_sent
            and not self.reported_dead
            and self.process.is_alive()
        )


def _process_rss_kb(pid: int) -> Optional[int]:
    """Resident set size of ``pid`` in KB via /proc, or None off-Linux."""
    try:
        with open(f"/proc/{pid}/statm", "rb") as stream:
            pages = int(stream.read().split()[1])
        return pages * (os.sysconf("SC_PAGE_SIZE") // 1024)
    except (OSError, ValueError, IndexError):
        return None


class WorkerPool:
    """A fixed-size pool of forked workers; see the module docstring.

    The keyword-only supervision knobs are all off by default (an
    unsupervised pool behaves exactly as before):

    * ``heartbeat_interval`` — workers run a daemon thread proving
      liveness this often; ``poll`` declares a worker hung when no beat
      arrives for ``heartbeat_timeout`` (default 6x the interval).
    * ``unit_deadline`` — hard per-task wall clock; a worker still
      running one task past it is killed and the task surfaces as a
      ``"hang"`` message.
    * ``rss_limit_kb`` — RSS watchdog; a worker whose resident set
      exceeds this while running a task is killed the same way.
    * ``kill_grace`` — seconds between SIGTERM and SIGKILL in
      :meth:`kill`.
    """

    def __init__(
        self,
        tasks: Optional[Sequence[Callable[[], Any]]] = None,
        jobs: int = 1,
        *,
        heartbeat_interval: Optional[float] = None,
        heartbeat_timeout: Optional[float] = None,
        unit_deadline: Optional[float] = None,
        rss_limit_kb: Optional[int] = None,
        kill_grace: float = 1.0,
    ) -> None:
        if in_worker():
            raise ParallelError("worker pools must not be created in a worker")
        if not fork_available():
            raise ParallelError("worker pools need the fork start method")
        if jobs < 1:
            raise ParallelError(f"a pool needs at least one worker, got {jobs}")
        for name, value in (
            ("heartbeat_interval", heartbeat_interval),
            ("heartbeat_timeout", heartbeat_timeout),
            ("unit_deadline", unit_deadline),
            ("kill_grace", kill_grace),
        ):
            if value is not None and value <= 0:
                raise ParallelError(f"{name} must be positive, got {value}")
        self.jobs = jobs
        self._tasks = list(tasks) if tasks is not None else []
        self._heartbeat_interval = heartbeat_interval
        if heartbeat_timeout is None and heartbeat_interval is not None:
            heartbeat_timeout = 6.0 * heartbeat_interval
        self._heartbeat_timeout = heartbeat_timeout
        self._unit_deadline = unit_deadline
        self._rss_limit_kb = rss_limit_kb
        self._kill_grace = kill_grace
        self._last_rss_check = 0.0
        self._context = multiprocessing.get_context("fork")
        self._result_queue = self._context.Queue()
        self._workers: Dict[int, _WorkerHandle] = {}
        self._closed = False
        for worker_id in range(jobs):
            self._spawn(worker_id)

    def _spawn(self, worker_id: int) -> None:
        task_queue = self._context.SimpleQueue()
        process = self._context.Process(
            target=_worker_main,
            args=(
                worker_id,
                self._tasks,
                task_queue,
                self._result_queue,
                self._heartbeat_interval,
            ),
            daemon=True,
        )
        process.start()
        self._workers[worker_id] = _WorkerHandle(worker_id, process, task_queue)

    def respawn(self, worker_id: int) -> None:
        """Replace a dead worker so remaining work can still be absorbed."""
        handle = self._workers[worker_id]
        if handle.process.is_alive():
            raise ParallelError(f"worker {worker_id} is alive; not respawning")
        self._spawn(worker_id)

    def revive(self) -> int:
        """Respawn every dead (non-retired) worker; returns the count.

        This is how a persistent pool recovers full capacity after a
        crash: :func:`shared_task_pool` calls it on acquisition so one
        poisoned sweep does not leave every later sweep running on the
        surviving workers only.
        """
        revived = 0
        for worker_id, handle in list(self._workers.items()):
            if handle.sentinel_sent or handle.process.is_alive():
                continue
            handle.process.join(0.0)  # reap before replacing
            self._spawn(worker_id)
            revived += 1
        return revived

    def kill(self, worker_id: int) -> Optional[int]:
        """Forcibly stop one worker: SIGTERM, then SIGKILL after grace.

        Returns the task id that was in flight (now orphaned), or None.
        The handle is marked dead so ``poll`` does not also synthesize a
        ``"crash"`` for it; the caller decides what the orphaned task
        means (requeue, fail, quarantine).
        """
        handle = self._workers[worker_id]
        task_id = handle.in_flight
        handle.in_flight = None
        handle.dispatched_at = None
        handle.reported_dead = True
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(self._kill_grace)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(1.0)
        else:
            handle.process.join(0.0)
        return task_id

    def submit(
        self,
        worker_id: int,
        task_id: int,
        call: Optional[Tuple[Callable[..., Any], Tuple[Any, ...]]] = None,
    ) -> None:
        """Dispatch one task to an idle worker.

        ``call=None`` sends registry task ``task_id``; otherwise
        ``call=(function, args)`` is pickled and sent as a dynamic task.
        """
        if self._closed:
            raise ParallelError("pool is closed")
        handle = self._workers[worker_id]
        if handle.in_flight is not None:
            raise ParallelError(
                f"worker {worker_id} already has task {handle.in_flight}"
            )
        if not handle.usable:
            raise WorkerCrashError(f"worker {worker_id} is not running")
        spec: Any = task_id if call is None else pickle.dumps(call)
        handle.in_flight = task_id
        handle.dispatched += 1
        now = time.monotonic()
        handle.dispatched_at = now
        handle.last_beat = now
        handle.task_queue.put((task_id, spec))

    def idle_workers(self) -> List[int]:
        """Usable workers with no task in flight, least-loaded first."""
        idle = [
            handle
            for handle in self._workers.values()
            if handle.usable and handle.in_flight is None
        ]
        idle.sort(key=lambda handle: (handle.dispatched, handle.worker_id))
        return [handle.worker_id for handle in idle]

    def alive_count(self) -> int:
        return sum(1 for handle in self._workers.values() if handle.usable)

    def dead_workers(self) -> List[int]:
        """Worker ids that died (or were killed) and were not retired."""
        return [
            handle.worker_id
            for handle in self._workers.values()
            if not handle.sentinel_sent and not handle.process.is_alive()
        ]

    def poll(self, timeout: float = 0.1) -> List[Message]:
        """Drain pending messages, then synthesize crashes and hangs.

        Heartbeat messages are consumed here (they refresh the sender's
        liveness clock) and never returned.  A worker with a task in
        flight that blows the per-unit deadline, goes silent past the
        heartbeat timeout, or trips the RSS watchdog is killed via
        :meth:`kill` and reported as a ``"hang"`` message whose payload
        carries the reason and elapsed seconds.
        """
        raw: List[Tuple[str, int, Optional[int], Any]] = []
        try:
            raw.append(self._result_queue.get(timeout=timeout))
        except queue_module.Empty:
            pass
        while True:
            try:
                raw.append(self._result_queue.get_nowait())
            except queue_module.Empty:
                break
        messages = []
        for item in raw:
            message = Message(*item)
            handle = self._workers.get(message.worker_id)
            if message.kind == "heartbeat":
                # Parent clock, not the worker's enqueue time: the queue
                # feeder may deliver late, but delivery proves liveness.
                if handle is not None:
                    handle.last_beat = time.monotonic()
                continue
            messages.append(message)
            if handle is None:
                continue
            if message.kind in ("done", "error") and (
                handle.in_flight == message.task_id
            ):
                handle.in_flight = None
                handle.dispatched_at = None
            elif message.kind == "start":
                handle.last_beat = time.monotonic()
            elif message.kind == "bye":
                handle.said_bye = True
        for handle in self._workers.values():
            if (
                not handle.said_bye
                and not handle.reported_dead
                and not handle.sentinel_sent
                and not handle.process.is_alive()
            ):
                handle.reported_dead = True
                task_id = handle.in_flight
                handle.in_flight = None
                handle.dispatched_at = None
                messages.append(
                    Message(
                        "crash",
                        handle.worker_id,
                        task_id,
                        handle.process.exitcode,
                    )
                )
        messages.extend(self._detect_hangs())
        return messages

    def _detect_hangs(self) -> List[Message]:
        """Kill and report workers that look hung (supervised pools only)."""
        if (
            self._unit_deadline is None
            and self._heartbeat_timeout is None
            and self._rss_limit_kb is None
        ):
            return []
        now = time.monotonic()
        check_rss = False
        if self._rss_limit_kb is not None and (
            now - self._last_rss_check >= 0.5
        ):
            self._last_rss_check = now
            check_rss = True
        hangs: List[Message] = []
        for handle in self._workers.values():
            if not handle.usable or handle.in_flight is None:
                continue
            elapsed = now - (handle.dispatched_at or now)
            reason = None
            if (
                self._unit_deadline is not None
                and elapsed > self._unit_deadline
            ):
                reason = "deadline"
            elif (
                self._heartbeat_timeout is not None
                and handle.last_beat is not None
                and now - handle.last_beat > self._heartbeat_timeout
            ):
                reason = "heartbeat"
            elif check_rss:
                rss = _process_rss_kb(handle.process.pid)
                if rss is not None and rss > self._rss_limit_kb:
                    reason = "rss"
            if reason is None:
                continue
            task_id = self.kill(handle.worker_id)
            hangs.append(
                Message(
                    "hang",
                    handle.worker_id,
                    task_id,
                    {"reason": reason, "elapsed": elapsed},
                )
            )
        return hangs

    def close(self, timeout: float = 10.0) -> None:
        """Send sentinels and join workers (idempotent)."""
        if self._closed:
            return
        for handle in self._workers.values():
            if not handle.sentinel_sent and handle.process.is_alive():
                handle.sentinel_sent = True
                try:
                    handle.task_queue.put(None)
                except (OSError, ValueError):
                    pass
        deadline = time.monotonic() + timeout
        for handle in self._workers.values():
            handle.process.join(max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(1.0)
            if handle.process.is_alive():
                # A worker ignoring/blocked from SIGTERM (a C-level hang,
                # a masked handler) must not hold close() hostage.
                handle.process.kill()
                handle.process.join(1.0)
        self._closed = True

    def terminate(self) -> None:
        """Kill all workers immediately (used on interrupt/fatal error)."""
        if self._closed:
            return
        for handle in self._workers.values():
            if handle.process.is_alive():
                handle.process.terminate()
        for handle in self._workers.values():
            handle.process.join(1.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(1.0)
        self._closed = True

    def run_calls(
        self,
        calls: Optional[
            Sequence[Tuple[Callable[..., Any], Tuple[Any, ...]]]
        ] = None,
        count: Optional[int] = None,
    ) -> List[Any]:
        """Run tasks to completion, preserving submission order.

        With ``calls``, each ``(function, args)`` pair is pickled and
        shipped; with ``count`` alone, registry tasks ``0..count-1`` run
        instead.  Raises the reconstructed error of the lowest-indexed
        failing task (after letting in-flight work finish), or
        :class:`WorkerCrashError` if a worker died running one.
        """
        if calls is None:
            if count is None:
                raise ParallelError("run_calls needs calls or a task count")
            total = count
        else:
            total = len(calls)
        results: List[Any] = [None] * total
        finished = [False] * total
        failures: Dict[int, BaseException] = {}
        next_task = 0
        while not all(finished):
            if not failures:
                for worker_id in self.idle_workers():
                    if next_task >= total:
                        break
                    self.submit(
                        worker_id,
                        next_task,
                        call=None if calls is None else calls[next_task],
                    )
                    next_task += 1
            else:
                # Stop feeding new work; finish what's in flight so the
                # lowest-indexed error is deterministic.
                for index in range(next_task, total):
                    if not finished[index]:
                        finished[index] = True
                        failures.setdefault(
                            index,
                            ParallelError("cancelled after an earlier failure"),
                        )
            for message in self.poll(0.05):
                if message.task_id is None or message.kind in ("start", "bye"):
                    continue
                index = message.task_id
                if finished[index]:
                    continue
                if message.kind == "done":
                    blob, _elapsed = message.payload
                    results[index] = pickle.loads(blob)
                    finished[index] = True
                elif message.kind == "error":
                    type_name, text, remote_tb, _elapsed = message.payload
                    failures[index] = reconstruct_error(
                        type_name, text, remote_tb
                    )
                    finished[index] = True
                elif message.kind == "crash":
                    failures[index] = WorkerCrashError(
                        f"worker {message.worker_id} exited with code "
                        f"{message.payload} while running task {index}"
                    )
                    finished[index] = True
            if self.alive_count() == 0 and not all(finished):
                for worker_id, handle in self._workers.items():
                    if not handle.usable:
                        self.respawn(worker_id)
        if failures:
            raise failures[min(failures)]
        return results


def parallel_map(
    thunks: Sequence[Callable[[], Any]], *, jobs: Optional[int] = None
) -> List[Any]:
    """Run zero-argument callables, preserving order; serial when jobs<=1.

    The callables may close over arbitrary unpicklable state — they are
    inherited by the forked workers, never pickled.  On failure the
    lowest-indexed error is raised (reconstructed for remote failures).
    """
    thunks = list(thunks)
    count = min(resolve_jobs(jobs), len(thunks))
    if count <= 1:
        return [thunk() for thunk in thunks]
    pool = WorkerPool(thunks, count)
    try:
        # Registry tasks: workers inherit the closures, only indices ship.
        return pool.run_calls(count=len(thunks))
    finally:
        pool.terminate()


#: Process-wide pool reused across calls that ship dynamic tasks (the
#: sweep family pool).  Workers forked at first use know nothing about
#: traces created later — that is exactly why those tasks travel as
#: shared-memory handles rather than pickled reference streams.
_SHARED_POOL: Optional[WorkerPool] = None
_SHARED_POOL_ATEXIT = False


def shared_task_pool(jobs: int) -> WorkerPool:
    """Return the persistent dynamic-task pool, (re)creating on demand.

    A pool that lost workers to a crash in an earlier sweep is revived
    to full strength here — acquisition, not crash time, is when a
    persistent pool must be healthy.
    """
    global _SHARED_POOL, _SHARED_POOL_ATEXIT
    if jobs < 1:
        raise ParallelError(f"a pool needs at least one worker, got {jobs}")
    pool = _SHARED_POOL
    if pool is not None and (pool._closed or pool.jobs != jobs):
        pool.close(timeout=2.0)
        pool = None
    if pool is None:
        pool = WorkerPool(None, jobs)
        _SHARED_POOL = pool
        if not _SHARED_POOL_ATEXIT:
            _SHARED_POOL_ATEXIT = True
            atexit.register(shutdown_shared_pool)
    else:
        pool.revive()
    return pool


def shutdown_shared_pool() -> None:
    """Close the persistent pool (idempotent; registered atexit)."""
    global _SHARED_POOL
    if _SHARED_POOL is not None:
        _SHARED_POOL.close(timeout=2.0)
        _SHARED_POOL = None
