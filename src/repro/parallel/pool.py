"""Fork-based worker pool with an explicit message protocol.

The pool exists to run *experiment units* — closures over traces,
configs and policies that are expensive or impossible to pickle — so it
forks workers **after** the task registry is built and ships only small
integers (task ids) to workers.  Dynamic tasks (a module-level function
plus picklable arguments, e.g. a shared-memory trace handle) can also be
submitted after the fork, which is what the sweep family pool uses.

Design decisions, each load-bearing:

* **Batched dispatch, per-unit accounting.**  The parent ships a *batch*
  (a list of tasks) in one queue round-trip, but the worker reports
  ``start``/``done``/``error`` per task, so journal records, cache
  entries and supervision stay per-unit.  A worker that dies mid-batch
  takes down exactly the task it was running — the untouched siblings
  come back as ``"requeue"`` messages, not failures.  Scheduling
  (readiness, affinity, batch packing) lives in the parent, which is
  what makes deterministic journal ordering possible.
* **One result pipe per worker, written synchronously.**  A pool-wide
  ``multiprocessing.Queue`` shares one feeder lock and one byte stream
  between every worker, so a worker SIGKILLed mid-write can wedge the
  channel for all survivors — perfectly healthy workers then go silent
  and get killed as heartbeat hangs.  A private ``Pipe`` per worker
  fails alone: the dead worker's write end closes, the parent reads
  EOF, and everyone else keeps talking.  Synchronous sends also mean a
  message that finished sending is never lost with a feeder thread —
  the parent reads a dead worker's last reports before judging what
  the death orphaned.
* **Results are pickled inside the worker's try block.**  An
  unpicklable result would otherwise blow up the transport send after
  the reporting path; encoding eagerly turns it into an ordinary
  reported error.  Large numpy payloads are diverted into a
  shared-memory segment by :mod:`repro.parallel.shm_results`, so the
  pipe carries only a small descriptor.
* **Crashes are messages, not exceptions.**  ``poll`` watches worker
  liveness and synthesizes a ``"crash"`` message for the running task
  of a dead worker (plus ``"requeue"`` for its pending batch siblings),
  so callers handle a segfault with the same code path as a Python
  exception.
* **Hangs are messages too.**  A supervised pool (one built with
  ``heartbeat_interval`` and/or ``unit_deadline``) runs a daemon
  heartbeat thread in every worker and tracks dispatch times in the
  parent; ``poll`` synthesizes a ``"hang"`` message — after killing the
  worker, SIGTERM then SIGKILL past the grace period — when a worker
  blows its per-unit deadline, stops heartbeating (a GIL-holding C
  hang, a SIGSTOP, a wedged transport), or trips the optional RSS
  watchdog.  Workers only beat while running a task, so an idle
  persistent pool costs nothing and fills no queues.
* **The pool outlives its callers.**  ``shared_task_pool`` keeps one
  process-wide pool alive so fork cost is paid once per process;
  :func:`lease_task_pool` hands it out under a lease that restores the
  supervision knobs and quiesces in-flight state on release, so an
  engine can supervise — kill, respawn, degrade — a pool it does not
  own without wrecking it for the next caller.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import threading
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from multiprocessing import connection as connection_module
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ParallelError, WorkerCrashError
from repro.parallel import shm_results

#: Worker-side globals, set once per forked process.
_CURRENT_WORKER: Optional[int] = None
_CURRENT_TASK: Optional[int] = None
_RESULT_QUEUE: Any = None

#: Sentinel distinguishing "not passed" from an explicit None in
#: :meth:`WorkerPool.configure_supervision`.
_UNSET: Any = object()


class RemoteTaskError(RuntimeError):
    """Base of dynamically rebuilt worker exceptions.

    A worker reports failures as ``(type_name, message, traceback)``
    strings; :func:`reconstruct_error` rebuilds an exception whose
    *class name* matches the original, so parent-side formatting
    (``f"{type(error).__name__}: {error}"``) is identical to a serial
    run.  The worker's formatted traceback rides along as
    ``remote_traceback``.
    """


def reconstruct_error(
    type_name: str, message: str, traceback_text: Optional[str] = None
) -> BaseException:
    """Rebuild a worker-reported exception for parent-side handling."""
    error = type(type_name, (RemoteTaskError,), {})(message)
    error.remote_traceback = traceback_text
    return error


def in_worker() -> bool:
    """True inside a pool worker process (used to forbid nesting)."""
    return _CURRENT_WORKER is not None


def emit_event(payload: Any) -> None:
    """Send an out-of-band event (e.g. a retry notice) to the parent.

    No-op outside a worker, so code instrumented with events runs
    unchanged in serial mode.
    """
    if _RESULT_QUEUE is not None:
        _RESULT_QUEUE.put(("event", _CURRENT_WORKER, _CURRENT_TASK, payload))


def fork_available() -> bool:
    """Whether this platform supports the fork start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` request to an actual worker count.

    ``None`` or ``1`` mean serial; ``0`` means one worker per CPU;
    anything else is taken literally.  Inside a pool worker, or on a
    platform without fork, the answer is always 1 — parallelism never
    nests and never silently switches to spawn semantics (which could
    not see the parent's task closures).
    """
    if jobs is None:
        return 1
    if jobs < 0:
        raise ParallelError(f"jobs must be >= 0, got {jobs}")
    if in_worker() or not fork_available():
        return 1
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


#: A pool message: kind is "start" | "done" | "error" | "event" |
#: "bye" | "crash" | "hang" | "requeue".  ``payload`` is kind-specific
#: (see ``_worker_main``; for "hang" it is a dict with ``reason`` —
#: ``"deadline"``/``"heartbeat"``/``"rss"`` — and ``elapsed`` seconds;
#: for "done" it is ``(blob, elapsed, meta)`` where ``meta`` carries
#: worker-side timestamps and the optional shared-memory result
#: descriptor).  A "requeue" message names a task that was pending in a
#: dead/killed worker's batch and was never started — the caller should
#: simply dispatch it again.  "heartbeat" messages exist on the wire
#: but are consumed inside ``poll`` and never returned to callers.
@dataclass(frozen=True)
class Message:
    kind: str
    worker_id: int
    task_id: Optional[int]
    payload: Any = None


class _WorkerChannel:
    """Worker-side writer for the per-worker result pipe.

    The worker's main thread and its heartbeat thread both report
    through this; a raw ``Connection`` is not thread-safe, so sends are
    serialized under a lock.  Exposes the same ``put`` surface as the
    queue it replaced, keeping :func:`emit_event` and the heartbeat
    loop transport-agnostic.
    """

    def __init__(self, connection: Any) -> None:
        self._connection = connection
        self._lock = threading.Lock()

    def put(self, item: Any) -> None:
        with self._lock:
            self._connection.send(item)


def _heartbeat_loop(worker_id, result_queue, interval) -> None:
    """Worker-side daemon thread: prove liveness every ``interval`` seconds.

    The thread keeps beating through a pure-Python busy loop in the main
    thread (the GIL is released every switch interval), so a lost
    heartbeat means something harder — a C extension holding the GIL, a
    stopped process, a wedged pipe — which is exactly what the
    parent's hang detector should treat as dead.  Beats are only sent
    while a task is running: the parent's detector only judges busy
    workers, and an idle persistent pool must not fill the result pipe
    while nobody is polling it.
    """
    while True:
        time.sleep(interval)
        if _CURRENT_TASK is None:
            continue
        try:
            result_queue.put(
                ("heartbeat", worker_id, _CURRENT_TASK, time.monotonic())
            )
        except Exception:  # noqa: BLE001 - interpreter teardown
            return


def _worker_main(
    worker_id,
    tasks,
    task_queue,
    result_connection,
    heartbeat_interval=None,
    progress_started=None,
    progress_done=None,
) -> None:
    """Worker loop: take a batch of (task_id, spec) off the queue.

    ``spec`` is either an int (index into the fork-inherited ``tasks``
    registry) or pickled ``(function, args)`` bytes for dynamic tasks.
    Each task in the batch is reported individually; the batch is only
    a transport envelope.  Reports travel over this worker's private
    ``result_connection`` (see the module docstring for why it is not
    a shared queue).

    ``progress_started``/``progress_done`` are fork-shared ints updated
    around every task.  Pipe sends are synchronous, so a report that
    finished sending always survives the worker — but a worker killed
    *mid-send* leaves a truncated frame the parent must discard, and
    with it the ``"done"`` or ``"start"`` it never got to read.  The
    shared slots survive the death and give the parent ground truth:
    ``started != done`` names the task that was running.
    """
    global _CURRENT_WORKER, _CURRENT_TASK, _RESULT_QUEUE
    _CURRENT_WORKER = worker_id
    result_queue = _WorkerChannel(result_connection)
    _RESULT_QUEUE = result_queue
    if heartbeat_interval is not None:
        threading.Thread(
            target=_heartbeat_loop,
            args=(worker_id, result_queue, heartbeat_interval),
            daemon=True,
        ).start()
    while True:
        batch = task_queue.get()
        if batch is None:
            result_queue.put(("bye", worker_id, None, None))
            return
        for task_id, spec in batch:
            _CURRENT_TASK = task_id
            if progress_started is not None:
                progress_started.value = task_id
            started = time.monotonic()
            result_queue.put(("start", worker_id, task_id, started))
            try:
                if isinstance(spec, bytes):
                    function, arguments = pickle.loads(spec)
                    result = function(*arguments)
                else:
                    result = tasks[spec]()
                run_seconds = time.monotonic() - started
                encode_started = time.monotonic()
                blob, descriptor = shm_results.encode_result(result)
                encode_seconds = time.monotonic() - encode_started
            except BaseException as error:  # noqa: BLE001 - reported
                detail = (
                    type(error).__name__,
                    str(error),
                    "".join(
                        traceback_module.format_exception(
                            type(error), error, error.__traceback__
                        )
                    ),
                    time.monotonic() - started,
                )
                result_queue.put(("error", worker_id, task_id, detail))
                if progress_done is not None:
                    progress_done.value = task_id
                _CURRENT_TASK = None
                if isinstance(error, (KeyboardInterrupt, SystemExit)):
                    return
            else:
                meta = {
                    "started_at": started,
                    "sent_at": time.monotonic(),
                    "run_s": run_seconds,
                    "encode_s": encode_seconds,
                    "shm": descriptor,
                }
                result_queue.put(
                    ("done", worker_id, task_id, (blob, run_seconds, meta))
                )
                if progress_done is not None:
                    progress_done.value = task_id
                _CURRENT_TASK = None


@dataclass
class _WorkerHandle:
    worker_id: int
    process: Any
    task_queue: Any
    #: The task the worker has reported "start" for (or the whole batch
    #: until the first start arrives — see ``in_flight``), plus the
    #: batch tail it has not started yet.
    current: Optional[int] = None
    pending: List[int] = field(default_factory=list)
    dispatched: int = 0
    sentinel_sent: bool = False
    said_bye: bool = False
    reported_dead: bool = False
    #: Supervision bookkeeping: when the current batch was dispatched,
    #: when the running unit started (parent clock), and when the
    #: worker last proved liveness.
    dispatched_at: Optional[float] = None
    unit_started_at: Optional[float] = None
    last_beat: Optional[float] = None
    #: Fork-shared ints the worker writes around each task; survive the
    #: worker's death and outlive any report SIGKILL truncated mid-send.
    progress_started: Any = None
    progress_done: Any = None
    #: Parent-side read end of this worker's private result pipe.  EOF
    #: (the worker died and its write end closed) or a truncated frame
    #: marks the channel closed; other workers' channels are unaffected.
    receiver: Any = None
    receiver_closed: bool = False

    def victim_and_siblings(self) -> Tuple[Optional[int], List[int]]:
        """Which unacknowledged task this worker died on, and the rest.

        Message-based accounting (``current``/``pending``) can be stale
        when the worker was SIGKILLed mid-send: the parent discards the
        truncated frame, and with it the ``done`` for the previous task
        or the ``start`` for the running one.  The shared progress
        slots are authoritative: ``started != done`` names the exact
        task that was running at death.  Fall back to the
        message-based ``in_flight`` when the slots say the worker was
        between tasks (or for pools predating them).
        """
        unacked: List[int] = []
        if self.current is not None:
            unacked.append(self.current)
        unacked.extend(tid for tid in self.pending if tid != self.current)
        victim = self.in_flight
        started = (
            self.progress_started.value
            if self.progress_started is not None
            else -1
        )
        done = (
            self.progress_done.value
            if self.progress_done is not None
            else -1
        )
        if started >= 0 and started != done and started in unacked:
            victim = started
        siblings = [tid for tid in unacked if tid != victim]
        return victim, siblings

    @property
    def usable(self) -> bool:
        return (
            not self.sentinel_sent
            and not self.reported_dead
            and self.process.is_alive()
        )

    @property
    def busy(self) -> bool:
        return self.current is not None or bool(self.pending)

    @property
    def in_flight(self) -> Optional[int]:
        """The task this worker would orphan if it died right now."""
        if self.current is not None:
            return self.current
        return self.pending[0] if self.pending else None


def _discard_stale_item(item: Any) -> None:
    """Release resources riding on a drained-but-unconsumed report.

    Only ``"done"`` payloads carry anything owned outside the pickle: a
    shared-memory result segment that nobody will decode must be
    unlinked here or it outlives the run.
    """
    if item[0] != "done":
        return
    payload = item[3]
    if isinstance(payload, tuple) and len(payload) >= 3:
        meta = payload[2]
        if isinstance(meta, dict):
            shm_results.discard_result(meta.get("shm"))


def _process_rss_kb(pid: int) -> Optional[int]:
    """Resident set size of ``pid`` in KB via /proc, or None off-Linux."""
    try:
        with open(f"/proc/{pid}/statm", "rb") as stream:
            pages = int(stream.read().split()[1])
        return pages * (os.sysconf("SC_PAGE_SIZE") // 1024)
    except (OSError, ValueError, IndexError):
        return None


class WorkerPool:
    """A fixed-size pool of forked workers; see the module docstring.

    The keyword-only supervision knobs are all off by default (an
    unsupervised pool behaves exactly as before):

    * ``heartbeat_interval`` — workers run a daemon thread proving
      liveness this often while a task runs; ``poll`` declares a worker
      hung when no beat arrives for ``heartbeat_timeout`` (default 6x
      the interval).
    * ``unit_deadline`` — hard per-task wall clock; a worker still
      running one task past it is killed and the task surfaces as a
      ``"hang"`` message.
    * ``rss_limit_kb`` — RSS watchdog; a worker whose resident set
      exceeds this while running a task is killed the same way.
    * ``kill_grace`` — seconds between SIGTERM and SIGKILL in
      :meth:`kill`.

    The detection knobs (everything except ``heartbeat_interval``,
    which is baked into the forked workers) can be changed later with
    :meth:`configure_supervision` — that is how a lease supervises the
    shared pool for one engine run and hands it back unsupervised.
    """

    def __init__(
        self,
        tasks: Optional[Sequence[Callable[[], Any]]] = None,
        jobs: int = 1,
        *,
        heartbeat_interval: Optional[float] = None,
        heartbeat_timeout: Optional[float] = None,
        unit_deadline: Optional[float] = None,
        rss_limit_kb: Optional[int] = None,
        kill_grace: float = 1.0,
    ) -> None:
        if in_worker():
            raise ParallelError("worker pools must not be created in a worker")
        if not fork_available():
            raise ParallelError("worker pools need the fork start method")
        if jobs < 1:
            raise ParallelError(f"a pool needs at least one worker, got {jobs}")
        for name, value in (
            ("heartbeat_interval", heartbeat_interval),
            ("heartbeat_timeout", heartbeat_timeout),
            ("unit_deadline", unit_deadline),
            ("kill_grace", kill_grace),
        ):
            if value is not None and value <= 0:
                raise ParallelError(f"{name} must be positive, got {value}")
        self.jobs = jobs
        self._tasks = list(tasks) if tasks is not None else []
        self._heartbeat_interval = heartbeat_interval
        if heartbeat_timeout is None and heartbeat_interval is not None:
            heartbeat_timeout = 6.0 * heartbeat_interval
        self._heartbeat_timeout = heartbeat_timeout
        self._unit_deadline = unit_deadline
        self._rss_limit_kb = rss_limit_kb
        self._kill_grace = kill_grace
        self._last_rss_check = 0.0
        self._context = multiprocessing.get_context("fork")
        self._workers: Dict[int, _WorkerHandle] = {}
        self._deferred: List[Message] = []
        self._closed = False
        #: Aggregate transport stats of the most recent ``run_calls``
        #: (batches, tasks, queue_wait_s, run_s, encode_s, transfer_s,
        #: decode_s) — diagnostic only, surfaced by ``repro-bench
        #: --profile``.
        self.last_run_stats: Optional[Dict[str, float]] = None
        for worker_id in range(jobs):
            self._spawn(worker_id)

    @property
    def heartbeat_interval(self) -> Optional[float]:
        """The interval baked into this pool's workers (read-only)."""
        return self._heartbeat_interval

    def configure_supervision(
        self,
        *,
        heartbeat_timeout: Any = _UNSET,
        unit_deadline: Any = _UNSET,
        rss_limit_kb: Any = _UNSET,
        kill_grace: Any = _UNSET,
    ) -> None:
        """Adjust parent-side detection knobs on a live pool.

        Only the arguments passed change; ``None`` disables that check.
        ``heartbeat_interval`` is intentionally absent — it is forked
        into the workers and cannot change without respawning them.
        Detection via ``heartbeat_timeout`` requires the pool to have
        been built with a ``heartbeat_interval`` (otherwise no beats
        ever arrive and every busy worker would look hung).
        """
        for name, value in (
            ("heartbeat_timeout", heartbeat_timeout),
            ("unit_deadline", unit_deadline),
            ("kill_grace", kill_grace),
        ):
            if value is not _UNSET and value is not None and value <= 0:
                raise ParallelError(f"{name} must be positive, got {value}")
        if heartbeat_timeout is not _UNSET:
            if heartbeat_timeout is not None and self._heartbeat_interval is None:
                raise ParallelError(
                    "heartbeat_timeout needs a pool built with "
                    "heartbeat_interval (workers are not beating)"
                )
            self._heartbeat_timeout = heartbeat_timeout
        if unit_deadline is not _UNSET:
            self._unit_deadline = unit_deadline
        if rss_limit_kb is not _UNSET:
            self._rss_limit_kb = rss_limit_kb
        if kill_grace is not _UNSET:
            if kill_grace is None:
                raise ParallelError("kill_grace must be positive, got None")
            self._kill_grace = kill_grace

    def _spawn(self, worker_id: int) -> None:
        old = self._workers.get(worker_id)
        if old is not None:
            # Replacing a dead worker: drain and close its channel so a
            # leftover report can never be read under the new worker's
            # id (and any undecoded shm segment is unlinked).
            self._retire_channel(old)
        task_queue = self._context.SimpleQueue()
        receiver, sender = self._context.Pipe(duplex=False)
        # Unlocked shared ints: single-writer (the worker), single-reader
        # (the parent, and only once the worker is dead or being killed).
        progress_started = self._context.Value("q", -1, lock=False)
        progress_done = self._context.Value("q", -1, lock=False)
        process = self._context.Process(
            target=_worker_main,
            args=(
                worker_id,
                self._tasks,
                task_queue,
                sender,
                self._heartbeat_interval,
                progress_started,
                progress_done,
            ),
            daemon=True,
        )
        process.start()
        # Close the parent's copy of the write end: the worker now holds
        # the only one, so its death — however abrupt — EOFs the pipe.
        # (Spawns are sequential in the parent, so no other fork can
        # inherit this write end in between.)
        sender.close()
        self._workers[worker_id] = _WorkerHandle(
            worker_id,
            process,
            task_queue,
            progress_started=progress_started,
            progress_done=progress_done,
            receiver=receiver,
        )

    def respawn(self, worker_id: int) -> None:
        """Replace a dead worker so remaining work can still be absorbed."""
        handle = self._workers[worker_id]
        if handle.process.is_alive():
            raise ParallelError(f"worker {worker_id} is alive; not respawning")
        self._spawn(worker_id)

    def revive(self) -> int:
        """Respawn every dead (non-retired) worker; returns the count.

        This is how a persistent pool recovers full capacity after a
        crash: :func:`shared_task_pool` calls it on acquisition so one
        poisoned sweep does not leave every later sweep running on the
        surviving workers only.
        """
        revived = 0
        for worker_id, handle in list(self._workers.items()):
            if handle.sentinel_sent or handle.process.is_alive():
                continue
            handle.process.join(0.0)  # reap before replacing
            self._spawn(worker_id)
            revived += 1
        return revived

    def kill(self, worker_id: int) -> Optional[int]:
        """Forcibly stop one worker: SIGTERM, then SIGKILL after grace.

        Returns the task id that was running (now orphaned), or None.
        Batch siblings the worker never started are deferred as
        ``"requeue"`` messages surfaced by the next :meth:`poll`.  The
        handle is marked dead so ``poll`` does not also synthesize a
        ``"crash"`` for it; the caller decides what the orphaned task
        means (requeue, fail, quarantine).
        """
        handle = self._workers[worker_id]
        task_id, siblings = handle.victim_and_siblings()
        handle.current = None
        handle.pending = []
        handle.dispatched_at = None
        handle.unit_started_at = None
        handle.reported_dead = True
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(self._kill_grace)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(1.0)
        else:
            handle.process.join(0.0)
        self._deferred.extend(
            Message("requeue", worker_id, sibling, None) for sibling in siblings
        )
        return task_id

    def submit(
        self,
        worker_id: int,
        task_id: int,
        call: Optional[Tuple[Callable[..., Any], Tuple[Any, ...]]] = None,
    ) -> None:
        """Dispatch one task to an idle worker.

        ``call=None`` sends registry task ``task_id``; otherwise
        ``call=(function, args)`` is pickled and sent as a dynamic task.
        """
        self.submit_batch(worker_id, [(task_id, call)])

    def submit_batch(
        self, worker_id: int, items: Sequence[Tuple[int, Any]]
    ) -> None:
        """Dispatch a batch of tasks to an idle worker in one round-trip.

        Each item is ``(task_id, payload)`` where payload is ``None``
        (registry task ``task_id``), a ``(function, args)`` tuple
        (pickled here), or pre-pickled bytes.  The worker reports each
        task individually; order within the batch is execution order.
        """
        if self._closed:
            raise ParallelError("pool is closed")
        if not items:
            raise ParallelError("submit_batch needs at least one task")
        handle = self._workers[worker_id]
        if handle.busy:
            raise ParallelError(
                f"worker {worker_id} already has task {handle.in_flight}"
            )
        if not handle.usable:
            raise WorkerCrashError(f"worker {worker_id} is not running")
        batch = []
        for task_id, payload in items:
            if payload is None:
                spec: Any = task_id
            elif isinstance(payload, bytes):
                spec = payload
            else:
                spec = pickle.dumps(payload)
            batch.append((task_id, spec))
        handle.pending = [task_id for task_id, _spec in batch]
        handle.dispatched += len(batch)
        now = time.monotonic()
        handle.dispatched_at = now
        handle.unit_started_at = None
        handle.last_beat = now
        handle.task_queue.put(batch)

    def idle_workers(self) -> List[int]:
        """Usable workers with no task in flight, least-loaded first."""
        idle = [
            handle
            for handle in self._workers.values()
            if handle.usable and not handle.busy
        ]
        idle.sort(key=lambda handle: (handle.dispatched, handle.worker_id))
        return [handle.worker_id for handle in idle]

    def alive_count(self) -> int:
        return sum(1 for handle in self._workers.values() if handle.usable)

    def busy_count(self) -> int:
        """Workers holding a batch whose outcome is still unresolved.

        Deliberately *not* gated on process liveness: a worker that died
        with work in flight stays "busy" until :meth:`poll` synthesizes
        its crash and requeues the siblings.  The engine's AIMD window
        compares against this count, so counting the dead worker as free
        would let a requeued crasher be re-dispatched before its own
        crash was even accounted — racing the supervisor's kill
        bookkeeping and respawn budget.
        """
        return sum(
            1
            for handle in self._workers.values()
            if not handle.sentinel_sent and handle.busy
        )

    def dead_workers(self) -> List[int]:
        """Worker ids that died (or were killed) and were not retired."""
        return [
            handle.worker_id
            for handle in self._workers.values()
            if not handle.sentinel_sent and not handle.process.is_alive()
        ]

    def _retire_channel(self, handle: _WorkerHandle) -> None:
        """Drain and close one worker's pipe for good.

        Any unread ``"done"`` result is stale by definition (the worker
        is being replaced or the pool is shutting down); its
        shared-memory segment, if any, is unlinked so nothing leaks.
        """
        for item in self._drain_receiver(handle):
            _discard_stale_item(item)
        self._close_receiver(handle)

    def _close_receiver(self, handle: _WorkerHandle) -> None:
        handle.receiver_closed = True
        if handle.receiver is not None:
            try:
                handle.receiver.close()
            except OSError:
                pass

    def _drain_receiver(self, handle: _WorkerHandle) -> List[Any]:
        """Read every complete frame waiting on one worker's pipe.

        EOF (the worker died, its write end closed) and a truncated or
        corrupt frame (the worker died *mid-send*) both end the channel
        — for this worker only.  Everything sent before that is
        returned intact: pipe writes are synchronous in the worker, so
        unlike a queue's feeder thread, a finished ``send`` cannot be
        lost to SIGKILL.
        """
        items: List[Any] = []
        conn = handle.receiver
        if conn is None or handle.receiver_closed:
            return items
        while True:
            try:
                if not conn.poll(0):
                    break
                items.append(conn.recv())
            except (EOFError, OSError):
                self._close_receiver(handle)
                break
            except Exception:  # noqa: BLE001 - unpicklable/corrupt frame
                self._close_receiver(handle)
                break
        return items

    def _read_available(self, timeout: float) -> List[Any]:
        """Multiplex all live worker pipes for up to ``timeout`` seconds."""
        receivers = {
            handle.receiver: handle
            for handle in self._workers.values()
            if handle.receiver is not None and not handle.receiver_closed
        }
        if not receivers:
            if timeout > 0:
                time.sleep(timeout)
            return []
        try:
            ready = connection_module.wait(list(receivers), timeout)
        except OSError:
            return []
        items: List[Any] = []
        for conn in ready:
            items.extend(self._drain_receiver(receivers[conn]))
        return items

    def _account(self, item: Any, messages: List[Message]) -> None:
        """Fold one raw transport item into handle state and ``messages``."""
        message = Message(*item)
        handle = self._workers.get(message.worker_id)
        if message.kind == "heartbeat":
            # Parent clock, not the worker's send time: delivery may
            # lag, but delivery proves liveness.
            if handle is not None:
                handle.last_beat = time.monotonic()
            return
        messages.append(message)
        if handle is None:
            return
        if message.kind == "start":
            now = time.monotonic()
            handle.last_beat = now
            handle.unit_started_at = now
            handle.current = message.task_id
            if message.task_id in handle.pending:
                handle.pending.remove(message.task_id)
        elif message.kind in ("done", "error"):
            handle.last_beat = time.monotonic()
            if handle.current == message.task_id:
                handle.current = None
                handle.unit_started_at = None
            elif message.task_id in handle.pending:
                # Start message lost/merged; keep accounting sane.
                handle.pending.remove(message.task_id)
            if not handle.busy:
                handle.dispatched_at = None
        elif message.kind == "bye":
            handle.said_bye = True

    def poll(self, timeout: float = 0.1) -> List[Message]:
        """Drain pending messages, then synthesize crashes and hangs.

        Heartbeat messages are consumed here (they refresh the sender's
        liveness clock) and never returned.  A worker with a task in
        flight that blows the per-unit deadline, goes silent past the
        heartbeat timeout, or trips the RSS watchdog is killed via
        :meth:`kill` and reported as a ``"hang"`` message whose payload
        carries the reason and elapsed seconds.  Batch siblings of dead
        or killed workers surface as ``"requeue"`` messages after the
        crash/hang that stranded them.
        """
        messages: List[Message] = []
        for item in self._read_available(timeout):
            self._account(item, messages)
        for handle in self._workers.values():
            if (
                not handle.said_bye
                and not handle.reported_dead
                and not handle.sentinel_sent
                and not handle.process.is_alive()
            ):
                # Read the dead worker's final reports *before* judging
                # what the death orphaned: sends are synchronous, so a
                # "done" that finished sending is still in the pipe and
                # must not be charged as the crash victim.
                for item in self._drain_receiver(handle):
                    self._account(item, messages)
                handle.reported_dead = True
                task_id, siblings = handle.victim_and_siblings()
                handle.current = None
                handle.pending = []
                handle.dispatched_at = None
                handle.unit_started_at = None
                messages.append(
                    Message(
                        "crash",
                        handle.worker_id,
                        task_id,
                        handle.process.exitcode,
                    )
                )
                messages.extend(
                    Message("requeue", handle.worker_id, sibling, None)
                    for sibling in siblings
                )
        messages.extend(self._detect_hangs())
        if self._deferred:
            messages.extend(self._deferred)
            self._deferred = []
        return messages

    def _detect_hangs(self) -> List[Message]:
        """Kill and report workers that look hung (supervised pools only)."""
        if (
            self._unit_deadline is None
            and self._heartbeat_timeout is None
            and self._rss_limit_kb is None
        ):
            return []
        now = time.monotonic()
        check_rss = False
        if self._rss_limit_kb is not None and (
            now - self._last_rss_check >= 0.5
        ):
            self._last_rss_check = now
            check_rss = True
        hangs: List[Message] = []
        for handle in list(self._workers.values()):
            if not handle.usable or not handle.busy:
                continue
            # The deadline clock starts when the unit starts running,
            # falling back to batch dispatch time until the start
            # message arrives (queue wait on an idle worker is bounded
            # by transport, not simulation, time).
            started = handle.unit_started_at or handle.dispatched_at or now
            elapsed = now - started
            reason = None
            if (
                self._unit_deadline is not None
                and elapsed > self._unit_deadline
            ):
                reason = "deadline"
            elif (
                self._heartbeat_timeout is not None
                and handle.last_beat is not None
                and now - handle.last_beat > self._heartbeat_timeout
            ):
                reason = "heartbeat"
            elif check_rss:
                rss = _process_rss_kb(handle.process.pid)
                if rss is not None and rss > self._rss_limit_kb:
                    reason = "rss"
            if reason is None:
                continue
            task_id = self.kill(handle.worker_id)
            hangs.append(
                Message(
                    "hang",
                    handle.worker_id,
                    task_id,
                    {"reason": reason, "elapsed": elapsed},
                )
            )
        return hangs

    def quiesce(self) -> None:
        """Return the pool to an idle, fully-alive, empty-queue state.

        Used when a lease hands back a pool with work still in flight
        (fail-fast stop, an error mid-dispatch): busy workers are
        killed (their batches are abandoned), every stale message is
        drained — unlinking any shared-memory result segments that
        nobody will decode — and dead workers are respawned.  After
        this the pool is indistinguishable from a freshly built one,
        minus the fork cost.
        """
        if self._closed:
            return
        for handle in list(self._workers.values()):
            if handle.usable and handle.busy:
                self.kill(handle.worker_id)
        self._deferred = []
        for handle in list(self._workers.values()):
            for item in self._drain_receiver(handle):
                _discard_stale_item(item)
        for handle in self._workers.values():
            handle.current = None
            handle.pending = []
            handle.dispatched_at = None
            handle.unit_started_at = None
        self.revive()

    def close(self, timeout: float = 10.0) -> None:
        """Send sentinels and join workers (idempotent)."""
        if self._closed:
            return
        for handle in self._workers.values():
            if not handle.sentinel_sent and handle.process.is_alive():
                handle.sentinel_sent = True
                try:
                    handle.task_queue.put(None)
                except (OSError, ValueError):
                    pass
        deadline = time.monotonic() + timeout
        for handle in self._workers.values():
            # Keep this worker's pipe drained while waiting: a worker
            # mid-report into a full pipe could otherwise never reach
            # the sentinel (the parent is the only reader).
            while handle.process.is_alive() and time.monotonic() < deadline:
                for item in self._drain_receiver(handle):
                    _discard_stale_item(item)
                handle.process.join(0.05)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(1.0)
            if handle.process.is_alive():
                # A worker ignoring/blocked from SIGTERM (a C-level hang,
                # a masked handler) must not hold close() hostage.
                handle.process.kill()
                handle.process.join(1.0)
            self._retire_channel(handle)
        self._closed = True

    def terminate(self) -> None:
        """Kill all workers immediately (used on interrupt/fatal error)."""
        if self._closed:
            return
        for handle in self._workers.values():
            if handle.process.is_alive():
                handle.process.terminate()
        for handle in self._workers.values():
            handle.process.join(1.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(1.0)
            self._retire_channel(handle)
        self._closed = True

    def run_calls(
        self,
        calls: Optional[
            Sequence[Tuple[Callable[..., Any], Tuple[Any, ...]]]
        ] = None,
        count: Optional[int] = None,
        *,
        batch_size: int = 1,
    ) -> List[Any]:
        """Run tasks to completion, preserving submission order.

        With ``calls``, each ``(function, args)`` pair is pickled and
        shipped; with ``count`` alone, registry tasks ``0..count-1`` run
        instead.  ``batch_size`` tasks travel per worker round-trip
        (results still arrive per task).  Raises the reconstructed
        error of the lowest-indexed failing task (after letting
        in-flight work finish), or :class:`WorkerCrashError` if a
        worker died running one.
        """
        if calls is None:
            if count is None:
                raise ParallelError("run_calls needs calls or a task count")
            total = count
        else:
            total = len(calls)
        batch_size = max(1, int(batch_size))
        results: List[Any] = [None] * total
        finished = [False] * total
        failures: Dict[int, BaseException] = {}
        requeued: List[int] = []
        next_task = 0
        submitted_at: Dict[int, float] = {}
        stats = {
            "batches": 0.0,
            "tasks": 0.0,
            "queue_wait_s": 0.0,
            "run_s": 0.0,
            "encode_s": 0.0,
            "transfer_s": 0.0,
            "decode_s": 0.0,
        }
        self.last_run_stats = stats
        while not all(finished):
            if not failures:
                for worker_id in self.idle_workers():
                    batch: List[int] = []
                    while len(batch) < batch_size:
                        if requeued:
                            batch.append(requeued.pop(0))
                        elif next_task < total:
                            batch.append(next_task)
                            next_task += 1
                        else:
                            break
                    if not batch:
                        break
                    now = time.monotonic()
                    for task_id in batch:
                        submitted_at[task_id] = now
                    self.submit_batch(
                        worker_id,
                        [
                            (
                                task_id,
                                None if calls is None else calls[task_id],
                            )
                            for task_id in batch
                        ],
                    )
                    stats["batches"] += 1
                    stats["tasks"] += len(batch)
            else:
                # Stop feeding new work; finish what's in flight so the
                # lowest-indexed error is deterministic.
                for index in requeued:
                    if not finished[index]:
                        finished[index] = True
                        failures.setdefault(
                            index,
                            ParallelError("cancelled after an earlier failure"),
                        )
                requeued = []
                for index in range(next_task, total):
                    if not finished[index]:
                        finished[index] = True
                        failures.setdefault(
                            index,
                            ParallelError("cancelled after an earlier failure"),
                        )
            for message in self.poll(0.05):
                if message.task_id is None or message.kind in ("start", "bye"):
                    continue
                index = message.task_id
                if message.kind == "requeue":
                    if not finished[index]:
                        requeued.append(index)
                    continue
                if finished[index]:
                    continue
                if message.kind == "done":
                    blob, _elapsed, meta = message.payload
                    received = time.monotonic()
                    try:
                        results[index] = shm_results.decode_result(
                            blob, meta.get("shm")
                        )
                    except ParallelError as error:
                        failures[index] = error
                        finished[index] = True
                        continue
                    stats["decode_s"] += time.monotonic() - received
                    stats["run_s"] += meta.get("run_s", 0.0)
                    stats["encode_s"] += meta.get("encode_s", 0.0)
                    sent_at = meta.get("sent_at")
                    if sent_at is not None:
                        stats["transfer_s"] += max(0.0, received - sent_at)
                    submitted = submitted_at.get(index)
                    started_at = meta.get("started_at")
                    if submitted is not None and started_at is not None:
                        stats["queue_wait_s"] += max(
                            0.0, started_at - submitted
                        )
                    finished[index] = True
                elif message.kind == "error":
                    type_name, text, remote_tb, _elapsed = message.payload
                    failures[index] = reconstruct_error(
                        type_name, text, remote_tb
                    )
                    finished[index] = True
                elif message.kind == "crash":
                    failures[index] = WorkerCrashError(
                        f"worker {message.worker_id} exited with code "
                        f"{message.payload} while running task {index}"
                    )
                    finished[index] = True
                elif message.kind == "hang":
                    reason = (
                        message.payload.get("reason", "hang")
                        if isinstance(message.payload, dict)
                        else "hang"
                    )
                    failures[index] = WorkerCrashError(
                        f"worker {message.worker_id} hung ({reason}) "
                        f"while running task {index}"
                    )
                    finished[index] = True
            if self.alive_count() == 0 and not all(finished):
                for worker_id, handle in self._workers.items():
                    if not handle.usable:
                        self.respawn(worker_id)
        if failures:
            raise failures[min(failures)]
        return results


def parallel_map(
    thunks: Sequence[Callable[[], Any]], *, jobs: Optional[int] = None
) -> List[Any]:
    """Run zero-argument callables, preserving order; serial when jobs<=1.

    The callables may close over arbitrary unpicklable state — they are
    inherited by the forked workers, never pickled.  On failure the
    lowest-indexed error is raised (reconstructed for remote failures).
    """
    thunks = list(thunks)
    count = min(resolve_jobs(jobs), len(thunks))
    if count <= 1:
        return [thunk() for thunk in thunks]
    pool = WorkerPool(thunks, count)
    try:
        # Registry tasks: workers inherit the closures, only indices ship.
        return pool.run_calls(count=len(thunks))
    finally:
        pool.terminate()


#: Process-wide pool reused across calls that ship dynamic tasks (the
#: sweep family pool and the picklable-unit path of the experiment
#: engine).  Workers forked at first use know nothing about traces
#: created later — that is exactly why those tasks travel as
#: shared-memory handles rather than pickled reference streams.
_SHARED_POOL: Optional[WorkerPool] = None
_SHARED_POOL_ATEXIT = False
_SHARED_POOL_LEASED = False

#: The shared pool always forks with heartbeats available (beats only
#: flow while a task runs, so an idle pool is silent); leases turn
#: *detection* on and off per run via ``configure_supervision``.
_SHARED_HEARTBEAT_INTERVAL = 0.5


def shared_task_pool(jobs: int) -> WorkerPool:
    """Return the persistent dynamic-task pool, (re)creating on demand.

    A pool that lost workers to a crash in an earlier sweep is revived
    to full strength here — acquisition, not crash time, is when a
    persistent pool must be healthy.  While a :class:`PoolLease` holds
    the pool this raises instead of handing out a second reference;
    use :func:`lease_task_pool`, which falls back to a private pool.
    """
    global _SHARED_POOL, _SHARED_POOL_ATEXIT
    if jobs < 1:
        raise ParallelError(f"a pool needs at least one worker, got {jobs}")
    if _SHARED_POOL_LEASED:
        raise ParallelError(
            "shared pool is leased; use lease_task_pool() for reentrant use"
        )
    pool = _SHARED_POOL
    if pool is not None and (pool._closed or pool.jobs != jobs):
        pool.close(timeout=2.0)
        pool = None
    if pool is None:
        pool = WorkerPool(
            None, jobs, heartbeat_interval=_SHARED_HEARTBEAT_INTERVAL
        )
        # Beats are emitted but not judged until a lease asks for it.
        pool.configure_supervision(heartbeat_timeout=None)
        _SHARED_POOL = pool
        if not _SHARED_POOL_ATEXIT:
            _SHARED_POOL_ATEXIT = True
            atexit.register(shutdown_shared_pool)
    else:
        pool.revive()
    return pool


def shutdown_shared_pool() -> None:
    """Close the persistent pool (idempotent; registered atexit)."""
    global _SHARED_POOL, _SHARED_POOL_LEASED
    _SHARED_POOL_LEASED = False
    if _SHARED_POOL is not None:
        _SHARED_POOL.close(timeout=2.0)
        _SHARED_POOL = None


def shared_pool_stats() -> Optional[Dict[str, float]]:
    """Transport stats of the shared pool's last ``run_calls`` (if any)."""
    if _SHARED_POOL is None:
        return None
    return _SHARED_POOL.last_run_stats


@dataclass
class PoolLease:
    """Temporary custody of a pool, shared or private.

    ``release()`` must always run (use try/finally).  For the shared
    pool it restores the unsupervised detection knobs and — when the
    run ended ``dirty`` (failure, fail-fast stop, work abandoned in
    flight) — quiesces so the next caller sees a clean pool.  For a
    private pool it closes (clean) or terminates (dirty).  Workers of
    the shared pool survive release; that is the whole point.
    """

    pool: WorkerPool
    shared: bool
    dirty: bool = False
    released: bool = False

    def release(self) -> None:
        global _SHARED_POOL_LEASED
        if self.released:
            return
        self.released = True
        if self.shared:
            try:
                if not self.pool._closed:
                    self.pool.configure_supervision(
                        heartbeat_timeout=None,
                        unit_deadline=None,
                        rss_limit_kb=None,
                        kill_grace=1.0,
                    )
                    if self.dirty:
                        self.pool.quiesce()
            finally:
                _SHARED_POOL_LEASED = False
        elif self.dirty:
            self.pool.terminate()
        else:
            self.pool.close()


def try_lease_shared_pool(jobs: int) -> Optional[PoolLease]:
    """Lease the shared pool, or None when it cannot be had.

    The shared pool is unavailable inside a worker, on platforms
    without fork, or while another lease is outstanding (e.g. a
    journal callback starting a nested sweep while the engine holds
    the pool).
    """
    global _SHARED_POOL_LEASED
    if jobs < 1:
        raise ParallelError(f"a pool needs at least one worker, got {jobs}")
    if in_worker() or not fork_available():
        return None
    if _SHARED_POOL_LEASED:
        return None
    pool = shared_task_pool(jobs)
    _SHARED_POOL_LEASED = True
    return PoolLease(pool, shared=True)


def lease_task_pool(jobs: int) -> PoolLease:
    """Lease the shared pool, falling back to a private throwaway pool.

    Always returns a lease; callers run the same code either way and
    ``release()`` does the right thing for both.
    """
    lease = try_lease_shared_pool(jobs)
    if lease is not None:
        return lease
    return PoolLease(WorkerPool(None, jobs), shared=False)
