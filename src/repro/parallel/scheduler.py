"""Dependency-aware ordering and worker affinity for experiment units.

A :class:`~repro.robustness.executor.UnitSpec` may name other units it
``needs`` (they must succeed first) and an ``affinity`` key (units
sharing a key run in the same worker, so per-worker caches — attached
shared-memory traces, warmed stack passes — are actually reused).

The scheduler is parent-side bookkeeping only; it never touches
processes.  The engine asks it three questions: *is this unit spec
valid* (:func:`validate_units`), *what order should dispatch consider*
(:func:`topological_order` — stable, so an already-consistent spec
order is preserved verbatim), and *which worker should run this unit*
(:class:`AffinityRouter`).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Set

from repro.errors import ParallelError


def unit_needs(spec) -> tuple:
    """The unit names ``spec`` depends on (units without the field: none)."""
    return tuple(getattr(spec, "needs", ()) or ())


def unit_affinity(spec) -> Optional[str]:
    """The unit's affinity key, or None (units without the field: None)."""
    return getattr(spec, "affinity", None)


def validate_units(units: Sequence) -> Dict[str, int]:
    """Check names are unique and every dependency names a known unit.

    Returns {unit name: index in ``units``}.  Raises
    :class:`~repro.errors.ParallelError` on duplicates or unknown
    dependencies; cycles are caught by :func:`topological_order`.
    """
    by_name: Dict[str, int] = {}
    for index, spec in enumerate(units):
        if spec.name in by_name:
            raise ParallelError(f"duplicate unit name {spec.name!r}")
        by_name[spec.name] = index
    for index, spec in enumerate(units):
        for need in unit_needs(spec):
            if need not in by_name:
                raise ParallelError(
                    f"unit {spec.name!r} needs unknown unit {need!r}"
                )
            if need == spec.name:
                raise ParallelError(f"unit {spec.name!r} depends on itself")
            if by_name[need] > index:
                # Spec order is also journal/flush order; a dependency
                # listed after its dependent would make the serial and
                # parallel paths disagree about execution order.
                raise ParallelError(
                    f"unit {spec.name!r} must be listed after its "
                    f"dependency {need!r}"
                )
    return by_name


def topological_order(units: Sequence) -> List[int]:
    """Indices of ``units`` in dependency order, stable by spec order.

    Kahn's algorithm with a min-heap on the original index: whenever
    several units are ready, the one listed first goes first, so a spec
    list that is already dependency-consistent comes back unchanged.
    """
    by_name = validate_units(units)
    dependents: Dict[int, List[int]] = {i: [] for i in range(len(units))}
    indegree = [0] * len(units)
    for index, spec in enumerate(units):
        for need in unit_needs(spec):
            dependents[by_name[need]].append(index)
            indegree[index] += 1
    ready = [index for index, degree in enumerate(indegree) if degree == 0]
    heapq.heapify(ready)
    order: List[int] = []
    while ready:
        index = heapq.heappop(ready)
        order.append(index)
        for dependent in dependents[index]:
            indegree[dependent] -= 1
            if indegree[dependent] == 0:
                heapq.heappush(ready, dependent)
    if len(order) != len(units):
        cyclic = sorted(
            units[index].name
            for index, degree in enumerate(indegree)
            if degree > 0
        )
        raise ParallelError(
            "dependency cycle among units: " + ", ".join(cyclic)
        )
    return order


def transitive_dependents(units: Sequence, root: str) -> Set[str]:
    """Names of every unit that (transitively) needs ``root``."""
    by_name = {spec.name: spec for spec in units}
    if root not in by_name:
        raise ParallelError(f"unknown unit {root!r}")
    affected: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for spec in units:
            if spec.name in affected:
                continue
            for need in unit_needs(spec):
                if need == root or need in affected:
                    affected.add(spec.name)
                    changed = True
                    break
    return affected


#: Target number of dispatch round-trips per worker for a whole run.
#: Each round-trip costs roughly a pipe write + wakeup + pipe read
#: (~1ms of parent/worker ping-pong); packing a run into ~8 batches per
#: worker makes that overhead a rounding error while still leaving
#: enough batches for the least-loaded-first scheduler to balance load.
DEFAULT_DISPATCHES_PER_WORKER = 8


def unit_cost(spec) -> float:
    """Relative cost estimate of one unit (units without the field: 1.0).

    The cost model is deliberately crude — estimated references times
    geometry count, normalized however the caller likes — because it
    only steers *batch packing*, not correctness: a bad estimate costs
    some load imbalance, never a wrong result.
    """
    cost = getattr(spec, "cost", None)
    if cost is None:
        return 1.0
    try:
        value = float(cost)
    except (TypeError, ValueError):
        return 1.0
    return value if value > 0 else 1.0


def plan_batch_size(
    count: int,
    workers: int,
    *,
    target_per_worker: int = DEFAULT_DISPATCHES_PER_WORKER,
) -> int:
    """How many units to pack per dispatch for ``count`` units.

    Sized so the run makes about ``workers * target_per_worker``
    dispatches total: small runs (fewer units than dispatch slots) get
    batch size 1 — batching them would serialize work that could
    overlap — and only genuinely wide fan-outs amortize the round-trip.
    """
    if count <= 0 or workers <= 0:
        return 1
    slots = max(1, workers * target_per_worker)
    return max(1, -(-count // slots))


def plan_batch_budget(
    costs: Sequence[float],
    workers: int,
    *,
    target_per_worker: int = DEFAULT_DISPATCHES_PER_WORKER,
) -> Optional[float]:
    """Cost ceiling per batch, or None when cost cannot steer packing.

    A batch stops accepting units once its accumulated
    :func:`unit_cost` reaches ``total_cost / (workers * target)`` —
    the even-split share of one dispatch slot — so one expensive unit
    does not drag a batch of cheap siblings behind it.
    """
    if workers <= 0 or not costs:
        return None
    total = float(sum(costs))
    if total <= 0:
        return None
    return total / max(1, workers * target_per_worker)


class AffinityRouter:
    """Sticky unit-to-worker routing.

    The first unit of an affinity group binds the group to a worker (the
    least-loaded idle one at that moment); later units of the group wait
    for *that* worker even if others are idle — the point of affinity is
    reusing worker-local state, which a different worker does not have.
    A dead worker's bindings are dropped so its groups rebind: the
    supervised engine calls :meth:`forget_worker` for every crash *and*
    hang kill, so a requeued unit rebinds its group to a fresh worker
    (whose cold state is rebuilt on first use) instead of waiting on a
    corpse.
    """

    def __init__(self) -> None:
        self._binding: Dict[str, int] = {}

    def bindings(self) -> Dict[str, int]:
        """Snapshot of group -> worker bindings (diagnostics/tests)."""
        return dict(self._binding)

    def pick_worker(self, spec, idle_workers: Sequence[int]) -> Optional[int]:
        """Choose a worker for ``spec`` from ``idle_workers``.

        ``idle_workers`` must be least-loaded-first (the pool's
        ``idle_workers()`` order).  Returns None when the unit must wait
        (no idle worker, or its bound worker is busy).
        """
        if not idle_workers:
            return None
        key = unit_affinity(spec)
        if key is None:
            return idle_workers[0]
        bound = self._binding.get(key)
        if bound is None:
            self._binding[key] = idle_workers[0]
            return idle_workers[0]
        return bound if bound in idle_workers else None

    def forget_worker(self, worker_id: int) -> None:
        """Unbind every group routed to a (now dead) worker."""
        for key in [k for k, wid in self._binding.items() if wid == worker_id]:
            del self._binding[key]


__all__ = [
    "AffinityRouter",
    "DEFAULT_DISPATCHES_PER_WORKER",
    "plan_batch_budget",
    "plan_batch_size",
    "topological_order",
    "transitive_dependents",
    "unit_affinity",
    "unit_cost",
    "unit_needs",
    "validate_units",
]
