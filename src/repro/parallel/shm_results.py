"""Zero-copy result return for pool workers (shared-memory transport).

Results used to come back from workers as one ``pickle`` blob over the
result queue's pipe.  For the payloads that matter — depth histograms,
per-geometry count arrays, miss curves — most of those bytes are numpy
array data, serialized byte-for-byte into the pickle stream, chunked
through a pipe, and deserialized again in the parent.

This module splits the two concerns, mirroring the transport pattern of
:func:`repro.trace.trace_io.share_trace`:

* **Large arrays travel as shared memory.**  A custom pickler diverts
  every ndarray of at least :data:`MIN_ARRAY_BYTES` out of the pickle
  stream into one per-result ``SharedMemory`` segment (one ``memcpy``
  in the worker), leaving a tiny persistent-id placeholder behind.
* **The pipe carries only a descriptor.**  The remaining pickle blob
  plus a :class:`ResultDescriptor` (segment name, per-array
  offset/dtype/shape, CRC32) — a few hundred bytes however large the
  arrays are.
* **The parent copies out and unlinks.**  :func:`decode_result`
  attaches the segment, verifies the CRC, materializes the arrays with
  one ``memcpy`` each, rebuilds the object graph, and unlinks the
  segment — ownership passes from worker to parent exactly once, so a
  result that is *received* can never leak its segment.

Failure handling is deliberately one-sided: if the worker cannot get a
segment (``/dev/shm`` full, platform limits) it silently falls back to
a plain pickle blob — shared memory can only make transport faster,
never break it.  A CRC mismatch on the parent side, by contrast, is a
hard :class:`~repro.errors.ParallelError`: scribbled result bytes must
never be mistaken for a simulation answer.
"""

from __future__ import annotations

import io
import pickle
import zlib
from dataclasses import dataclass
from typing import Any, Optional, Tuple

import numpy as np

from repro.errors import ParallelError

#: Arrays smaller than this stay inline in the pickle blob: a segment
#: (shm_open + mmap + unlink) costs more than piping a few KB.
MIN_ARRAY_BYTES = 64 * 1024

#: Array offsets inside the segment are aligned to this many bytes so
#: every reattached view is aligned for any numeric dtype.
_ALIGN = 16


@dataclass(frozen=True)
class ResultDescriptor:
    """Everything the parent needs to rebuild a result's diverted arrays.

    ``arrays`` holds one ``(offset, dtype_str, shape)`` triple per
    diverted ndarray, in persistent-id order (the order the pickler saw
    them).  ``crc`` is the CRC32 of the whole segment payload at encode
    time — shared memory has no filesystem checksums, so a corrupted
    segment must be caught here, not simulated from.
    """

    shm_name: str
    arrays: Tuple[Tuple[int, str, Tuple[int, ...]], ...]
    total_bytes: int
    crc: int


class _DivertingPickler(pickle.Pickler):
    """Pickler that pulls large ndarrays out of the stream by index."""

    def __init__(self, stream: io.BytesIO) -> None:
        super().__init__(stream, protocol=pickle.HIGHEST_PROTOCOL)
        self.arrays: list = []

    def persistent_id(self, obj: Any) -> Optional[int]:
        if (
            type(obj) is np.ndarray
            and obj.dtype != object
            and obj.nbytes >= MIN_ARRAY_BYTES
        ):
            self.arrays.append(np.ascontiguousarray(obj))
            return len(self.arrays) - 1
        return None


class _AttachingUnpickler(pickle.Unpickler):
    """Unpickler that resolves persistent ids against rebuilt arrays."""

    def __init__(self, stream: io.BytesIO, arrays) -> None:
        super().__init__(stream)
        self._arrays = arrays

    def persistent_load(self, pid: Any) -> Any:
        try:
            return self._arrays[pid]
        except (TypeError, IndexError):
            raise ParallelError(
                f"result blob references unknown diverted array {pid!r}"
            ) from None


def _creator_unregister(shm) -> None:
    """Hand segment ownership to the parent (see trace_io's twin helper).

    The worker *created* the segment, so the resource tracker would
    unlink it when the worker exits — possibly before the parent has
    decoded the result it describes.  The parent unlinks in
    :func:`decode_result` / :func:`discard_result` instead.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # noqa: BLE001 - best effort, platform-dependent
        pass


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def encode_result(result: Any) -> Tuple[bytes, Optional[ResultDescriptor]]:
    """Serialize ``result``; large arrays go to one shared segment.

    Returns ``(blob, descriptor)`` where ``descriptor`` is None when no
    array met the size threshold (or no segment could be created) — in
    that case ``blob`` is an ordinary self-contained pickle.
    """
    stream = io.BytesIO()
    pickler = _DivertingPickler(stream)
    pickler.dump(result)
    arrays = pickler.arrays
    if not arrays:
        return stream.getvalue(), None

    offsets = []
    offset = 0
    for array in arrays:
        offset = _aligned(offset)
        offsets.append(offset)
        offset += array.nbytes
    total = offset

    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(create=True, size=max(1, total))
    except (OSError, ValueError):
        # No segment to be had: fall back to the plain pickle path.
        return pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL), None
    try:
        specs = []
        for array, start in zip(arrays, offsets):
            view = np.frombuffer(
                shm.buf, dtype=array.dtype, count=array.size, offset=start
            )
            view[:] = array.reshape(-1)
            specs.append((start, array.dtype.str, tuple(array.shape)))
            del view
        payload = shm.buf[: max(1, total)]
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        payload.release()
        descriptor = ResultDescriptor(
            shm_name=shm.name,
            arrays=tuple(specs),
            total_bytes=total,
            crc=crc,
        )
    except BaseException:
        try:
            shm.unlink()
        except OSError:
            pass
        shm.close()
        raise
    _creator_unregister(shm)
    shm.close()
    return stream.getvalue(), descriptor


def decode_result(blob: bytes, descriptor: Optional[ResultDescriptor]) -> Any:
    """Rebuild a worker result; attaches and consumes its segment.

    With ``descriptor=None`` this is a plain ``pickle.loads``.
    Otherwise the segment is attached, CRC-verified, copied out (one
    ``memcpy`` per array) and unlinked — decode a descriptor at most
    once.

    Raises:
        ParallelError: when the segment is gone or its CRC disagrees
            with the descriptor.
    """
    if descriptor is None:
        return pickle.loads(blob)
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=descriptor.shm_name)
    except FileNotFoundError:
        raise ParallelError(
            f"result segment {descriptor.shm_name!r} is gone; it was "
            "already consumed or its worker never handed it over"
        ) from None
    _creator_unregister(shm)
    try:
        payload = shm.buf[: max(1, descriptor.total_bytes)]
        actual = zlib.crc32(payload) & 0xFFFFFFFF
        payload.release()
        if actual != descriptor.crc:
            raise ParallelError(
                f"result segment {descriptor.shm_name!r}: payload CRC "
                f"{actual:#010x} != descriptor {descriptor.crc:#010x}; "
                "the segment was corrupted in transit"
            )
        arrays = []
        for offset, dtype_str, shape in descriptor.arrays:
            dtype = np.dtype(dtype_str)
            count = 1
            for extent in shape:
                count *= int(extent)
            view = np.frombuffer(
                shm.buf, dtype=dtype, count=count, offset=offset
            )
            arrays.append(view.reshape(shape).copy())
            del view
        return _AttachingUnpickler(io.BytesIO(blob), arrays).load()
    finally:
        try:
            shm.unlink()
        except OSError:
            pass
        shm.close()


def discard_result(descriptor: Optional[ResultDescriptor]) -> None:
    """Release a result segment without decoding it (idempotent).

    Used when a ``"done"`` message is drained unconsumed — a quiesced
    pool, a cancelled batch — so abandoned results do not leak their
    segments until process exit.
    """
    if descriptor is None:
        return
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=descriptor.shm_name)
    except FileNotFoundError:
        return
    _creator_unregister(shm)
    try:
        shm.unlink()
    except OSError:
        pass
    shm.close()


__all__ = [
    "MIN_ARRAY_BYTES",
    "ResultDescriptor",
    "decode_result",
    "discard_result",
    "encode_result",
]
