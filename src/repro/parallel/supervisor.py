"""Supervision policy for the parallel experiment engine.

:mod:`repro.parallel.pool` gives the *mechanisms* — heartbeats, hang
detection, ``kill``/``respawn`` — and this module supplies the *policy*
that :func:`repro.parallel.engine.run_units_parallel` drives:

* **Kill accounting and quarantine.**  Every worker kill (crash, blown
  deadline, lost heartbeat, RSS trip) is charged to the unit that was in
  flight.  The unit is requeued until it has killed
  ``max_worker_kills`` workers, at which point it is *poisoned*: marked
  FAILED with a :class:`repro.errors.PoisonUnitError` and a structured
  ``detail`` record in the journal, so a segfaulting input cannot
  crash-loop the pool forever.
* **Exponential-backoff respawn.**  Consecutive kills double the delay
  before the next respawn (``backoff_base`` up to ``backoff_max``);
  a healthy completion resets it.  A bounded respawn budget converts
  "workers keep dying" into either a clean error or degraded-serial
  fallback instead of a fork bomb.
* **AIMD admission control.**  :class:`AIMDController` throttles how
  many units may be in flight at once: additive increase on every
  healthy completion, multiplicative decrease on every breach, never
  below 1 and never above the worker count.  A pool under memory or
  scheduling pressure sheds load instead of amplifying it.

The dataclass :class:`SupervisorConfig` is the single knob surface; the
engine treats ``supervision=None`` as "default supervision on" and
``SupervisorConfig(enabled=False)`` as the old unsupervised behavior.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ParallelError

__all__ = ["AIMDController", "SupervisorConfig", "UnitSupervisor"]


@dataclass(frozen=True)
class SupervisorConfig:
    """Tuning knobs for supervised parallel execution.

    The defaults are deliberately conservative: heartbeats every half
    second, hang declared only via deadline/heartbeat-timeout (no RSS
    cap), three worker kills before quarantine, and degraded-serial
    fallback allowed.  ``enabled=False`` restores the pre-supervision
    engine exactly (no heartbeat thread, crash == immediate failure).
    """

    enabled: bool = True
    #: Worker heartbeat cadence; ``None`` disables the beat thread.
    heartbeat_interval: Optional[float] = 0.5
    #: Silence longer than this is a hang; ``None`` = 6x the interval.
    heartbeat_timeout: Optional[float] = None
    #: Hard per-unit wall clock enforced by the parent; ``None`` = off.
    unit_deadline: Optional[float] = None
    #: Per-worker resident-set cap in KB; ``None`` = off.
    rss_limit_kb: Optional[int] = None
    #: Seconds between SIGTERM and SIGKILL when putting a worker down.
    kill_grace: float = 1.0
    #: Worker kills a single unit may cause before quarantine.
    max_worker_kills: int = 3
    #: Total respawn budget; ``None`` = units*max_worker_kills + jobs.
    max_respawns: Optional[int] = None
    backoff_base: float = 0.1
    backoff_max: float = 2.0
    #: Fall back to in-parent serial execution when the pool cannot be
    #: kept healthy (respawn budget exhausted); otherwise raise.
    degraded_ok: bool = True
    #: AIMD admission: +add per healthy completion, *mult per breach.
    aimd_add: float = 1.0
    aimd_mult: float = 0.5

    def validate(self) -> None:
        if self.max_worker_kills < 1:
            raise ParallelError(
                f"max_worker_kills must be >= 1, got {self.max_worker_kills}"
            )
        if self.max_respawns is not None and self.max_respawns < 0:
            raise ParallelError(
                f"max_respawns must be >= 0, got {self.max_respawns}"
            )
        if not 0.0 < self.aimd_mult < 1.0:
            raise ParallelError(
                f"aimd_mult must be in (0, 1), got {self.aimd_mult}"
            )
        if self.aimd_add <= 0.0:
            raise ParallelError(
                f"aimd_add must be positive, got {self.aimd_add}"
            )


class AIMDController:
    """Additive-increase / multiplicative-decrease admission window.

    The window is a float internally (so repeated decreases converge
    smoothly) but :meth:`get` reports the usable integer, clamped to
    ``[floor, cap]``.  One controller governs one pool.
    """

    def __init__(
        self,
        *,
        base: float,
        cap: float,
        add: float = 1.0,
        mult: float = 0.5,
        floor: float = 1.0,
    ) -> None:
        if floor < 1.0 or cap < floor:
            raise ParallelError(
                f"need 1 <= floor <= cap, got floor={floor} cap={cap}"
            )
        self._floor = float(floor)
        self._cap = float(cap)
        self._add = float(add)
        self._mult = float(mult)
        self._window = min(self._cap, max(self._floor, float(base)))
        self.increases = 0
        self.decreases = 0

    def feedback(self, ok: bool) -> None:
        """Report one completion (ok) or one breach (not ok)."""
        if ok:
            self._window = min(self._cap, self._window + self._add)
            self.increases += 1
        else:
            self._window = max(self._floor, self._window * self._mult)
            self.decreases += 1

    def get(self) -> int:
        """Current admission window as a usable integer (>= 1)."""
        return max(1, int(self._window))


@dataclass
class _UnitHealth:
    kills: int = 0
    reasons: List[str] = field(default_factory=list)
    last_error: Optional[str] = None


class UnitSupervisor:
    """Parent-side supervision state for one ``run_units_parallel`` call.

    The engine reports events (:meth:`record_kill`, :meth:`on_healthy`)
    and asks questions (:meth:`poisoned`, :meth:`window`,
    :meth:`consume_respawn`, :meth:`backoff_delay`); all policy numbers
    live in the :class:`SupervisorConfig`.
    """

    def __init__(self, config: SupervisorConfig, *, jobs: int, count: int):
        config.validate()
        self.config = config
        self.jobs = jobs
        self._units: Dict[int, _UnitHealth] = {}
        self._consecutive_kills = 0
        self._respawns_left = (
            config.max_respawns
            if config.max_respawns is not None
            else count * config.max_worker_kills + jobs
        )
        self._aimd = AIMDController(
            base=jobs, cap=jobs, add=config.aimd_add, mult=config.aimd_mult
        )
        # Totals for the suite report.
        self.crashes = 0
        self.hangs = 0
        self.requeues = 0
        #: Units requeued because a *batch sibling* took the worker down
        #: — they never ran, so they are not charged a kill and cannot
        #: be poisoned by a neighbor's crash.
        self.sibling_requeues = 0
        self.respawns = 0
        self.poisoned_units: List[str] = []
        self.degraded = False

    # -- kill accounting ------------------------------------------------

    def record_kill(self, index: int, *, reason: str, error: str) -> int:
        """Charge one worker kill to unit ``index``; return its total."""
        health = self._units.setdefault(index, _UnitHealth())
        health.kills += 1
        health.reasons.append(reason)
        health.last_error = error
        if reason == "crash":
            self.crashes += 1
        else:
            self.hangs += 1
        self._consecutive_kills += 1
        self._aimd.feedback(ok=False)
        return health.kills

    def poisoned(self, index: int) -> bool:
        health = self._units.get(index)
        return (
            health is not None
            and health.kills >= self.config.max_worker_kills
        )

    def poison_detail(self, index: int) -> Dict[str, object]:
        """Structured journal record for a quarantined unit."""
        health = self._units.get(index, _UnitHealth())
        return {
            "poison": True,
            "kills": health.kills,
            "reasons": list(health.reasons),
            "last_error": health.last_error,
        }

    def on_healthy(self) -> None:
        """A unit completed normally (done or ordinary error)."""
        self._consecutive_kills = 0
        self._aimd.feedback(ok=True)

    # -- respawn policy -------------------------------------------------

    def consume_respawn(self) -> bool:
        """Permission to respawn one worker; False = budget exhausted."""
        if self._respawns_left <= 0:
            return False
        self._respawns_left -= 1
        self.respawns += 1
        return True

    def backoff_delay(self) -> float:
        """Pre-respawn delay: doubles per consecutive kill, capped."""
        if self._consecutive_kills <= 1:
            return 0.0
        exponent = self._consecutive_kills - 2
        return min(
            self.config.backoff_max,
            self.config.backoff_base * (2.0**exponent),
        )

    # -- admission ------------------------------------------------------

    def window(self) -> int:
        """How many units may be in flight right now."""
        return self._aimd.get()

    # -- reporting ------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "crashes": self.crashes,
            "hangs": self.hangs,
            "requeues": self.requeues,
            "sibling_requeues": self.sibling_requeues,
            "respawns": self.respawns,
            "poisoned": list(self.poisoned_units),
            "degraded": self.degraded,
            "window": self._aimd.get(),
            "window_decreases": self._aimd.decreases,
        }
