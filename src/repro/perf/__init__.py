"""Performance subsystem: vectorized simulation kernels and benchmarking.

The paper's experiments are trace-driven passes whose cost is dominated
by per-reference inner loops.  This package supplies:

* :mod:`repro.perf.kernels` — exact numpy batch kernels for the three
  hottest loops (LRU stack distances, single-size TLB simulation, and
  sliding-window membership), used by :mod:`repro.stacksim`,
  :mod:`repro.sim.driver` and :mod:`repro.policy` behind a
  ``kernel="scalar"|"vector"`` switch;
* :mod:`repro.perf.twosize` — the epoch-segmented all-geometry kernel
  for two-page-size simulation (``run_with_policy``/``run_two_sizes``
  and ``SplitTLB``), exact against the scalar TLB models;
* :mod:`repro.perf.multiprog` — the multiprogrammed variant: context
  switches as universal epoch boundaries (FLUSH) or a context-prefix
  key fold (ASID), driving ``run_multiprogrammed`` and
  ``sweep_multiprogrammed``, exact against the scalar
  ``MultiprogrammedTLB`` oracle;
* :mod:`repro.perf.bench` — the ``repro-bench`` console entry point,
  which times a pinned suite and writes machine-readable
  ``BENCH_<rev>.json`` reports;
* :mod:`repro.perf.baseline` — the baseline comparator behind
  ``repro-bench --check``, the piece CI's ``bench-smoke`` job gates on.

See ``docs/performance.md`` for the kernel-switch contract, the report
schema and the CI regression gate.
"""

from repro.perf.kernels import (
    KERNEL_AUTO,
    KERNEL_SCALAR,
    KERNEL_VECTOR,
    previous_occurrences,
    resolve_kernel,
    stack_depths,
    window_events,
)
from repro.perf.multiprog import (
    MultiprogCounts,
    count_switches,
    multiprog_counts,
)
from repro.perf.twosize import (
    SplitCounts,
    TwoSizeCounts,
    split_two_size_counts,
    two_size_counts,
)

__all__ = [
    "KERNEL_AUTO",
    "KERNEL_SCALAR",
    "KERNEL_VECTOR",
    "MultiprogCounts",
    "SplitCounts",
    "TwoSizeCounts",
    "count_switches",
    "multiprog_counts",
    "previous_occurrences",
    "resolve_kernel",
    "split_two_size_counts",
    "stack_depths",
    "two_size_counts",
    "window_events",
]
