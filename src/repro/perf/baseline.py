"""Baseline comparison for ``repro-bench`` reports (the CI gate).

A benchmark report is only useful against a reference point.  This
module loads a committed baseline report, matches its units against a
freshly measured one, and flags regressions.

The compared figure is each unit's **speedup ratio**, not its wall
time: wall times differ wildly across machines (a laptop vs a CI
runner), but a ratio between two measurements on the *same* machine in
the *same* process is stable, so a committed ``baseline.json`` remains
meaningful wherever the check runs.  For kernel units the ratio is
vector/scalar; for the suite-level units it is serial/parallel wall
time and cold/warm result-cache time.  A unit regresses when its
measured speedup falls more than ``threshold_percent`` below the
baseline speedup; a baseline unit may carry its own
``threshold_percent`` (the suite-level units do — scheduling and I/O
noise dwarf kernel timing noise) which overrides the global one.

Failure modes are deliberately split:

* a *regression* is a valid comparison with a bad outcome — reported in
  the :class:`ComparisonResult`, exit code 1 at the CLI;
* a *broken baseline* (missing file, invalid JSON, wrong schema,
  mismatched units) raises :class:`~repro.errors.BenchmarkError` —
  exit code 2 at the CLI — so CI can distinguish "the code got slower"
  from "the gate itself is broken".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.errors import BenchmarkError

#: Schema identifier stamped into every report; bump on layout changes.
#: ``/2`` added suite-level units (parallel sweep wall time, result-cache
#: cold/warm) alongside the kernel units, and per-unit
#: ``threshold_percent`` overrides in the baseline.  ``/3`` added the
#: ``suite/two-size-kernel`` all-geometry sweep unit (epoch-segmented
#: two-page-size kernel vs the scalar TLB walk).  ``/4`` added
#: ``suite/multiprog-kernel`` (the multiprogrammed quantum x policy x
#: geometry grid vs the scalar ``MultiprogrammedTLB`` walk).  ``/5``
#: added ``suite/supervised-sweep`` (the run_units engine with
#: supervision off vs on, gating supervision overhead at 5%).  ``/6``:
#: ``suite/parallel-sweep`` grew a second measured point
#: (``parallel4_seconds``/``speedup_jobs4`` at double the worker count)
#: and reports may carry a ``profile`` block (per-phase timing totals
#: and shared-pool dispatch stats) when run with ``--profile``.  ``/7``
#: added the scalar-island closers: ``suite/twolevel-kernel`` (victim
#: stream reconstruction vs composite TwoLevelTLB walks),
#: ``suite/sampled-replacement`` (sampled-set FIFO/random vs the scalar
#: replacement walk) and ``suite/multiprog-twosize`` (the composed
#: multiprogrammed two-page-size kernel vs per-program policy walks).
REPORT_SCHEMA = "repro-bench/7"


def load_report(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate a ``repro-bench`` JSON report.

    Raises:
        BenchmarkError: if the file is missing, not valid JSON, or not a
            report of the expected schema.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise BenchmarkError(f"cannot read baseline {path}: {error}") from error
    try:
        report = json.loads(text)
    except json.JSONDecodeError as error:
        raise BenchmarkError(
            f"baseline {path} is not valid JSON: {error}"
        ) from error
    if not isinstance(report, dict):
        raise BenchmarkError(f"baseline {path} is not a JSON object")
    schema = report.get("schema")
    if schema != REPORT_SCHEMA:
        raise BenchmarkError(
            f"baseline {path} has schema {schema!r}; expected {REPORT_SCHEMA!r} "
            "(regenerate it with the current repro-bench)"
        )
    units = report.get("units")
    if not isinstance(units, list) or not units:
        raise BenchmarkError(f"baseline {path} contains no benchmark units")
    for unit in units:
        if not isinstance(unit, dict) or "name" not in unit:
            raise BenchmarkError(f"baseline {path} has a malformed unit entry")
    return report


@dataclass(frozen=True)
class UnitComparison:
    """Outcome of comparing one benchmark unit against its baseline."""

    name: str
    baseline_speedup: float
    current_speedup: float
    change_percent: float
    regressed: bool

    def describe(self) -> str:
        """One human-readable line for the CLI output."""
        verdict = "REGRESSION" if self.regressed else "ok"
        return (
            f"{self.name}: speedup {self.current_speedup:.2f}x vs baseline "
            f"{self.baseline_speedup:.2f}x ({self.change_percent:+.1f}%) "
            f"[{verdict}]"
        )


@dataclass(frozen=True)
class ComparisonResult:
    """All unit comparisons plus the overall verdict."""

    threshold_percent: float
    units: List[UnitComparison] = field(default_factory=list)

    @property
    def regressions(self) -> List[UnitComparison]:
        return [unit for unit in self.units if unit.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _unit_speedup(unit: Dict[str, Any], source: str) -> float:
    try:
        speedup = float(unit["speedup"])
    except (KeyError, TypeError, ValueError) as error:
        raise BenchmarkError(
            f"{source} unit {unit.get('name', '?')!r} has no usable "
            "'speedup' field"
        ) from error
    if speedup <= 0:
        raise BenchmarkError(
            f"{source} unit {unit.get('name', '?')!r} has non-positive "
            f"speedup {speedup}"
        )
    return speedup


@dataclass(frozen=True)
class FloorViolation:
    """One absolute-floor check that failed."""

    name: str
    floor: float
    measured: float

    def describe(self) -> str:
        return (
            f"{self.name}: speedup {self.measured:.2f}x is below the "
            f"required floor {self.floor:.2f}x"
        )


def check_floors(
    report: Dict[str, Any], floors: Dict[str, float]
) -> List[FloorViolation]:
    """Check absolute speedup floors against a fresh report.

    Baseline comparison is *relative* — it cannot catch "parallelism
    has always been off on this runner" because the baseline would be
    just as slow.  A floor is absolute: ``suite/parallel-sweep >= 1.0``
    means the parallel run must beat the serial one on this machine,
    full stop.  Returns the violations (empty = all floors hold).

    Raises:
        BenchmarkError: when a floor names a unit absent from the
            report — a silently unenforceable floor is a broken gate.
    """
    units = {unit.get("name"): unit for unit in report.get("units", [])}
    violations: List[FloorViolation] = []
    for name, floor in floors.items():
        unit = units.get(name)
        if unit is None:
            raise BenchmarkError(
                f"--floor names unknown benchmark unit {name!r}; "
                "it is not in the current report"
            )
        measured = _unit_speedup(unit, "current")
        if measured < floor:
            violations.append(
                FloorViolation(name=name, floor=floor, measured=measured)
            )
    return violations


def compare_reports(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold_percent: float,
) -> ComparisonResult:
    """Compare a fresh report against a baseline, unit by unit.

    Every baseline unit must be present in the current report (a
    vanished unit would silently un-gate it); extra current units are
    fine — they are simply new and have nothing to compare against.

    Raises:
        BenchmarkError: on mismatched or malformed units.
    """
    if threshold_percent < 0:
        raise BenchmarkError(
            f"threshold must be non-negative, got {threshold_percent}"
        )
    current_units = {
        unit["name"]: unit for unit in current.get("units", [])
    }
    comparisons: List[UnitComparison] = []
    for unit in baseline["units"]:
        name = unit["name"]
        measured = current_units.get(name)
        if measured is None:
            raise BenchmarkError(
                f"baseline unit {name!r} is missing from the current run; "
                "the suites do not match (regenerate the baseline?)"
            )
        base_speedup = _unit_speedup(unit, "baseline")
        cur_speedup = _unit_speedup(measured, "current")
        change = (cur_speedup / base_speedup - 1.0) * 100.0
        unit_threshold = unit.get("threshold_percent", threshold_percent)
        try:
            unit_threshold = float(unit_threshold)
        except (TypeError, ValueError) as error:
            raise BenchmarkError(
                f"baseline unit {name!r} has a non-numeric "
                f"threshold_percent {unit_threshold!r}"
            ) from error
        if unit_threshold < 0:
            raise BenchmarkError(
                f"baseline unit {name!r} has a negative "
                f"threshold_percent {unit_threshold}"
            )
        regressed = cur_speedup < base_speedup * (1.0 - unit_threshold / 100.0)
        comparisons.append(
            UnitComparison(
                name=name,
                baseline_speedup=base_speedup,
                current_speedup=cur_speedup,
                change_percent=change,
                regressed=regressed,
            )
        )
    return ComparisonResult(threshold_percent=threshold_percent, units=comparisons)
