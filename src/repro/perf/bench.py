"""``repro-bench``: the pinned performance suite and its CLI.

Runs a fixed set of benchmark units — the simulation hot paths behind
the figures, each timed under both the scalar oracle and the vector
kernel — and writes a machine-readable ``BENCH_<rev>.json`` report:
wall time, references/second and the vector/scalar speedup per unit,
plus peak RSS for the process.

``suite/two-size-kernel`` is the all-geometry two-page-size sweep (the
Table 5.1 shapes from one epoch-segmented pass, timed scalar vs vector
like the kernel units), and ``suite/multiprog-kernel`` its
multiprogrammed sibling (a quantum x policy x geometry grid, one
kernel pass per cell vs the scalar ``MultiprogrammedTLB`` walk).
Three further kernel units close the former scalar islands:
``suite/twolevel-kernel`` (two-level hierarchies served from one
reconstructed L1-miss stream vs composite ``TwoLevelTLB`` walks),
``suite/sampled-replacement`` (set-sampled FIFO/random estimation —
its "vector" arm maps to the sampled kernel — vs the scalar
replacement walk) and ``suite/multiprog-twosize`` (the composed
multiprogrammed two-page-size kernel vs per-program policy walks).
Two *suite-level* units ride along:

* ``suite/parallel-sweep`` — one configuration sweep timed serially,
  again at ``--jobs N`` through the persistent shared worker pool, and
  once more at ``2N`` (the scaling point: ``speedup_jobs4`` with the
  default ``--jobs 2``), recording the wall times and the
  serial/parallel speedups (~1x on a single core, ~N on N).  Every
  parallel sweep must produce results identical to the serial run or
  the unit raises.  ``--floor suite/parallel-sweep=1.0`` turns "the
  parallel run beats serial on this machine" into an absolute gate.
* ``suite/supervised-sweep`` — the same sweep shaped as experiment
  units through ``run_units`` at ``--jobs N``, once with supervision
  disabled and once with the default supervision (heartbeats, AIMD
  admission, kill accounting), recording the unsupervised/supervised
  ratio.  Its baseline threshold is deliberately tight (5%): the
  supervision layer must stay effectively free on healthy runs.
* ``suite/result-cache`` — one two-page-size simulation timed against
  an empty content-addressed cache (cold: simulate + store) and again
  against the populated one (warm: pure lookup), recording the
  cold/warm speedup.

All three carry a per-unit regression threshold in the baseline (their
ratios have different noise floors than kernel ratios) but are gated by
the same comparator.

The suite is *pinned*: unit names, workloads, trace lengths and TLB
geometries are constants of this module, so reports from different
revisions are comparable and a committed ``benchmarks/baseline.json``
stays meaningful.  The headline unit is the paper's 32-entry two-way
set-associative single-size simulation (Table 5.1's largest
conventional TLB), which is where the batched stack-distance kernel
pays off most.

``repro-bench --check --baseline benchmarks/baseline.json`` compares
the fresh report against the committed one (see
:mod:`repro.perf.baseline`) and exits 1 on regression, 2 on a broken
baseline — the contract CI's ``bench-smoke`` job gates on.

Determinism: every trace comes from
:func:`repro.workloads.registry.generate_trace` seeded by the ``--seed``
argument — benchmark inputs never depend on global RNG state.
"""

from __future__ import annotations

import argparse
import functools
import json
import os
import platform
import resource
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import BenchmarkError, ReproError
from repro.parallel.cache import SimulationCache
from repro.parallel.pool import shared_pool_stats
from repro.perf.baseline import (
    REPORT_SCHEMA,
    check_floors,
    compare_reports,
    load_report,
)
from repro.perf.kernels import KERNEL_SAMPLED, KERNEL_SCALAR, KERNEL_VECTOR
from repro.policy.dynamic_ws import dynamic_average_working_set
from repro.sim.config import (
    SingleSizeScheme,
    TLBConfig,
    TwoLevelConfig,
    TwoSizeScheme,
)
from repro.sim.driver import run_single_size, run_two_sizes, sweep_two_level
from repro.sim.multiprog import (
    sweep_multiprogrammed,
    sweep_multiprogrammed_two_sizes,
)
from repro.sim.sweep import sweep_single_size
from repro.stacksim.lru_stack import lru_miss_curve
from repro.tlb.indexing import IndexingScheme, ProbeStrategy
from repro.trace.record import Trace
from repro.trace.trace_io import (
    SharedTraceHandle,
    attach_shared_trace,
    share_trace,
)
from repro.types import PAIR_4KB_32KB
from repro.workloads.registry import generate_trace

#: Trace lengths for the full and --quick suites.
FULL_LENGTH = 400_000
QUICK_LENGTH = 60_000

#: Timing repeats (the minimum is reported) for full and --quick runs.
FULL_REPEATS = 3
QUICK_REPEATS = 2

_PAGE_4KB = SingleSizeScheme(4096)
_CONFIG_32E_2WAY = TLBConfig(entries=32, associativity=2)
_CONFIG_16E_FA = TLBConfig(entries=16)
_TWO_SIZE = TwoSizeScheme(pair=PAIR_4KB_32KB, window=10_000)


@dataclass(frozen=True)
class BenchUnit:
    """One pinned benchmark: a workload driven through one hot path.

    Attributes:
        name: stable identifier used for baseline matching.
        workload: registry workload the trace comes from.
        runner: callable executing the unit once under a given kernel.
    """

    name: str
    workload: str
    runner: Callable[[Trace, str], Any]


def _unit_single_size(config: TLBConfig) -> Callable[[Trace, str], Any]:
    def run(trace: Trace, kernel: str) -> Any:
        return run_single_size(trace, _PAGE_4KB, config, kernel=kernel)

    return run


def _unit_curve(trace: Trace, kernel: str) -> Any:
    pages = trace.addresses >> np.uint32(12)
    return lru_miss_curve(pages, max_capacity=64, kernel=kernel)


def _unit_two_size(trace: Trace, kernel: str) -> Any:
    return run_two_sizes(trace, _TWO_SIZE, [_CONFIG_16E_FA], kernel=kernel)


#: Pinned geometries for ``suite/two-size-kernel``: the Table 5.1 shapes
#: (16/32-entry two-way under each indexing scheme, sequential exact
#: probing included) plus the fully associative TLBs — all evaluated
#: from one epoch-segmented trace pass under the vector kernel.
_TWO_SIZE_SWEEP_CONFIGS = (
    _CONFIG_16E_FA,
    TLBConfig(entries=32),
    TLBConfig(entries=16, associativity=2, scheme=IndexingScheme.SMALL_INDEX),
    TLBConfig(entries=16, associativity=2, scheme=IndexingScheme.LARGE_INDEX),
    TLBConfig(entries=32, associativity=2, scheme=IndexingScheme.LARGE_INDEX),
    TLBConfig(entries=16, associativity=2, scheme=IndexingScheme.EXACT_INDEX),
    TLBConfig(entries=32, associativity=2, scheme=IndexingScheme.EXACT_INDEX),
    TLBConfig(
        entries=32,
        associativity=2,
        scheme=IndexingScheme.EXACT_INDEX,
        probe_strategy=ProbeStrategy.SEQUENTIAL,
    ),
)


def _unit_two_size_sweep(trace: Trace, kernel: str) -> Any:
    return run_two_sizes(
        trace, _TWO_SIZE, list(_TWO_SIZE_SWEEP_CONFIGS), kernel=kernel
    )


#: Pinned grid for ``suite/multiprog-kernel``: the workload trace is cut
#: into three contiguous "programs" and interleaved at two scheduling
#: quanta under both context-switch policies, over the single-size
#: Table 5.1 shapes.  Under the vector kernel each (quantum, policy)
#: cell is one epoch-segmented pass serving all four geometries; the
#: scalar side walks the same grid through ``MultiprogrammedTLB``.
_MULTIPROG_QUANTA = (2_000, 8_000)
_MULTIPROG_CONFIGS = (
    _CONFIG_16E_FA,
    TLBConfig(entries=32),
    TLBConfig(entries=16, associativity=2, scheme=IndexingScheme.SMALL_INDEX),
    TLBConfig(entries=32, associativity=2, scheme=IndexingScheme.SMALL_INDEX),
)


def _unit_multiprog_sweep(trace: Trace, kernel: str) -> Any:
    third = len(trace) // 3
    programs = [trace[index * third : (index + 1) * third] for index in range(3)]
    return sweep_multiprogrammed(
        programs,
        list(_MULTIPROG_CONFIGS),
        quanta=_MULTIPROG_QUANTA,
        kernel=kernel,
    )


def _unit_working_set(trace: Trace, kernel: str) -> Any:
    return dynamic_average_working_set(
        trace, PAIR_4KB_32KB, 10_000, kernel=kernel
    )


#: Pinned hierarchies for ``suite/twolevel-kernel``: one 4-entry fully
#: associative micro-TLB backed by each of three L2 geometries, all
#: served from a single reconstructed L1-miss stream under the vector
#: kernel; the scalar side walks composite ``TwoLevelTLB`` models.
_TWOLEVEL_L1 = TLBConfig(entries=4)
_TWOLEVEL_CONFIGS = (
    TwoLevelConfig(level1=_TWOLEVEL_L1, level2=TLBConfig(entries=32)),
    TwoLevelConfig(
        level1=_TWOLEVEL_L1, level2=TLBConfig(entries=64, associativity=2)
    ),
    TwoLevelConfig(
        level1=_TWOLEVEL_L1,
        level2=TLBConfig(
            entries=64,
            associativity=2,
            probe_strategy=ProbeStrategy.SEQUENTIAL,
        ),
    ),
)


def _unit_twolevel_sweep(trace: Trace, kernel: str) -> Any:
    return sweep_two_level(
        trace, _TWO_SIZE, list(_TWOLEVEL_CONFIGS), kernel=kernel
    )


#: Pinned shapes for ``suite/sampled-replacement``: set-associative
#: FIFO and random TLBs, sized so the sampled kernel simulates a
#: quarter of the sets.  The unit's "vector" arm maps to the sampled
#: kernel — the estimator is the fast path these policies get.
_SAMPLED_CONFIGS = (
    TLBConfig(entries=128, associativity=2, replacement="fifo"),
    TLBConfig(entries=128, associativity=2, replacement="random"),
    TLBConfig(entries=256, associativity=4, replacement="fifo"),
)


def _unit_sampled_replacement(trace: Trace, kernel: str) -> Any:
    resolved = KERNEL_SAMPLED if kernel == KERNEL_VECTOR else kernel
    return [
        run_single_size(trace, _PAGE_4KB, config, kernel=resolved)
        for config in _SAMPLED_CONFIGS
    ]


#: Pinned grid for ``suite/multiprog-twosize``: the trace cut into
#: three "programs", each running its own dynamic promotion policy,
#: interleaved at two quanta under both context-switch policies over
#: two-size-capable geometries — the composed kernel's home turf.
_MULTIPROG2_QUANTA = (2_000, 8_000)
_MULTIPROG2_CONFIGS = (
    _CONFIG_16E_FA,
    TLBConfig(entries=32),
    TLBConfig(entries=32, associativity=2, scheme=IndexingScheme.EXACT_INDEX),
)


def _unit_multiprog_twosize(trace: Trace, kernel: str) -> Any:
    third = len(trace) // 3
    programs = [trace[index * third : (index + 1) * third] for index in range(3)]
    return sweep_multiprogrammed_two_sizes(
        programs,
        list(_MULTIPROG2_CONFIGS),
        scheme=_TWO_SIZE,
        quanta=_MULTIPROG2_QUANTA,
        kernel=kernel,
    )


#: The pinned suite, in reporting order.  The first unit is the headline
#: single-size simulation the acceptance gate refers to.
SUITE = (
    BenchUnit("single_size/32e-2way", "matrix300", _unit_single_size(_CONFIG_32E_2WAY)),
    BenchUnit("single_size/16e-FA", "matrix300", _unit_single_size(_CONFIG_16E_FA)),
    BenchUnit("stacksim/curve-64", "espresso", _unit_curve),
    BenchUnit("policy/two-size-16e-FA", "espresso", _unit_two_size),
    BenchUnit("policy/working-set", "matrix300", _unit_working_set),
    BenchUnit("suite/two-size-kernel", "espresso", _unit_two_size_sweep),
    BenchUnit("suite/multiprog-kernel", "matrix300", _unit_multiprog_sweep),
    BenchUnit("suite/twolevel-kernel", "espresso", _unit_twolevel_sweep),
    BenchUnit("suite/sampled-replacement", "matrix300", _unit_sampled_replacement),
    BenchUnit("suite/multiprog-twosize", "espresso", _unit_multiprog_twosize),
)

#: Suite-level unit names, in reporting order (after the kernel units).
SUITE_LEVEL = (
    "suite/parallel-sweep",
    "suite/supervised-sweep",
    "suite/result-cache",
)

#: Regression threshold for the noisy suite-level units: scheduling and
#: filesystem noise dwarf kernel timing noise, so the gate only trips on
#: a gross loss (parallelism or caching silently turned off).
SUITE_LEVEL_THRESHOLD = 50.0

#: Threshold for ``suite/supervised-sweep``: supervision must cost less
#: than this on a healthy run.  The ratio compares two runs of the same
#: engine in the same process, so its noise floor is far below the other
#: suite-level units'.
SUPERVISION_THRESHOLD = 5.0

#: Pinned shapes for ``suite/parallel-sweep``: four page sizes over
#: three geometries → eight independent stack-pass families.
_SWEEP_PAGE_SIZES = (4096, 8192, 16384, 32768)
_SWEEP_CONFIGS = (
    _CONFIG_32E_2WAY,
    _CONFIG_16E_FA,
    TLBConfig(entries=64, associativity=4),
)


def _time_kernel(
    unit: BenchUnit, trace: Trace, kernel: str, repeats: int
) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        unit.runner(trace, kernel)
        best = min(best, time.perf_counter() - start)
    return best


def _time_call(func: Callable[[], Any], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _suite_parallel_sweep(
    trace: Trace, repeats: int, jobs: int
) -> Tuple[Dict[str, Any], Optional[Dict[str, float]]]:
    """Time one pinned sweep serially, at ``jobs`` and at ``2*jobs``.

    The second parallel point (``speedup_jobs4`` at double the worker
    count, 4 with the default ``--jobs 2``) shows whether the engine
    actually *scales* or merely breaks even — on a multi-core runner
    the jobs-4 figure should pull further ahead of serial than jobs-2.
    Every parallel run is checked for bit-identical equivalence with
    the serial results before anything is timed.

    Returns the unit record plus the shared pool's transport stats from
    the last timed parallel run (``--profile`` surfaces them).
    """
    sizes = list(_SWEEP_PAGE_SIZES)
    configs = list(_SWEEP_CONFIGS)
    jobs4 = jobs * 2
    serial_results = sweep_single_size(trace, sizes, configs)
    for workers in (jobs, jobs4):
        parallel_results = sweep_single_size(
            trace, sizes, configs, jobs=workers
        )
        if serial_results != parallel_results:
            raise BenchmarkError(
                f"suite/parallel-sweep: jobs={workers} sweep results "
                "diverged from the serial run — the engines are not "
                "equivalent"
            )
    serial_seconds = _time_call(
        lambda: sweep_single_size(trace, sizes, configs), repeats
    )
    parallel4_seconds = _time_call(
        lambda: sweep_single_size(trace, sizes, configs, jobs=jobs4), repeats
    )
    parallel_seconds = _time_call(
        lambda: sweep_single_size(trace, sizes, configs, jobs=jobs), repeats
    )
    pool_stats = shared_pool_stats()
    return {
        "name": "suite/parallel-sweep",
        "workload": trace.name,
        "references": len(trace),
        "repeats": repeats,
        "kind": "suite",
        "jobs": jobs,
        "jobs4": jobs4,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "parallel4_seconds": parallel4_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "speedup_jobs4": serial_seconds / parallel4_seconds,
        "threshold_percent": SUITE_LEVEL_THRESHOLD,
    }, pool_stats


def _supervised_sweep_unit(
    handle: SharedTraceHandle,
    size: int,
    configs: Tuple[TLBConfig, ...],
) -> Any:
    """One ``suite/supervised-sweep`` unit: a single-page-size sweep.

    Module-level (and fed a :class:`SharedTraceHandle`, not a trace) so
    the whole unit pickles small — that is what lets ``run_units`` ship
    it to the *persistent shared pool* instead of forking a private
    pool per timing repeat.  Both arms of the supervised-sweep unit pay
    the same dispatch path, so their ratio isolates supervision cost.
    """
    trace = attach_shared_trace(handle)
    return sweep_single_size(trace, [size], list(configs))


def _suite_supervised_sweep(
    trace: Trace, repeats: int, jobs: int
) -> Tuple[Dict[str, Any], Optional[Dict[str, Any]]]:
    """Measure what default supervision costs on a healthy parallel run.

    The pinned sweep is reshaped into one experiment unit per page size
    and driven through ``run_units`` twice at the same worker count:
    once with ``SupervisorConfig(enabled=False)`` (the bare engine) and
    once with default supervision (heartbeat threads, hang detection,
    AIMD admission, kill accounting).  The gated figure is the
    unsupervised/supervised wall-time ratio, capped at 1.0 — the guard
    is one-sided, only overhead can regress it.

    Returns the unit record plus the supervised run's per-unit timing
    breakdown (dispatch/queue-wait/run/transfer/flush seconds) for
    ``--profile``.
    """
    from repro.parallel.supervisor import SupervisorConfig
    from repro.robustness.executor import UnitSpec, run_units

    sizes = list(_SWEEP_PAGE_SIZES)
    configs = tuple(_SWEEP_CONFIGS)
    handle = share_trace(trace)
    last_timing: List[Optional[Dict[str, Any]]] = [None]

    def make_units() -> List[UnitSpec]:
        return [
            UnitSpec(
                name=f"sweep/{size}",
                run=functools.partial(
                    _supervised_sweep_unit, handle, size, configs
                ),
            )
            for size in sizes
        ]

    def run(supervision: Optional[SupervisorConfig]) -> List[Any]:
        report = run_units(make_units(), jobs=jobs, supervision=supervision)
        if not report.ok:
            failed = ", ".join(o.name for o in report.failures)
            raise BenchmarkError(
                f"suite/supervised-sweep: units failed during timing: {failed}"
            )
        last_timing[0] = report.timing
        return [outcome.result for outcome in report.outcomes]

    bare = SupervisorConfig(enabled=False)
    if run(bare) != run(None):
        raise BenchmarkError(
            "suite/supervised-sweep: supervised results diverged from the "
            "unsupervised run — supervision changed the answers"
        )
    unsupervised_seconds = _time_call(lambda: run(bare), repeats)
    supervised_seconds = _time_call(lambda: run(None), repeats)
    raw_speedup = unsupervised_seconds / supervised_seconds
    return {
        "name": "suite/supervised-sweep",
        "workload": trace.name,
        "references": len(trace),
        "repeats": repeats,
        "kind": "suite",
        "jobs": jobs,
        "unsupervised_seconds": unsupervised_seconds,
        "supervised_seconds": supervised_seconds,
        "raw_speedup": raw_speedup,
        "speedup": min(raw_speedup, 1.0),
        "threshold_percent": SUPERVISION_THRESHOLD,
    }, last_timing[0]


def _suite_result_cache(trace: Trace, repeats: int) -> Dict[str, Any]:
    """Time one simulation against a cold and then a warm result cache."""
    scheme = _TWO_SIZE
    configs = [_CONFIG_16E_FA]

    def cold() -> Any:
        with tempfile.TemporaryDirectory() as tmp:
            cache = SimulationCache.open(tmp)
            return run_two_sizes(trace, scheme, configs, cache=cache)

    cold_seconds = _time_call(cold, repeats)

    with tempfile.TemporaryDirectory() as tmp:
        cache = SimulationCache.open(tmp)
        uncached = run_two_sizes(trace, scheme, configs, cache=cache)
        warm_seconds = _time_call(
            lambda: run_two_sizes(trace, scheme, configs, cache=cache),
            repeats,
        )
        warm = run_two_sizes(trace, scheme, configs, cache=cache)
    if uncached != warm:
        raise BenchmarkError(
            "suite/result-cache: cached results diverged from the "
            "simulated ones — the cache is not transparent"
        )
    # The raw cold/warm ratio runs into the hundreds and swings with
    # filesystem noise; the gated figure is capped so the comparator
    # only trips when caching degrades toward recomputation (~1x), not
    # when a warm lookup takes 0.3ms instead of 0.15ms.
    raw_speedup = cold_seconds / warm_seconds
    return {
        "name": "suite/result-cache",
        "workload": trace.name,
        "references": len(trace),
        "repeats": repeats,
        "kind": "suite",
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "raw_speedup": raw_speedup,
        "speedup": min(raw_speedup, 25.0),
        "threshold_percent": SUITE_LEVEL_THRESHOLD,
    }


def run_suite(
    *,
    quick: bool = False,
    seed: int = 0,
    repeats: Optional[int] = None,
    revision: Optional[str] = None,
    jobs: int = 2,
    profile: bool = False,
) -> Dict[str, Any]:
    """Execute the pinned suite and return the report as a dict.

    With ``profile=True`` the report gains a ``profile`` block: the
    shared pool's transport stats from the last timed parallel sweep
    (batches, tasks, queue-wait/run/encode/transfer/decode seconds) and
    the supervised sweep's per-unit timing breakdown
    (dispatch/queue-wait/run/result-transfer/flush per unit, plus
    totals).  Measurement itself is unchanged — the data is collected
    either way; ``profile`` only controls whether it is reported.
    """
    length = QUICK_LENGTH if quick else FULL_LENGTH
    if repeats is None:
        repeats = QUICK_REPEATS if quick else FULL_REPEATS
    if repeats <= 0:
        raise BenchmarkError(f"repeats must be positive, got {repeats}")
    if jobs < 2:
        raise BenchmarkError(
            f"jobs must be at least 2 for suite/parallel-sweep, got {jobs}"
        )

    started = time.perf_counter()
    units: List[Dict[str, Any]] = []
    traces: Dict[str, Trace] = {}
    for unit in SUITE:
        trace = traces.get(unit.workload)
        if trace is None:
            trace = generate_trace(unit.workload, length, seed)
            traces[unit.workload] = trace
        scalar_seconds = _time_kernel(unit, trace, KERNEL_SCALAR, repeats)
        vector_seconds = _time_kernel(unit, trace, KERNEL_VECTOR, repeats)
        references = len(trace)
        units.append(
            {
                "name": unit.name,
                "workload": unit.workload,
                "references": references,
                "repeats": repeats,
                "kind": "kernel",
                "scalar_seconds": scalar_seconds,
                "vector_seconds": vector_seconds,
                "scalar_refs_per_sec": references / scalar_seconds,
                "vector_refs_per_sec": references / vector_seconds,
                "speedup": scalar_seconds / vector_seconds,
            }
        )

    sweep_unit, pool_stats = _suite_parallel_sweep(
        traces["matrix300"], repeats, jobs
    )
    units.append(sweep_unit)
    supervised_unit, unit_timing = _suite_supervised_sweep(
        traces["matrix300"], repeats, jobs
    )
    units.append(supervised_unit)
    units.append(_suite_result_cache(traces["espresso"], repeats))

    report: Dict[str, Any] = {
        "schema": REPORT_SCHEMA,
        "revision": revision or detect_revision(),
        "quick": quick,
        "seed": seed,
        "trace_length": length,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": f"{platform.system()}-{platform.machine()}",
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "wall_seconds": time.perf_counter() - started,
        "units": units,
    }
    if profile:
        report["profile"] = {
            "parallel_sweep_pool": pool_stats,
            "supervised_sweep_timing": unit_timing,
        }
    return report


def detect_revision() -> str:
    """Short git revision of the working tree, or ``"local"``."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "local"
    if proc.returncode != 0:
        return "local"
    return proc.stdout.strip() or "local"


def write_report(report: Dict[str, Any], output_dir: Path) -> Path:
    """Write ``BENCH_<rev>.json`` under ``output_dir``; return the path."""
    output_dir.mkdir(parents=True, exist_ok=True)
    path = output_dir / f"BENCH_{report['revision']}.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path


def _render_report(report: Dict[str, Any]) -> str:
    lines = [
        f"repro-bench @ {report['revision']} "
        f"({'quick' if report['quick'] else 'full'}, "
        f"{report['trace_length']} refs, numpy {report['numpy']})"
    ]
    for unit in report["units"]:
        if "serial_seconds" in unit:
            line = (
                f"  {unit['name']:24s} [{unit['workload']}] "
                f"serial {unit['serial_seconds']:.3f}s "
                f"jobs={unit['jobs']} {unit['parallel_seconds']:.3f}s "
                f"speedup {unit['speedup']:.1f}x"
            )
            if "speedup_jobs4" in unit:
                line += (
                    f" | jobs={unit['jobs4']} "
                    f"{unit['parallel4_seconds']:.3f}s "
                    f"speedup {unit['speedup_jobs4']:.1f}x"
                )
            lines.append(line)
        elif "supervised_seconds" in unit:
            lines.append(
                f"  {unit['name']:24s} [{unit['workload']}] "
                f"bare {unit['unsupervised_seconds']:.3f}s "
                f"supervised {unit['supervised_seconds']:.3f}s "
                f"ratio {unit['raw_speedup']:.2f}x"
            )
        elif "cold_seconds" in unit:
            lines.append(
                f"  {unit['name']:24s} [{unit['workload']}] "
                f"cold {unit['cold_seconds']:.3f}s "
                f"warm {unit['warm_seconds']:.3f}s "
                f"speedup {unit['speedup']:.1f}x"
            )
        else:
            lines.append(
                f"  {unit['name']:24s} [{unit['workload']}] "
                f"scalar {unit['scalar_seconds']:.3f}s "
                f"vector {unit['vector_seconds']:.3f}s "
                f"speedup {unit['speedup']:.1f}x "
                f"({unit['vector_refs_per_sec']:,.0f} refs/s)"
            )
    lines.append(
        f"  wall {report['wall_seconds']:.1f}s, "
        f"peak RSS {report['peak_rss_kb']} KB"
    )
    return "\n".join(lines)


def _render_profile(report: Dict[str, Any]) -> str:
    """Human-readable dump of the report's ``profile`` block."""
    profile = report.get("profile") or {}
    lines = ["profile:"]
    pool = profile.get("parallel_sweep_pool")
    if pool:
        lines.append(
            "  parallel-sweep pool: "
            f"{pool.get('batches', 0):.0f} batches / "
            f"{pool.get('tasks', 0):.0f} tasks, "
            f"queue_wait {pool.get('queue_wait_s', 0.0):.3f}s, "
            f"run {pool.get('run_s', 0.0):.3f}s, "
            f"encode {pool.get('encode_s', 0.0):.3f}s, "
            f"transfer {pool.get('transfer_s', 0.0):.3f}s, "
            f"decode {pool.get('decode_s', 0.0):.3f}s"
        )
    timing = profile.get("supervised_sweep_timing") or {}
    totals = timing.get("totals")
    if totals:
        lines.append(
            "  supervised-sweep totals: "
            + ", ".join(
                f"{key} {value:.3f}s" for key, value in sorted(totals.items())
            )
        )
    for name, breakdown in sorted((timing.get("units") or {}).items()):
        lines.append(
            f"    {name}: "
            + ", ".join(
                f"{key} {value:.3f}s"
                for key, value in sorted(breakdown.items())
            )
        )
    if len(lines) == 1:
        lines.append("  (no profile data collected)")
    return "\n".join(lines)


def _parse_floors(specs: Sequence[str]) -> Dict[str, float]:
    """Parse repeated ``--floor NAME=VALUE`` arguments."""
    floors: Dict[str, float] = {}
    for spec in specs:
        name, separator, value = spec.partition("=")
        if not separator or not name:
            raise BenchmarkError(
                f"--floor expects NAME=VALUE, got {spec!r}"
            )
        try:
            floors[name] = float(value)
        except ValueError as error:
            raise BenchmarkError(
                f"--floor {name!r} has a non-numeric value {value!r}"
            ) from error
    return floors


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run the pinned simulation benchmark suite.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"short traces ({QUICK_LENGTH} refs) for smoke runs and CI",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="trace generation seed (default 0)"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timing repeats per kernel (default: 3 full, 2 quick)",
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=Path("."),
        help="directory for the BENCH_<rev>.json report (default: CWD)",
    )
    parser.add_argument(
        "--rev",
        default=None,
        help="revision label for the report (default: git short hash)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against --baseline and exit 1 on regression",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline report for --check (e.g. benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="allowed speedup drop in percent before failing (default 10)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for suite/parallel-sweep (minimum 2; "
            "default: REPRO_JOBS or 2)"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "include the dispatch/transfer timing breakdown in the "
            "report and print it (pool transport stats, per-unit "
            "dispatch/queue-wait/run/transfer/flush seconds)"
        ),
    )
    parser.add_argument(
        "--floor",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help=(
            "require unit NAME's measured speedup to be at least VALUE "
            "(absolute, unlike the relative --baseline check; "
            "repeatable); e.g. --floor suite/parallel-sweep=1.0"
        ),
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the pinned suite units and exit",
    )
    parser.add_argument(
        "--history",
        nargs="?",
        const=Path("benchmarks/history"),
        default=None,
        type=Path,
        metavar="DIR",
        help=(
            "list the archived bench reports under DIR (default "
            "benchmarks/history) and exit"
        ),
    )
    return parser


def _render_history(history_dir: Path) -> str:
    """One line per archived ``BENCH_*.json`` report under ``history_dir``."""
    paths = sorted(history_dir.glob("BENCH_*.json"))
    if not paths:
        return f"no bench reports under {history_dir}"
    headline_name = SUITE[0].name
    lines = [f"bench history in {history_dir}:"]
    for path in paths:
        try:
            report = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            lines.append(f"  {path.name}: unreadable")
            continue
        units = report.get("units", [])
        headline = next(
            (u for u in units if u.get("name") == headline_name), None
        )
        speed = (
            f", {headline_name} speedup {headline['speedup']:.1f}x"
            if headline and "speedup" in headline
            else ""
        )
        lines.append(
            f"  {path.name}: {report.get('schema', '?')}, "
            f"rev {report.get('revision', '?')}, "
            f"{'quick' if report.get('quick') else 'full'}, "
            f"{len(units)} units{speed}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point.  Exit 0 on success, 1 on regression, 2 on error."""
    args = _build_parser().parse_args(argv)
    if args.history is not None:
        print(_render_history(args.history))
        return 0
    if args.list:
        for unit in SUITE:
            print(f"{unit.name}  [{unit.workload}]")
        for name in SUITE_LEVEL:
            print(f"{name}  [suite-level]")
        return 0
    try:
        if args.check and args.baseline is None:
            raise BenchmarkError("--check requires --baseline <file>")
        baseline = load_report(args.baseline) if args.check else None
        floors = _parse_floors(args.floor)
        jobs = args.jobs
        if jobs is None:
            jobs_text = os.environ.get("REPRO_JOBS", "").strip()
            jobs = int(jobs_text) if jobs_text else 2
        report = run_suite(
            quick=args.quick,
            seed=args.seed,
            repeats=args.repeats,
            revision=args.rev,
            jobs=max(2, jobs),
            profile=args.profile,
        )
        path = write_report(report, args.output_dir)
        print(_render_report(report))
        if args.profile:
            print(_render_profile(report))
        print(f"report written to {path}")
        if floors:
            violations = check_floors(report, floors)
            if violations:
                for violation in violations:
                    print(violation.describe(), file=sys.stderr)
                print(
                    "repro-bench: FAIL — absolute speedup floor not met",
                    file=sys.stderr,
                )
                return 1
            print(f"floors passed ({len(floors)} checked)")
        if baseline is not None:
            result = compare_reports(report, baseline, args.threshold)
            for unit in result.units:
                print(unit.describe())
            if not result.ok:
                names = ", ".join(unit.name for unit in result.regressions)
                print(
                    f"repro-bench: FAIL — speedup regression beyond "
                    f"{args.threshold:.0f}% in: {names}",
                    file=sys.stderr,
                )
                return 1
            print(f"check passed (threshold {args.threshold:.0f}%)")
    except ReproError as error:
        print(f"repro-bench: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution path
    sys.exit(main())
