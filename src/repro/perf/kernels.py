"""Exact numpy batch kernels for the simulation hot loops.

Three per-reference loops dominate every experiment in this repository:
the LRU stack-simulation pass (:mod:`repro.stacksim`), the single-size
TLB loop (:mod:`repro.sim.driver`) and the sliding-window accounting of
the promotion policy (:mod:`repro.policy`).  This module reformulates
all three as array programs with *bit-identical* results, so the scalar
implementations can stay behind as reference oracles.

The central observation (Mattson et al.) is that under LRU the stack
depth of a reference is a pure function of the trace: it equals the
number of distinct keys referenced since the previous occurrence of the
same key.  Writing ``prev[i]`` for that previous position, the interval
``(prev[i], i)`` contains ``i - prev[i] - 1`` references, of which the
repeats are exactly the pairs ``(prev[j], j)`` nested inside the
interval, so

    depth[i] = (i - prev[i] - 1) - #{j < i : prev[j] > prev[i]}.

The subtracted term is a dominance count over the ``prev`` array, which
a bottom-up merge pass evaluates with O(n log^2 n) array operations (a
broadcast base case handles small blocks, argsort-based merge counting
the rest).  Set-associative simulation falls out for free: each set is
an independent LRU stack, so grouping references by set index and
counting within the concatenated per-set subsequences yields within-set
depths — cross-set pairs contribute nothing because positions in
earlier segments always have smaller ``prev`` values.

Two further exact reductions make the kernels fast in practice:

* *Run collapsing* — consecutive references to the same key (within a
  set) never change that set's stack, so they are depth-0 hits and the
  expensive counting runs on the collapsed sequence only.  Memory
  traces have strong sequential locality; collapse factors of 2-15x are
  typical.
* *Window membership from gaps* — a block is in the last-*T*-references
  window iff its previous occurrence is fewer than *T* positions back,
  so the sliding window's enter/leave event stream is a pair of
  vectorised gap comparisons, no circular buffer required.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError

#: Kernel selector values accepted by every ``kernel=`` parameter.
KERNEL_SCALAR = "scalar"
KERNEL_VECTOR = "vector"
KERNEL_SAMPLED = "sampled"
KERNEL_AUTO = "auto"

_KERNELS = (KERNEL_SCALAR, KERNEL_VECTOR, KERNEL_SAMPLED, KERNEL_AUTO)

#: Block size below which dominance counts use direct broadcasting.
_BASE_BLOCK = 16


class KernelFallbackWarning(UserWarning):
    """Emitted when ``kernel="auto"`` has to resolve to the scalar walk.

    The scalar per-reference loop is 4-25x slower than the array
    kernels, so a sweep that silently leaks onto it is a performance
    bug, not a correctness one — loud by policy.  The warning message
    carries the reason so audits of large sweeps can attribute every
    slow-path cell.
    """


@dataclass(frozen=True)
class KernelChoice:
    """A resolved kernel plus the reason if ``auto`` fell back to scalar."""

    kernel: str
    fallback_reason: Optional[str] = None


def choose_kernel(
    kernel: str,
    *,
    vector_supported: bool = True,
    sampled_supported: bool = False,
    reason: str = "configuration not supported by an array kernel",
) -> KernelChoice:
    """Resolve a ``kernel=`` argument to a concrete kernel, loudly.

    ``"auto"`` prefers the exact vector kernel, then the sampled-set
    kernel (statistical, for FIFO/random replacement), and only then
    the scalar walk — in which case a :class:`KernelFallbackWarning`
    is emitted carrying ``reason`` so no sweep silently runs 4-25x
    slower than it should.  Requesting ``"vector"`` or ``"sampled"``
    explicitly when unsupported is an error, so a benchmark or test
    never silently measures the wrong kernel.
    """
    if kernel not in _KERNELS:
        raise ConfigurationError(
            f"unknown kernel {kernel!r}; choose from {', '.join(_KERNELS)}"
        )
    if kernel == KERNEL_AUTO:
        if vector_supported:
            return KernelChoice(KERNEL_VECTOR)
        if sampled_supported:
            return KernelChoice(KERNEL_SAMPLED)
        warnings.warn(
            f"kernel='auto' fell back to the scalar walk: {reason}",
            KernelFallbackWarning,
            stacklevel=3,
        )
        return KernelChoice(KERNEL_SCALAR, fallback_reason=reason)
    if kernel == KERNEL_VECTOR and not vector_supported:
        raise ConfigurationError(
            "the vector kernel does not support this configuration "
            f"({reason}); use kernel='scalar' or kernel='auto'"
        )
    if kernel == KERNEL_SAMPLED and not sampled_supported:
        raise ConfigurationError(
            "the sampled-set kernel does not support this configuration "
            f"({reason}); use kernel='scalar' or kernel='auto'"
        )
    return KernelChoice(kernel)


def resolve_kernel(kernel: str, *, vector_supported: bool = True) -> str:
    """Normalise a ``kernel=`` argument to ``"scalar"`` or ``"vector"``.

    ``"auto"`` selects the vector kernel whenever the caller reports it
    can honour one (``vector_supported``), e.g. LRU replacement only.
    Requesting ``"vector"`` explicitly when unsupported is an error, so
    a benchmark or test never silently measures the wrong kernel.
    Thin wrapper over :func:`choose_kernel` kept for call sites that
    have no sampled path; the fallback warning applies equally.
    """
    return choose_kernel(
        kernel,
        vector_supported=vector_supported,
        reason="non-LRU replacement or a non-array reference stream",
    ).kernel


def previous_occurrences(keys: np.ndarray) -> np.ndarray:
    """Return, per position, the previous position of the same key (-1 if none)."""
    keys = np.asarray(keys)
    count = keys.size
    prev = np.full(count, -1, dtype=np.int64)
    if count == 0:
        return prev
    order = np.argsort(keys, kind="stable")
    ordered = keys[order]
    same = ordered[1:] == ordered[:-1]
    prev[order[1:][same]] = order[:-1][same]
    return prev


def _count_greater_preceding(values: np.ndarray) -> np.ndarray:
    """Return ``L`` with ``L[i] = #{j < i : values[j] > values[i]}``.

    Precondition: values are pairwise distinct except for a shared
    *minimum* sentinel (here -1); counts returned for sentinel
    positions are unspecified, which is fine because callers discard
    the depths of cold references.

    Bottom-up merge counting: pairs whose positions first share a block
    at size ``2h`` are counted at that level, where the count of
    left-half values exceeding each right-half value is read off a
    per-block argsort.  The array is padded once to a power of two with
    the minimum sentinel, which never counts as "greater" and whose own
    counts are sliced away.
    """
    values = np.ascontiguousarray(values, dtype=np.int64)
    count = values.size
    if count < 2:
        return np.zeros(count, dtype=np.int64)

    padded = _BASE_BLOCK
    while padded < count:
        padded *= 2
    vals = np.full(padded, -1, dtype=np.int64)
    vals[:count] = values
    counts = np.zeros(padded, dtype=np.int64)

    # Base case: all pairs within blocks of _BASE_BLOCK, by broadcasting.
    # Element [b, j, i] of the comparison is vals[b, j] > vals[b, i]; the
    # mask keeps j < i (strictly preceding) before summing over j.
    base = vals.reshape(-1, _BASE_BLOCK)
    before = np.triu(np.ones((_BASE_BLOCK, _BASE_BLOCK), dtype=bool), 1)
    counts += (
        ((base[:, :, None] > base[:, None, :]) & before[None, :, :])
        .sum(axis=1, dtype=np.int64)
        .ravel()
    )

    half = _BASE_BLOCK
    while half < padded:
        block = 2 * half
        tiles = vals.reshape(padded // block, block)
        order = np.argsort(tiles, axis=1)
        below = np.cumsum(order < half, axis=1, dtype=np.int64)
        greater = np.empty_like(tiles)
        np.put_along_axis(greater, order, half - below, axis=1)
        counts.reshape(padded // block, block)[:, half:] += greater[:, half:]
        half = block
    return counts[:count]


@dataclass(frozen=True)
class StackDepthResult:
    """LRU stack depths for a (possibly grouped) reference stream.

    Attributes:
        depths: exact stack depth per *collapsed* reference, in an
            arbitrary order suitable only for aggregation; -1 marks a
            cold (first-ever) reference.
        run_hits: references removed by run collapsing — each is a
            guaranteed depth-0 hit.
        total: references in the original stream.
    """

    depths: np.ndarray
    run_hits: int
    total: int

    def depth_histogram(self, max_depth: int) -> Tuple[np.ndarray, int, int]:
        """Return ``(depth_hits, cold, beyond)`` bounded at ``max_depth``."""
        live = self.depths[self.depths >= 0]
        hits = np.bincount(
            live[live < max_depth], minlength=max_depth
        ).astype(np.int64)
        if hits.size > max_depth:  # pragma: no cover - bincount never exceeds
            hits = hits[:max_depth]
        hits[0] += self.run_hits
        cold = int((self.depths < 0).sum())
        beyond = int((live >= max_depth).sum())
        return hits, cold, beyond

    def misses(self, capacity: int) -> int:
        """Miss count for an LRU buffer of ``capacity`` entries per group."""
        if capacity <= 0:
            raise ConfigurationError(
                f"capacity must be positive, got {capacity}"
            )
        live = self.depths[self.depths >= 0]
        hits = int((live < capacity).sum()) + self.run_hits
        return self.total - hits


ArrayLike = Union[np.ndarray, Sequence[int]]


def stack_depths(
    keys: ArrayLike, groups: Optional[ArrayLike] = None
) -> StackDepthResult:
    """Exact LRU stack depth of every reference, optionally per group.

    With ``groups`` given (e.g. TLB set indices), depths are computed
    within each group's subsequence — the all-associativity per-set
    stack simulation — in one pass over the concatenated groups.
    """
    keys = np.ascontiguousarray(np.asarray(keys), dtype=np.int64)
    count = keys.size
    if count == 0:
        return StackDepthResult(np.empty(0, dtype=np.int64), 0, 0)
    if groups is not None:
        group_array = np.ascontiguousarray(np.asarray(groups), dtype=np.int64)
        if group_array.shape != keys.shape:
            raise ConfigurationError(
                "groups must have the same length as keys"
            )
        # One combined key keeps (group, key) identity through the
        # group-major reordering; keys are page numbers < 2**32 and
        # group counts are tiny, so the packing cannot overflow int64.
        stride = int(keys.max()) + 2
        combined = group_array * stride + keys
        order = np.argsort(group_array, kind="stable")
        sequence = combined[order]
    else:
        sequence = keys

    # Run collapsing: consecutive equal keys within a group are depth-0
    # hits and do not perturb the group's stack.
    keep = np.empty(sequence.size, dtype=bool)
    keep[0] = True
    np.not_equal(sequence[1:], sequence[:-1], out=keep[1:])
    collapsed = sequence[keep]
    run_hits = count - collapsed.size

    prev = previous_occurrences(collapsed)
    cold = prev == -1
    nested = _count_greater_preceding(prev)
    depths = np.arange(collapsed.size, dtype=np.int64) - prev - 1 - nested
    depths[cold] = -1
    return StackDepthResult(depths, run_hits, count)


def window_events(
    blocks: ArrayLike, window: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Sliding-window membership transitions as boolean event arrays.

    Mirrors :class:`repro.policy.window.SlidingBlockWindow` exactly: on
    reference ``i`` the window first ages out reference ``i - window``
    (whose block *leaves* if that was its last occurrence still inside)
    and then admits ``blocks[i]`` (which *enters* if it was absent).

    Returns:
        ``(entered, left)`` boolean arrays over references.
        ``entered[i]`` — ``blocks[i]`` was not in the window;
        ``left[i]`` — the aged-out block ``blocks[i - window]`` left
        (always False for ``i < window``).
    """
    if window <= 0:
        raise ConfigurationError(f"window must be positive, got {window}")
    blocks = np.ascontiguousarray(np.asarray(blocks), dtype=np.int64)
    count = blocks.size
    entered = np.zeros(count, dtype=bool)
    left = np.zeros(count, dtype=bool)
    if count == 0:
        return entered, left

    prev = previous_occurrences(blocks)
    positions = np.arange(count, dtype=np.int64)
    # Absent iff the previous occurrence already aged out (or never was).
    entered[:] = (prev < 0) | (positions - prev >= window)

    if count > window:
        # blocks[i - window] leaves iff its next occurrence is >= i,
        # i.e. the forward gap at i - window spans the whole window.
        order = np.argsort(blocks, kind="stable")
        next_position = np.full(count, count, dtype=np.int64)
        ordered = blocks[order]
        same = ordered[1:] == ordered[:-1]
        next_position[order[:-1][same]] = order[1:][same]
        aged = positions[window:] - window
        left[window:] = next_position[aged] - aged >= window
    return entered, left
