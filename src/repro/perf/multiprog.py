"""Epoch-segmented all-geometry kernel for multiprogrammed simulation.

:mod:`repro.sim.multiprog` used to walk a stateful
:class:`~repro.tlb.context.MultiprogrammedTLB` per reference — the last
per-reference Python loop outside the two-level hierarchy.  This module
replaces it with one :func:`repro.perf.kernels.stack_depths` pass per
(mix, policy, set count), serving every entry count x associativity of
that family from the shared depth arrays, the same
many-configurations-per-pass economics as ``stacksim.allassoc`` and
:mod:`repro.perf.twosize`.

Context switches as universal epochs
------------------------------------
The two-size kernel re-tags lookup keys with an epoch counter so that
references after a shootdown force-miss, then needs a sparse correction
pass because a shootdown frees capacity for the *surviving* keys.  The
multiprogrammed case is strictly simpler, because a context switch is an
epoch boundary for **every** key at once:

* ``FLUSH`` — a switch empties the TLB.  Re-tag every reference's key
  with the global switch counter (its *epoch*): a post-flush reference
  has no prior occurrence under the re-tagged key, so it force-misses,
  exactly like the scalar model probing an emptied set.  Epochs are
  contiguous in time, so the distinct keys between two same-key
  positions all carry the same epoch tag — the stack depth counts
  exactly the distinct pages the set has refilled since, which is what
  the real post-flush set holds.  And because *nothing* survives a
  flush, there are no surviving keys to correct for: the plain depth
  pass is already exact, no tombstones required.
* ``ASID`` — nothing is ever invalidated; entries are tagged by
  folding the address-space identifier into the page number.  The
  kernel applies the identical fold (``asid << ASID_SHIFT | page``,
  the injective re-tag of :class:`~repro.tlb.context.MultiprogrammedTLB`)
  as one array expression, reducing the run to a plain single-size
  stack pass over the context-prefixed key stream.

Both policies are therefore exact under LRU with no correction pass,
bit-identical to the scalar oracle; non-LRU replacement stays on the
scalar model (no stack identity).

The multiprogrammed drivers are single-page-size (a multiprogrammed
two-page-size system needs one assignment policy per address space,
OS design space the paper leaves open — Section 6), so the reference
stream carries one page number per reference and the only admissible
set-index rules are the degenerate single-size ones:
:func:`validate_multiprog_config` rejects anything else up front.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.perf.kernels import StackDepthResult, stack_depths
from repro.tlb.context import ASID_SHIFT, ContextSwitchPolicy
from repro.tlb.indexing import IndexingScheme

if TYPE_CHECKING:  # import cycle: sim.config pulls in the driver package
    from repro.sim.config import TLBConfig

__all__ = [
    "MultiprogCounts",
    "count_switches",
    "multiprog_counts",
    "switch_boundaries",
    "validate_multiprog_config",
]

ArrayLike = Union[np.ndarray, Sequence[int]]

#: The address space the wrapped TLB starts in (before any switch_to).
_INITIAL_ASID = 0


@dataclass(frozen=True)
class MultiprogCounts:
    """Exact per-configuration counters of one multiprogrammed pass.

    ``switches`` is a property of the interleaving, not the geometry, so
    every configuration of one pass reports the same value — carried per
    result so callers can build a :class:`MultiprogramResult` from one
    entry alone.
    """

    misses: int
    switches: int


def validate_multiprog_config(config: "TLBConfig") -> None:
    """Reject TLB shapes the single-page-size multiprogrammed run cannot index.

    The multiprogrammed drivers feed one page number per reference as
    both block and chunk (``access_single``).  Under LARGE_INDEX or
    EXACT_INDEX a set-associative TLB would then derive set indices from
    a bogus chunk number — the page number never shifted down to a
    large-page number — so those schemes are two-page-size configurations
    here, not single-size ones.  Fully associative shapes ignore the
    scheme; set-associative shapes must use SMALL_INDEX (the degenerate
    single-size scheme).
    """
    if config.fully_associative:
        return
    if config.scheme is not IndexingScheme.SMALL_INDEX:
        raise ConfigurationError(
            f"multiprogrammed runs are single-page-size: set-associative "
            f"config {config.label!r} indexes by {config.scheme.value!r}, "
            f"which would read set bits from a bogus chunk number; use "
            f"SMALL_INDEX (the degenerate single-size scheme) or a fully "
            f"associative shape"
        )


def switch_boundaries(contexts: ArrayLike) -> np.ndarray:
    """Boolean per-reference array: a context switch precedes this access.

    Mirrors the scalar driver exactly: the wrapped TLB starts in address
    space 0, and ``switch_to`` of the current space is free — so the
    first reference is a boundary only when its context is non-zero (the
    initial-context case), and every later boundary is a plain change of
    context between adjacent references.
    """
    contexts = np.ascontiguousarray(np.asarray(contexts), dtype=np.int64)
    boundaries = np.empty(contexts.size, dtype=bool)
    if contexts.size == 0:
        return boundaries
    boundaries[0] = contexts[0] != _INITIAL_ASID
    np.not_equal(contexts[1:], contexts[:-1], out=boundaries[1:])
    return boundaries


def count_switches(contexts: ArrayLike) -> int:
    """Context switches the scalar driver would perform over ``contexts``."""
    return int(np.count_nonzero(switch_boundaries(contexts)))


def multiprog_counts(
    pages: ArrayLike,
    contexts: ArrayLike,
    policy: ContextSwitchPolicy,
    configs: Sequence["TLBConfig"],
) -> List[MultiprogCounts]:
    """Evaluate every configuration from one epoch-segmented pass.

    ``pages`` is the single-size page-number stream of the interleaved
    mix, ``contexts[i]`` the address space of reference ``i``.  One
    stack-depth pass per set-count family serves every entry count x
    associativity of that family via depth histograms; results are
    bit-identical to the scalar :class:`MultiprogrammedTLB` walk.
    """
    configs = list(configs)
    if not configs:
        return []
    for config in configs:
        validate_multiprog_config(config)
        if config.replacement != "lru":
            raise ConfigurationError(
                "the multiprogrammed vector kernel supports LRU replacement "
                f"only; got {config.replacement!r} (use kernel='scalar' or "
                "'auto')"
            )
    pages = np.ascontiguousarray(np.asarray(pages), dtype=np.int64)
    contexts = np.ascontiguousarray(np.asarray(contexts), dtype=np.int64)
    if contexts.shape != pages.shape:
        raise ConfigurationError(
            f"context stream covers {contexts.size} references, "
            f"mix has {pages.size}"
        )
    n = int(pages.size)
    if n and (int(pages.min()) < 0 or int(contexts.min()) < 0):
        raise ConfigurationError(
            "page numbers and contexts must be non-negative"
        )

    boundaries = switch_boundaries(contexts)
    switches = int(np.count_nonzero(boundaries))
    if policy is ContextSwitchPolicy.ASID:
        # The scalar model's injective fold, as one array expression.
        # Set indices come from the folded value too, exactly as the
        # wrapped TLB sees ``prefix | block``.
        if n and int(pages.max()) >= (1 << ASID_SHIFT):
            raise ConfigurationError(
                f"page numbers overflow the {ASID_SHIFT}-bit ASID fold"
            )
        keys = (contexts << np.int64(ASID_SHIFT)) | pages
        index_stream = keys
    else:
        # FLUSH: the switch counter is a universal epoch id.  The tag
        # changes every key at once, so a run of equal keys can never
        # span a flush and no force-missed entry leaves capacity debris
        # behind — the depth pass needs no correction.
        epoch = np.cumsum(boundaries)
        stride = np.int64((int(pages.max()) if n else 0) + 2)
        keys = epoch * stride + pages
        index_stream = pages

    family_depths: Dict[int, StackDepthResult] = {}
    results: List[MultiprogCounts] = []
    for config in configs:
        if config.fully_associative:
            num_sets, capacity = 1, config.entries
        else:
            num_sets = config.entries // config.associativity
            capacity = config.associativity
        depths = family_depths.get(num_sets)
        if depths is None:
            groups = (
                None
                if num_sets == 1
                else index_stream & np.int64(num_sets - 1)
            )
            depths = stack_depths(keys, groups=groups)
            family_depths[num_sets] = depths
        misses = depths.misses(capacity) if n else 0
        results.append(MultiprogCounts(misses=misses, switches=switches))
    return results
