"""Composed kernel for multiprogrammed two-page-size simulation.

:mod:`repro.perf.twosize` re-tags ``(page, size)`` keys with a
promotion-epoch counter; :mod:`repro.perf.multiprog` re-tags page keys
with an ASID fold or a flush-epoch counter.  Both are key transforms on
``(page, size, epoch)``, so a multiprogrammed two-page-size run — one
assignment policy per address space, the OS design space the paper
flags in Section 6 — is their composition:

* ``ASID`` — fold the context into the block number up front
  (``asid << ASID_SHIFT | block``; chunks inherit the fold under the
  right shift, ``asid << (ASID_SHIFT - blocks_shift) | chunk``) and
  run the *unchanged* two-size kernel over the folded stream.  Each
  program's promotion events land on its own folded chunks, so the
  per-program decision streams compose into one event plan with
  disjoint chunk namespaces.  Nothing is ever flushed; exactness is the
  two-size kernel's.
* ``FLUSH`` — keep raw pages for sets and keys, and tag every key with
  ``event_epoch * (switches + 1) + flush_epoch``.  A flush segment is
  single-context (a segment runs between two switches), so raw-page
  collisions across programs cannot happen inside a segment, and the
  flush-epoch tag force-misses everything across segments — the flush
  is a *universal* epoch boundary.  Shootdown tombstones are filtered
  to the event's own flush segment: entries inserted before the last
  flush are already gone, so flushes subsume any older tombstone.  All
  residency and correction scans then stay intra-segment by
  construction, matching the scalar model where a flush empties every
  set.

Both paths are bit-identical to walking a
:class:`~repro.tlb.context.MultiprogrammedTLB` around the two-size TLB
models with per-program policies, for LRU replacement (the shared
vector-kernel precondition).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.perf.multiprog import count_switches, switch_boundaries
from repro.perf.twosize import (
    _dedupe_last,
    _event_plan,
    _EventPlan,
    _FA_FAMILY,
    _family_of,
    _require_lru,
    _SetFamilyAnalysis,
    _unified_set_stream,
    two_size_counts,
)
from repro.tlb.context import ASID_SHIFT, ContextSwitchPolicy
from repro.tlb.indexing import IndexingScheme, ProbeStrategy

if TYPE_CHECKING:  # import cycle: sim.config pulls in the driver package
    from repro.policy.vector import PolicyDecisions
    from repro.sim.config import TLBConfig

__all__ = [
    "MultiprogTwoSizeCounts",
    "fold_event_chunks",
    "multiprog_two_size_counts",
]


@dataclass(frozen=True)
class MultiprogTwoSizeCounts:
    """Exact per-configuration counters of one composed pass."""

    misses: int
    large_misses: int
    reprobes: int
    invalidations: int
    switches: int


def fold_event_chunks(
    context: int, chunks: np.ndarray, blocks_shift: int
) -> np.ndarray:
    """Fold one program's chunk ids into its private event namespace.

    Applied to a program's ``promoted``/``demoted`` decision columns
    (where ``>= 0``) before composing the per-program streams: the
    kernel's event plan runs on context-folded chunks, so each
    program's promotion state machine stays independent — exactly the
    per-address-space assignment policies of Section 6.
    """
    fold = np.int64(context << (ASID_SHIFT - blocks_shift))
    return np.where(chunks >= 0, chunks | fold, chunks)


def _flush_tombstones(
    plan: _EventPlan,
    blocks: np.ndarray,
    flush_epoch: np.ndarray,
    combined: np.ndarray,
    chunk_mask: np.int64,
    kind: str,
    num_sets: int,
    span2: np.int64,
    key_stride: np.int64,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Event deletions under FLUSH, restricted to the event's segment.

    Mirrors :func:`repro.perf.twosize._unified_tombstones`, with three
    composition twists: ended-epoch references from *earlier* flush
    segments are dropped (the flush already removed those entries),
    key tags are the combined ``event_epoch * F + flush_epoch`` values,
    and the event's folded chunk is unfolded (``& chunk_mask``) back to
    the raw large-page number the TLB actually stores.
    """
    mask = np.int64(num_sets - 1)
    sets_out: List[np.ndarray] = []
    keys_out: List[np.ndarray] = []
    lref_out: List[np.ndarray] = []
    eref_out: List[np.ndarray] = []
    for j in range(plan.num_events):
        refs = plan.ended_refs(j)
        if refs.size:
            refs = refs[flush_epoch[refs] == flush_epoch[plan.ev_ref[j]]]
        if refs.size == 0:
            continue
        chunk = int(plan.ev_chunk[j] & chunk_mask)
        tags = combined[refs]
        if plan.ev_promote[j]:
            raw = blocks[refs] << np.int64(1)
            if kind == _FA_FAMILY:
                sets_arr = np.zeros(refs.size, dtype=np.int64)
            elif kind == IndexingScheme.LARGE_INDEX.value:
                sets_arr = np.full(refs.size, chunk & int(mask), dtype=np.int64)
            else:  # SMALL_INDEX and EXACT_INDEX index small pages by block
                sets_arr = blocks[refs] & mask
        else:
            raw = np.full(refs.size, (chunk << 1) | 1, dtype=np.int64)
            if kind == _FA_FAMILY:
                sets_arr = np.zeros(refs.size, dtype=np.int64)
            elif kind == IndexingScheme.SMALL_INDEX.value:
                sets_arr = blocks[refs] & mask
            else:  # LARGE_INDEX and EXACT_INDEX index large pages by chunk
                sets_arr = np.full(refs.size, chunk & int(mask), dtype=np.int64)
        keys_arr = raw * span2 + tags
        u_sets, u_keys, u_lref = _dedupe_last(sets_arr, keys_arr, refs, key_stride)
        sets_out.append(u_sets)
        keys_out.append(u_keys)
        lref_out.append(u_lref)
        eref_out.append(np.full(u_sets.size, plan.ev_ref[j], dtype=np.int64))
    if not sets_out:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty, empty
    return (
        np.concatenate(sets_out),
        np.concatenate(keys_out),
        np.concatenate(lref_out),
        np.concatenate(eref_out),
    )


def multiprog_two_size_counts(
    blocks: np.ndarray,
    contexts: np.ndarray,
    blocks_shift: int,
    decisions: "PolicyDecisions",
    switch_policy: ContextSwitchPolicy,
    configs: Sequence["TLBConfig"],
) -> List[MultiprogTwoSizeCounts]:
    """Evaluate every configuration of one multiprogrammed two-size mix.

    ``decisions`` is the interleaved composition of the per-program
    policy streams, with ``promoted``/``demoted`` already context-folded
    via :func:`fold_event_chunks` (the driver composes them; each
    program's policy sees only its own references).  Results are
    bit-identical to the scalar per-program-policy walk.
    """
    configs = list(configs)
    if not configs:
        return []
    _require_lru(configs)
    blocks = np.ascontiguousarray(np.asarray(blocks), dtype=np.int64)
    contexts = np.ascontiguousarray(np.asarray(contexts), dtype=np.int64)
    if contexts.shape != blocks.shape:
        raise ConfigurationError(
            f"context stream covers {contexts.size} references, "
            f"mix has {blocks.size}"
        )
    n = int(blocks.size)
    if n and (int(blocks.min()) < 0 or int(contexts.min()) < 0):
        raise ConfigurationError(
            "block numbers and contexts must be non-negative"
        )
    if n and int(blocks.max()) >= (1 << ASID_SHIFT):
        raise ConfigurationError(
            f"block numbers overflow the {ASID_SHIFT}-bit ASID fold"
        )
    if int(decisions.large.size) != n:
        raise ConfigurationError(
            f"decision stream covers {decisions.large.size} references, "
            f"mix has {n}"
        )
    switches = count_switches(contexts)

    if switch_policy is ContextSwitchPolicy.ASID:
        # Fold once, then the plain two-size kernel is exact: disjoint
        # per-program chunk namespaces, shared capacity, no flushes.
        folded_blocks = (contexts << np.int64(ASID_SHIFT)) | blocks
        inner = two_size_counts(folded_blocks, blocks_shift, decisions, configs)
        return [
            MultiprogTwoSizeCounts(
                misses=c.misses,
                large_misses=c.large_misses,
                reprobes=c.reprobes,
                invalidations=c.invalidations,
                switches=switches,
            )
            for c in inner
        ]

    # FLUSH: raw pages, composed epoch x flush-segment key tags.
    chunks = blocks >> np.int64(blocks_shift)
    folded_chunks = (
        contexts << np.int64(ASID_SHIFT - blocks_shift)
    ) | chunks
    large = np.asarray(decisions.large, dtype=bool)
    plan = _event_plan(folded_chunks, decisions)
    flush_epoch = np.cumsum(switch_boundaries(contexts)).astype(np.int64)
    factor = np.int64(switches + 1)
    span2 = np.int64(plan.num_events + 1) * factor
    combined = plan.epoch * factor + flush_epoch
    page = np.where(large, chunks, blocks)
    keys = ((page << np.int64(1)) | large.astype(np.int64)) * span2 + combined
    key_stride = np.int64((int(keys.max()) if n else 0) + 2)
    chunk_mask = np.int64((1 << (ASID_SHIFT - blocks_shift)) - 1)
    large_total = int(np.count_nonzero(large))
    refs = np.arange(n, dtype=np.int64)

    family_caps: Dict[Tuple[str, int], Set[int]] = {}
    for config in configs:
        fam_key, capacity = _family_of(config)
        family_caps.setdefault(fam_key, set()).add(capacity)

    families: Dict[Tuple[str, int], _SetFamilyAnalysis] = {}
    for fam_key, caps in family_caps.items():
        kind, num_sets = fam_key
        sets_arr = _unified_set_stream(kind, num_sets, blocks, chunks, page)
        family = _SetFamilyAnalysis(keys, sets_arr, refs, large, caps)
        family.attach_tombstones(
            *_flush_tombstones(
                plan,
                blocks,
                flush_epoch,
                combined,
                chunk_mask,
                kind,
                num_sets,
                span2,
                key_stride,
            )
        )
        families[fam_key] = family

    results: List[MultiprogTwoSizeCounts] = []
    for config in configs:
        fam_key, capacity = _family_of(config)
        misses, large_misses, invalidations = families[fam_key].counts(capacity)
        if (
            not config.fully_associative
            and config.scheme is IndexingScheme.EXACT_INDEX
            and config.probe_strategy is ProbeStrategy.SEQUENTIAL
        ):
            reprobes = large_total + (misses - large_misses)
        else:
            reprobes = 0
        results.append(
            MultiprogTwoSizeCounts(
                misses=misses,
                large_misses=large_misses,
                reprobes=reprobes,
                invalidations=invalidations,
                switches=switches,
            )
        )
    return results


