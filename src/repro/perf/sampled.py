"""Sampled-set simulation for FIFO and random replacement.

The Mattson stack identity that powers the vector kernels is an LRU
property; FIFO and random replacement have no inclusion structure, so
their miss counts cannot be read off a depth histogram.  What they do
have is *set independence*: a set-associative TLB is ``N`` disjoint
queues, and each reference touches exactly one of them.  Classic
sampled-set simulation (Puzak-style) exploits this — simulate a random
subset of ``n`` sets with a compact per-set queue walk, and scale the
observed misses by ``N / n``.

Estimator and error bound
-------------------------
With per-set miss counts ``x_1..x_n`` drawn without replacement from
the ``N`` sets, the total-miss estimate and its standard error are

    T  = N * mean(x)
    SE = N * sqrt((1 - n/N) * s^2 / n)        (finite-population factor)

where ``s^2`` is the sample variance (ddof=1).  The reported 95%%
confidence interval is ``T +- 1.96 * SE``, clipped to the feasible
range ``[0, len(trace)]``.  ``exact=True`` walks every set (and, for
random replacement, replays the scalar model's single shared RNG in
reference order), collapsing the interval to the exact count — the
escape hatch, and the oracle the fuzz tests band against.

Set selection is deterministic *and stratified*: sets are ranked by
their exact per-set reference count (cheap — one ``bincount`` over the
stream), the ranking is cut into ``n`` strata, and one set is drawn
uniformly per stratum by a ``random.Random`` seeded from the
simulation's cache key.  Stratification shrinks the true estimator
variance while the reported SE still prices the full between-set
spread, so the 95%% interval is conservative by construction; repeated
runs, cache entries and CI are all stable.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, List

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # import cycle: sim.config pulls in the driver package
    from repro.sim.config import TLBConfig

__all__ = [
    "SampledCounts",
    "sampled_replacement_counts",
    "DEFAULT_SAMPLE_FRACTION",
    "MIN_SAMPLED_SETS",
]

#: Fraction of sets simulated by default (the bench-gated rate).
DEFAULT_SAMPLE_FRACTION = 0.25

#: Never sample fewer sets than this (degenerates to exact below it).
MIN_SAMPLED_SETS = 4

_Z95 = 1.959963984540054

#: Replacement policies served by this kernel.
SAMPLED_REPLACEMENTS = ("fifo", "random")


@dataclass(frozen=True)
class SampledCounts:
    """A (possibly estimated) miss count with its confidence interval.

    ``exact`` runs report the true count with a zero-width interval, so
    callers can treat both uniformly.
    """

    misses: int
    exact: bool
    sampled_sets: int
    total_sets: int
    stderr: float
    ci_low: float
    ci_high: float


def _walk_set(
    stream: List[int],
    capacity: int,
    replacement: str,
    rng: "random.Random | None",
) -> int:
    """Miss count of one isolated set's reference stream.

    Mirrors the scalar policies exactly: FIFO inserts at the front and
    evicts the back (insertion order); random evicts a uniform victim.
    """
    misses = 0
    if replacement == "fifo":
        present = set()
        order: deque = deque()
        for page in stream:
            if page in present:
                continue
            misses += 1
            if len(order) >= capacity:
                present.discard(order.popleft())
            order.append(page)
            present.add(page)
    else:  # random
        entries: List[int] = []
        present = set()
        for page in stream:
            if page in present:
                continue
            misses += 1
            if len(entries) >= capacity:
                present.discard(entries.pop(rng.randrange(len(entries))))
            entries.insert(0, page)
            present.add(page)
    return misses


def _walk_exact(
    pages: np.ndarray,
    num_sets: int,
    capacity: int,
    replacement: str,
    replacement_seed: int,
) -> int:
    """Exact full walk, replaying the scalar model's shared-RNG order.

    The scalar TLB owns *one* random-replacement RNG across all of its
    sets, so bit-exact random results require walking the sets
    interleaved in original reference order, consuming draws in the
    same sequence.  FIFO is order-independent but takes the same path
    for simplicity.
    """
    rng = random.Random(replacement_seed)
    mask = num_sets - 1
    sets_entries: List[List[int]] = [[] for _ in range(num_sets)]
    present: List[set] = [set() for _ in range(num_sets)]
    misses = 0
    for page in pages.tolist():
        s = page & mask
        mem = present[s]
        if page in mem:
            continue
        misses += 1
        entries = sets_entries[s]
        if len(entries) >= capacity:
            if replacement == "fifo":
                mem.discard(entries.pop())
            else:
                mem.discard(entries.pop(rng.randrange(len(entries))))
        entries.insert(0, page)
        mem.add(page)
    return misses


def sampled_replacement_counts(
    pages: np.ndarray,
    config: TLBConfig,
    *,
    sample_seed: int,
    replacement_seed: int = 0,
    exact: bool = False,
    sample_fraction: float = DEFAULT_SAMPLE_FRACTION,
    min_sets: int = MIN_SAMPLED_SETS,
) -> SampledCounts:
    """Estimate (or exactly count) single-size misses under FIFO/random.

    ``sample_seed`` drives the deterministic set sample (derive it from
    the cache key); ``replacement_seed`` is the scalar model's RNG seed,
    consumed only by exact random walks and as the base of the per-set
    sampled RNGs.
    """
    if config.replacement not in SAMPLED_REPLACEMENTS:
        raise ConfigurationError(
            "the sampled-set kernel supports replacement "
            f"{SAMPLED_REPLACEMENTS}, got {config.replacement!r}"
        )
    pages = np.asarray(pages, dtype=np.int64)
    total_refs = int(pages.size)
    if config.fully_associative:
        num_sets, capacity = 1, config.entries
    else:
        num_sets = config.entries // config.associativity
        capacity = config.associativity

    sample_size = max(int(min_sets), math.ceil(sample_fraction * num_sets))
    if exact or sample_size >= num_sets:
        misses = _walk_exact(
            pages, num_sets, capacity, config.replacement, replacement_seed
        )
        return SampledCounts(
            misses=misses,
            exact=True,
            sampled_sets=num_sets,
            total_sets=num_sets,
            stderr=0.0,
            ci_low=float(misses),
            ci_high=float(misses),
        )

    # Stratified draw: rank sets by their exact per-set reference count
    # (one bincount over the full stream), cut the ranking into
    # ``sample_size`` contiguous strata, and pick one set uniformly from
    # each.  The estimator below still prices the draw as a simple
    # random sample, so its variance term keeps the between-strata
    # spread that stratification removed — the reported interval is
    # deliberately conservative, which is what lets the fuzz suite hold
    # the >=95% coverage contract on skewed set-popularity workloads.
    set_idx = pages & np.int64(num_sets - 1)
    ref_counts = np.bincount(set_idx, minlength=num_sets)
    ranked = np.lexsort((np.arange(num_sets), -ref_counts))
    sampler = random.Random(sample_seed)
    chosen = sorted(
        int(stratum[sampler.randrange(stratum.size)])
        for stratum in np.array_split(ranked, sample_size)
    )
    order = np.argsort(set_idx, kind="stable")
    sorted_sets = set_idx[order]
    sorted_pages = pages[order]
    xs: List[int] = []
    for s in chosen:
        lo = int(np.searchsorted(sorted_sets, s, side="left"))
        hi = int(np.searchsorted(sorted_sets, s, side="right"))
        rng = (
            random.Random(replacement_seed * 1_000_003 + s)
            if config.replacement == "random"
            else None
        )
        xs.append(
            _walk_set(
                sorted_pages[lo:hi].tolist(), capacity, config.replacement, rng
            )
        )

    n = len(xs)
    mean = sum(xs) / n
    estimate = num_sets * mean
    if n > 1:
        s2 = sum((x - mean) ** 2 for x in xs) / (n - 1)
    else:
        s2 = 0.0
    stderr = num_sets * math.sqrt(max(0.0, (1.0 - n / num_sets) * s2 / n))
    ci_low = max(0.0, estimate - _Z95 * stderr)
    ci_high = min(float(total_refs), estimate + _Z95 * stderr)
    return SampledCounts(
        misses=int(round(estimate)),
        exact=False,
        sampled_sets=n,
        total_sets=num_sets,
        stderr=stderr,
        ci_low=ci_low,
        ci_high=ci_high,
    )
