"""Victim-stream reconstruction kernel for two-level TLB hierarchies.

A :class:`~repro.tlb.twolevel.TwoLevelTLB` probes the L2 only when the
L1 misses, so the L2's reference stream *is* the L1 miss subsequence —
no separate victim bookkeeping is needed.  The epoch-segmented analysis
of :mod:`repro.perf.twosize` already computes, per collapsed reference,
an exact LRU stack depth plus the sparse invalidation corrections; a
reference misses in an ``a``-way L1 exactly when its corrected depth is
cold or ``>= a``.  Reconstructing that per-reference miss mask (rather
than only the aggregate histogram counts) yields the L2 access trace,
and the *same* stack identity applied to the subsequence serves every
requested L2 geometry from one pass:

1. run the unified two-size analysis for the L1 family and extract
   ``miss_ref_indices(l1_ways)`` — the sorted original indices of L1
   misses;
2. slice the key/set/size streams down to that subsequence and run a
   second family analysis per L2 geometry.  Shootdown tombstones are
   filtered to subsequence members: the L2 can only ever hold what the
   L1 miss stream inserted;
3. compose: overall misses are the L2 analysis' misses (both levels
   missed), ``l2_hits`` is the subsequence length minus those, and
   invalidations sum both levels' resident deletions — exactly the
   scalar composite's accounting.

Bit-identical to walking :class:`TwoLevelTLB` objects, for LRU at both
levels (the vector-kernel precondition shared with the flat kernels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.perf.twosize import (
    _event_plan,
    _family_of,
    _require_lru,
    _SetFamilyAnalysis,
    _unified_set_stream,
    _unified_tombstones,
)

if TYPE_CHECKING:  # import cycle: sim.config pulls in the driver package
    from repro.policy.vector import PolicyDecisions
    from repro.sim.config import TLBConfig

__all__ = ["TwoLevelCounts", "two_level_counts"]


@dataclass(frozen=True)
class TwoLevelCounts:
    """Exact composite counters of one two-level hierarchy pass.

    ``misses`` are full misses (both levels missed — software walks);
    ``l2_hits`` are L1 misses satisfied by the L2; ``invalidations``
    sum the resident shootdown deletions of both levels.
    """

    misses: int
    large_misses: int
    l2_hits: int
    invalidations: int


def two_level_counts(
    blocks: np.ndarray,
    blocks_shift: int,
    decisions: PolicyDecisions,
    l1_config: TLBConfig,
    l2_configs: Sequence[TLBConfig],
) -> List[TwoLevelCounts]:
    """Evaluate every L2 geometry behind one L1 from a single pass.

    ``blocks``/``blocks_shift``/``decisions`` are exactly the inputs of
    :func:`repro.perf.twosize.two_size_counts`; a single-size hierarchy
    is the degenerate case of an all-small decision stream (no events).
    The L1 analysis runs once; each L2 configuration reuses the
    reconstructed L1 miss stream.
    """
    l2_configs = list(l2_configs)
    if not l2_configs:
        return []
    _require_lru([l1_config, *l2_configs])
    blocks = np.asarray(blocks, dtype=np.int64)
    n = int(blocks.size)
    if int(decisions.large.size) != n:
        raise ConfigurationError(
            f"decision stream covers {decisions.large.size} references, "
            f"trace has {n}"
        )
    chunks = blocks >> np.int64(blocks_shift)
    large = np.asarray(decisions.large, dtype=bool)
    plan = _event_plan(chunks, decisions)
    span = np.int64(plan.num_events + 1)
    page = np.where(large, chunks, blocks)
    keys = ((page << np.int64(1)) | large.astype(np.int64)) * span + plan.epoch
    key_stride = np.int64((int(keys.max()) if n else 0) + 2)
    refs = np.arange(n, dtype=np.int64)

    # Level 1: one family, one capacity, plus the per-reference miss
    # stream that becomes the L2 trace.
    (l1_kind, l1_sets), l1_capacity = _family_of(l1_config)
    l1_family = _SetFamilyAnalysis(
        keys,
        _unified_set_stream(l1_kind, l1_sets, blocks, chunks, page),
        refs,
        large,
        [l1_capacity],
    )
    l1_family.attach_tombstones(
        *_unified_tombstones(plan, blocks, l1_kind, l1_sets, span, key_stride)
    )
    _, _, l1_invalidations = l1_family.counts(l1_capacity)
    sub = l1_family.miss_ref_indices(l1_capacity)

    sub_blocks = blocks[sub]
    sub_chunks = chunks[sub]
    sub_page = page[sub]
    sub_keys = keys[sub]
    sub_large = large[sub]
    substream = int(sub.size)

    family_caps: Dict[Tuple[str, int], Set[int]] = {}
    for config in l2_configs:
        fam_key, capacity = _family_of(config)
        family_caps.setdefault(fam_key, set()).add(capacity)

    families: Dict[Tuple[str, int], _SetFamilyAnalysis] = {}
    for fam_key, caps in family_caps.items():
        kind, num_sets = fam_key
        sets_arr = _unified_set_stream(
            kind, num_sets, sub_blocks, sub_chunks, sub_page
        )
        family = _SetFamilyAnalysis(sub_keys, sets_arr, sub, sub_large, caps)
        family.attach_tombstones(
            *_unified_tombstones(
                plan, blocks, kind, num_sets, span, key_stride, member_of=sub
            )
        )
        families[fam_key] = family

    results: List[TwoLevelCounts] = []
    for config in l2_configs:
        fam_key, capacity = _family_of(config)
        misses, large_misses, l2_invalidations = families[fam_key].counts(
            capacity
        )
        results.append(
            TwoLevelCounts(
                misses=misses,
                large_misses=large_misses,
                l2_hits=substream - misses,
                invalidations=l1_invalidations + l2_invalidations,
            )
        )
    return results
