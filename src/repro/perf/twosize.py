"""Epoch-segmented all-geometry kernel for two-page-size TLB simulation.

:mod:`repro.perf.kernels` turned the single-size TLB model into one
vectorized stack-distance pass, but the two-page-size runs kept a
per-reference Python loop over stateful TLB objects: promotions and
demotions invalidate entries mid-trace, so the block -> (set, key)
mapping is not constant over the trace and a plain stack pass is wrong.
This module removes that loop, for every supported organisation at
once — the two-size analogue of ``stacksim.allassoc`` and the paper's
own many-configurations-per-pass ``tycho`` economics.

Epoch segmentation
------------------
The policy's decision stream is already an array pass
(:func:`repro.policy.vector.policy_decisions`).  Its transition events
split each chunk's reference stream into *epochs*: between two events
on a chunk, the mapping from a reference to its set index and lookup
key is static for SMALL_INDEX / LARGE_INDEX / EXACT_INDEX and for the
split organisation.  The kernel therefore

1. tags every reference's effective page key with its chunk's epoch
   counter.  An entry invalidated by an event can then never match a
   reference from a later epoch: the next touch of that page has no
   prior occurrence under the re-tagged key and is a forced miss,
   exactly as after the scalar model's shootdown.  The tag is the
   *global* event counter at the reference (one ``searchsorted`` over
   packed ``(chunk, ref)`` event keys); combined with the page key it
   is equivalent to a per-chunk counter, and it is exact because two
   same-key references in different same-parity epochs are always
   separated by an invalidating event of the right kind;
2. reorders the stream set-major, collapses consecutive duplicate
   (set, key) runs (depth-0 hits — a run can never span an event on
   its own chunk, the re-tag would split it), and computes LRU stack
   depths once per *family* — a (set-selection rule, set count) pair.
   Every requested entry count x associativity of that family is then
   a histogram lookup on the shared depth arrays;
3. models the *capacity* side effect of invalidations — a removed
   entry frees its slot, which can turn a later would-be eviction into
   a hit — with a sparse per-event correction pass (below).

Step 1 alone makes the naive depth pass an over-count of misses; step 3
makes it exact, bit-identical to the scalar TLB objects.

The correction pass
-------------------
Within one set, consider a key ``k`` last touched at collapsed position
``p`` and queried (re-touched, deleted, or still resident at the end)
later.  Under LRU-with-deletions, while ``k`` is resident no entry
*above* it (more recently touched) is ever evicted: an eviction takes
the stack bottom, and everything below ``k`` goes first.  So the count
of entries above ``k`` is always ``n - r``, where ``n`` counts distinct
keys touched since ``p`` and ``r`` counts deletions of entries that
were (a) touched after ``p`` and (b) still resident when deleted.
``k`` is evicted before its query iff ``n - r`` reaches the capacity
``C`` at some event boundary or at the query itself.  Deletions of
entries *below* ``k`` never matter — they only remove entries that
would have been evicted before ``k`` anyway.

The ingredients are all sparse (events are rare policy transitions):

* **tombstones** — per event, the distinct (set, key) pairs of the
  epoch it ends, each carrying the key's last touch ``L`` and the
  event's position ``E``.  Whether the deleted entry was still
  *resident* at ``E`` (per capacity, by the same rule applied
  recursively in event order) decides both the invalidation count and
  whether the deletion frees a slot for later queries;
* ``n_at(P, p)`` — distinct keys touched in positions ``(p, P)``, a
  prefix count of ``cprev <= p``;
* per capacity, a short chronological scan over each affected query's
  applicable tombstones (its *stages*): at stage ``j`` the query is
  evicted if ``n_j - r_{j-1} >= C``, else ``r`` grows by the stage's
  residency verdict; finally the query hits iff ``depth - r < C``.

Corrections only ever flip a naive miss into an exact hit, and only
for queries whose reuse window crosses an event, so the scan stays
sparse while every bulk quantity remains one numpy pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Sequence,
    Tuple,
)

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.perf.kernels import _count_greater_preceding, previous_occurrences
from repro.tlb.indexing import IndexingScheme, ProbeStrategy

if TYPE_CHECKING:  # import cycle: sim.config pulls in the driver package
    from repro.policy.vector import PolicyDecisions
    from repro.sim.config import TLBConfig

__all__ = [
    "TwoSizeCounts",
    "SplitCounts",
    "two_size_counts",
    "split_two_size_counts",
]

_FA_FAMILY = "fa"


@dataclass(frozen=True)
class TwoSizeCounts:
    """Exact per-configuration counters of one two-size trace pass."""

    misses: int
    large_misses: int
    reprobes: int
    invalidations: int


@dataclass(frozen=True)
class SplitCounts:
    """Exact counters of one :class:`~repro.tlb.split.SplitTLB` pass.

    ``small_occupancy`` / ``large_occupancy`` are the component entry
    counts still resident at the end of the trace (the ablation's
    utilisation metric).
    """

    misses: int
    large_misses: int
    invalidations: int
    small_occupancy: int
    large_occupancy: int


@dataclass(frozen=True)
class _EventPlan:
    """Transition events in time order, plus per-reference epoch tags.

    ``ev_ref``/``ev_chunk``/``ev_promote`` list the events with a
    demotion ordered before a promotion landing on the same reference
    (the scalar driver's shootdown order).  ``epoch[i]`` is the global
    event count at reference ``i`` — events at reference ``i`` apply
    *before* the access, so reference ``i`` belongs to the new epoch.
    ``ended_refs(j)`` yields event ``j``'s ended epoch: the references
    of its chunk since that chunk's previous event.
    """

    ev_ref: np.ndarray
    ev_chunk: np.ndarray
    ev_promote: np.ndarray
    epoch: np.ndarray
    _ref_order: np.ndarray
    _lo: np.ndarray
    _hi: np.ndarray

    @property
    def num_events(self) -> int:
        return int(self.ev_ref.size)

    def ended_refs(self, event: int) -> np.ndarray:
        """Ascending reference indices of the epoch event ``event`` ends."""
        return self._ref_order[self._lo[event] : self._hi[event]]


def _event_plan(chunks: np.ndarray, decisions: PolicyDecisions) -> _EventPlan:
    n = int(chunks.size)
    d_refs = np.flatnonzero(decisions.demoted >= 0)
    p_refs = np.flatnonzero(decisions.promoted >= 0)
    ev_ref = np.concatenate([d_refs, p_refs]).astype(np.int64)
    ev_chunk = np.concatenate(
        [decisions.demoted[d_refs], decisions.promoted[p_refs]]
    ).astype(np.int64)
    ev_promote = np.concatenate(
        [
            np.zeros(d_refs.size, dtype=bool),
            np.ones(p_refs.size, dtype=bool),
        ]
    )
    order = np.lexsort((ev_promote, ev_ref))
    ev_ref = ev_ref[order]
    ev_chunk = ev_chunk[order]
    ev_promote = ev_promote[order]
    m = int(ev_ref.size)

    span = np.int64(n + 1)
    ev_keys = ev_chunk * span + ev_ref
    ref_keys = chunks.astype(np.int64) * span + np.arange(n, dtype=np.int64)
    epoch = np.searchsorted(np.sort(ev_keys), ref_keys, side="right").astype(
        np.int64
    )

    # Each event's previous event reference on the same chunk (0 when
    # none): events are time-ordered, so a stable chunk-major sort keeps
    # per-chunk event order.
    grp = np.argsort(ev_chunk, kind="stable")
    prev_sorted = np.zeros(m, dtype=np.int64)
    if m > 1:
        same = ev_chunk[grp][1:] == ev_chunk[grp][:-1]
        prev_sorted[1:][same] = ev_ref[grp][:-1][same]
    prev_ref = np.zeros(m, dtype=np.int64)
    prev_ref[grp] = prev_sorted

    # References grouped chunk-major (ascending reference within chunk)
    # let each ended epoch come out as one slice.
    ref_order = np.argsort(chunks, kind="stable").astype(np.int64)
    sorted_ref_keys = ref_keys[ref_order]
    lo = np.searchsorted(sorted_ref_keys, ev_chunk * span + prev_ref, side="left")
    hi = np.searchsorted(sorted_ref_keys, ev_chunk * span + ev_ref, side="left")
    return _EventPlan(
        ev_ref=ev_ref,
        ev_chunk=ev_chunk,
        ev_promote=ev_promote,
        epoch=epoch,
        _ref_order=ref_order,
        _lo=lo,
        _hi=hi,
    )


class _Tombstone(NamedTuple):
    """One event deletion, positioned in the collapsed stream."""

    idx: int  # family-wide tombstone index (event order)
    l_pos: int  # collapsed position of the deleted key's last touch
    e_pos: int  # first collapsed position at/after the event
    e_ref: int  # the event's reference index


def _dedupe_last(
    sets_arr: np.ndarray,
    keys_arr: np.ndarray,
    refs_arr: np.ndarray,
    key_stride: np.int64,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unique (set, key) pairs keeping each pair's *last* reference."""
    packed = sets_arr * key_stride + keys_arr
    _, rev_index = np.unique(packed[::-1], return_index=True)
    last = np.sort(refs_arr.size - 1 - rev_index)
    return sets_arr[last], keys_arr[last], refs_arr[last]


class _SetFamilyAnalysis:
    """All-associativity analysis of one (set stream, key stream) family.

    One instance serves every capacity requested for the family: the
    collapsed stream, depth arrays and tombstone geometry are shared,
    and only the final sparse scans are per capacity (memoized).
    """

    def __init__(
        self,
        keys: np.ndarray,
        sets: np.ndarray,
        refs: np.ndarray,
        large: np.ndarray,
        capacities: Iterable[int],
    ) -> None:
        caps = sorted({int(c) for c in capacities})
        if not caps or caps[0] < 1:
            raise ConfigurationError(
                f"two-size kernel needs positive capacities, got {caps}"
            )
        self._caps = caps
        max_cap = caps[-1]
        n = int(keys.size)
        self.total = n
        self.num_ts = 0
        self._seg_ts: Dict[int, List[_Tombstone]] = {}
        self._delta_jobs: List[Tuple[int, List[Tuple[int, int]], int]] = []
        self._query_jobs: List[Tuple[List[Tuple[int, int]], int, bool]] = []
        self._counts_memo: Dict[int, Tuple[int, int, int]] = {}
        self._residency_memo: Dict[int, np.ndarray] = {}
        if n == 0:
            self.cn = 0
            self.run_hits = 0
            self._cum = np.zeros(max_cap + 1, dtype=np.int64)
            self._cum_large = np.zeros(max_cap + 1, dtype=np.int64)
            self._large_cold = 0
            self._large_live = 0
            return

        self.stride = np.int64(int(keys.max()) + 2)
        combined = sets.astype(np.int64) * self.stride + keys
        order = np.argsort(sets, kind="stable")
        seq = combined[order]
        keep = np.empty(n, dtype=bool)
        keep[0] = True
        np.not_equal(seq[1:], seq[:-1], out=keep[1:])
        self.ckeys = seq[keep]
        self.cref = refs[order][keep]
        self.csets = sets[order][keep]
        self.clarge = large[order][keep]
        cn = int(self.ckeys.size)
        self.cn = cn
        self.run_hits = n - cn

        cprev = previous_occurrences(self.ckeys)
        nested = _count_greater_preceding(cprev)
        pos = np.arange(cn, dtype=np.int64)
        depth = pos - cprev - 1 - nested
        depth[cprev < 0] = -1
        self.cprev = cprev
        self.depth = depth

        live = depth >= 0
        self._cum = np.cumsum(
            np.bincount(np.minimum(depth[live], max_cap), minlength=max_cap + 1)
        )
        large_live = live & self.clarge
        self._cum_large = np.cumsum(
            np.bincount(
                np.minimum(depth[large_live], max_cap), minlength=max_cap + 1
            )
        )
        self._large_cold = int(np.count_nonzero(~live & self.clarge))
        self._large_live = int(np.count_nonzero(large_live))

        # Per-position segment (set) bounds; csets is non-decreasing.
        new_seg = np.empty(cn, dtype=bool)
        new_seg[0] = True
        np.not_equal(self.csets[1:], self.csets[:-1], out=new_seg[1:])
        seg_ids = np.cumsum(new_seg) - 1
        starts = pos[new_seg]
        self.seg_start = starts[seg_ids]
        self.seg_end = np.append(starts[1:], cn)[seg_ids]

    # -- capacity-independent precomputation ---------------------------

    def _since_counts(self, seg_lo: int, p: int, upto: int) -> np.ndarray:
        """Prefix counts of ``cprev <= p`` over ``[seg_lo, upto)``.

        ``n_at(P, p)`` — distinct keys touched in positions ``(p, P)``
        — is then ``counts[P - seg_lo - 1] - (p - seg_lo + 1)``: every
        first-touch-since-``p`` has ``cprev <= p``, and the positions
        up to ``p`` itself all trivially qualify.
        """
        return np.cumsum(self.cprev[seg_lo:upto] <= p)

    def attach_tombstones(
        self,
        ts_set: np.ndarray,
        ts_key: np.ndarray,
        ts_lref: np.ndarray,
        ts_eref: np.ndarray,
    ) -> None:
        """Register the event deletions (in event order) and precompute
        every capacity-independent ingredient of the correction pass."""
        count = int(ts_set.size)
        self.num_ts = count
        if count == 0:
            return
        if self.cn == 0:
            raise SimulationError(
                "two-size kernel internal error: tombstones without references"
            )
        combined = ts_set.astype(np.int64) * self.stride + ts_key
        lo = np.searchsorted(self.csets, ts_set, side="left")
        hi = np.searchsorted(self.csets, ts_set, side="right")
        l_pos = np.empty(count, dtype=np.int64)
        e_pos = np.empty(count, dtype=np.int64)
        for i in range(count):
            s, e = int(lo[i]), int(hi[i])
            cref_seg = self.cref[s:e]
            l_pos[i] = s + np.searchsorted(cref_seg, ts_lref[i], side="right") - 1
            e_pos[i] = s + np.searchsorted(cref_seg, ts_eref[i], side="left")
        if not np.array_equal(self.ckeys[l_pos], combined):
            raise SimulationError(
                "two-size kernel internal error: tombstone key mismatch"
            )
        for i in range(count):
            ts = _Tombstone(i, int(l_pos[i]), int(e_pos[i]), int(ts_eref[i]))
            self._seg_ts.setdefault(int(self.seg_start[ts.l_pos]), []).append(ts)
        for seg_lo, seg in self._seg_ts.items():
            self._attach_segment(seg_lo, seg)

    def _attach_segment(self, seg_lo: int, seg: List[_Tombstone]) -> None:
        seg_hi = int(self.seg_end[seg_lo])

        # Residency (delta) jobs: one per tombstone, in event order.
        # Stages are strictly-earlier events whose deleted key was
        # touched after this key's last touch; simultaneous deletions
        # cannot unseat each other, so equal e_ref is excluded.
        for i, ts in enumerate(seg):
            counts = self._since_counts(seg_lo, ts.l_pos, ts.e_pos)
            offset = ts.l_pos - seg_lo + 1
            stages = [
                (int(counts[prior.e_pos - seg_lo - 1]) - offset, prior.idx)
                for prior in seg[:i]
                if prior.e_ref < ts.e_ref and prior.l_pos > ts.l_pos
            ]
            n_final = int(counts[ts.e_pos - seg_lo - 1]) - offset
            self._delta_jobs.append((ts.idx, stages, n_final))

        # Affected warm queries: previous touch before a deleted key's
        # last touch, query at/after the deletion.  Cold queries need
        # no correction (forced misses either way).
        affected: set = set()
        for ts in seg:
            window = self.cprev[ts.e_pos : seg_hi]
            hits = np.flatnonzero((window >= 0) & (window < ts.l_pos))
            affected.update((hits + ts.e_pos).tolist())
        if not affected:
            return
        q_arr = np.fromiter(sorted(affected), dtype=np.int64, count=len(affected))
        # A correction can only flip a naive miss (depth >= C) into a
        # hit freed by at most r deletions, and r is bounded by the
        # tombstones whose key was touched after the query's previous
        # touch — so some capacity must fall in (depth - r_up, depth].
        ts_l_sorted = np.sort(
            np.fromiter((t.l_pos for t in seg), dtype=np.int64, count=len(seg))
        )
        r_up = ts_l_sorted.size - np.searchsorted(
            ts_l_sorted, self.cprev[q_arr], side="right"
        )
        depths = self.depth[q_arr]
        keep = np.zeros(q_arr.size, dtype=bool)
        for cap in self._caps:
            keep |= (depths >= cap) & (depths - r_up < cap)
        for q in q_arr[keep].tolist():
            p = int(self.cprev[q])
            stage_ts = [t for t in seg if t.l_pos > p and t.e_pos <= q]
            if not stage_ts:
                continue
            counts = self._since_counts(seg_lo, p, stage_ts[-1].e_pos)
            offset = p - seg_lo + 1
            stages = [
                (int(counts[t.e_pos - seg_lo - 1]) - offset, t.idx)
                for t in stage_ts
            ]
            self._query_jobs.append(
                (int(q), stages, int(self.depth[q]), bool(self.clarge[q]))
            )

    # -- per-capacity scans --------------------------------------------

    @staticmethod
    def _survives(
        stages: List[Tuple[int, int]],
        n_final: int,
        capacity: int,
        resident: np.ndarray,
    ) -> bool:
        """Apply the eviction rule: alive after every stage and the query."""
        r = 0
        for n_t, idx in stages:
            if n_t - r >= capacity:
                return False
            if resident[idx]:
                r += 1
        return n_final - r < capacity

    def _residency(self, capacity: int) -> np.ndarray:
        cached = self._residency_memo.get(capacity)
        if cached is None:
            cached = np.zeros(self.num_ts, dtype=bool)
            for idx, stages, n_final in self._delta_jobs:
                cached[idx] = self._survives(stages, n_final, capacity, cached)
            self._residency_memo[capacity] = cached
        return cached

    def counts(self, capacity: int) -> Tuple[int, int, int]:
        """(misses, large_misses, invalidations) at ``capacity`` ways."""
        capacity = int(capacity)
        memo = self._counts_memo.get(capacity)
        if memo is not None:
            return memo
        if capacity not in self._caps:
            raise ConfigurationError(
                f"capacity {capacity} was not requested for this family"
            )
        if self.cn == 0:
            result = (0, 0, 0)
        else:
            resident = self._residency(capacity)
            corrections = 0
            corrections_large = 0
            for _q, stages, depth, is_large in self._query_jobs:
                if depth < capacity:
                    continue
                if self._survives(stages, depth, capacity, resident):
                    corrections += 1
                    if is_large:
                        corrections_large += 1
            hits_below = int(self._cum[capacity - 1])
            misses = self.total - self.run_hits - hits_below - corrections
            large_misses = (
                self._large_cold
                + (self._large_live - int(self._cum_large[capacity - 1]))
                - corrections_large
            )
            result = (misses, large_misses, int(resident.sum()))
        self._counts_memo[capacity] = result
        return result

    def miss_ref_indices(self, capacity: int) -> np.ndarray:
        """Original reference indices that miss at ``capacity`` ways, sorted.

        Per-reference reconstruction of the miss stream the per-capacity
        histogram scan aggregates away: a collapsed position misses
        naively when its depth is cold (``-1``) or at/after ``capacity``,
        and the invalidation correction pass flips exactly the warm
        queries whose entry survives the tombstone stages.  Run-collapsed
        positions are always hits and never appear.  This is what turns
        the L1 depth arrays into the L2 reference stream of a two-level
        hierarchy: the victim/miss subsequence *is* the L2 access trace.
        """
        capacity = int(capacity)
        if capacity not in self._caps:
            raise ConfigurationError(
                f"capacity {capacity} was not requested for this family"
            )
        if self.cn == 0:
            return np.empty(0, dtype=np.int64)
        miss = (self.depth < 0) | (self.depth >= capacity)
        resident = self._residency(capacity)
        for q, stages, depth, _is_large in self._query_jobs:
            if depth < capacity:
                continue
            if self._survives(stages, depth, capacity, resident):
                miss[q] = False
        return np.sort(self.cref[miss])

    def occupancy(self, capacity: int) -> int:
        """Entries resident at the end of the trace, at ``capacity`` ways."""
        capacity = int(capacity)
        if self.cn == 0:
            return 0
        resident = self._residency(capacity)
        has_next = np.zeros(self.cn, dtype=bool)
        has_next[self.cprev[self.cprev >= 0]] = True
        dead = np.zeros(self.cn, dtype=bool)
        for seg in self._seg_ts.values():
            for ts in seg:
                dead[ts.l_pos] = True
        cand = np.flatnonzero(~has_next & ~dead)
        cand_seg = self.seg_start[cand]
        total = 0
        for seg_lo in np.unique(cand_seg).tolist():
            positions = cand[cand_seg == seg_lo]
            seg_hi = int(self.seg_end[seg_lo])
            sorted_cprev = np.sort(self.cprev[seg_lo:seg_hi])
            n_end = np.searchsorted(sorted_cprev, positions, side="right") - (
                positions - seg_lo + 1
            )
            seg = self._seg_ts.get(int(seg_lo), [])
            if not seg:
                total += int(np.count_nonzero(n_end < capacity))
                continue
            max_l = max(ts.l_pos for ts in seg)
            easy = positions >= max_l
            total += int(np.count_nonzero(n_end[easy] < capacity))
            for p, n_final in zip(
                positions[~easy].tolist(), n_end[~easy].tolist()
            ):
                stage_ts = [t for t in seg if t.l_pos > p]
                counts = self._since_counts(seg_lo, p, stage_ts[-1].e_pos)
                offset = p - seg_lo + 1
                stages = [
                    (int(counts[t.e_pos - seg_lo - 1]) - offset, t.idx)
                    for t in stage_ts
                ]
                if self._survives(stages, int(n_final), capacity, resident):
                    total += 1
        return total


# -- unified (single-structure) organisations --------------------------


def _family_of(config: TLBConfig) -> Tuple[Tuple[str, int], int]:
    """((family kind, set count), capacity) for one configuration."""
    if config.fully_associative:
        return (_FA_FAMILY, 1), config.entries
    return (
        (config.scheme.value, config.entries // config.associativity),
        config.associativity,
    )


def _unified_set_stream(
    kind: str,
    num_sets: int,
    blocks: np.ndarray,
    chunks: np.ndarray,
    page: np.ndarray,
) -> np.ndarray:
    if kind == _FA_FAMILY:
        return np.zeros(blocks.size, dtype=np.int64)
    mask = np.int64(num_sets - 1)
    if kind == IndexingScheme.SMALL_INDEX.value:
        return blocks & mask
    if kind == IndexingScheme.LARGE_INDEX.value:
        return chunks & mask
    return page & mask


def _unified_tombstones(
    plan: _EventPlan,
    blocks: np.ndarray,
    kind: str,
    num_sets: int,
    span: np.int64,
    key_stride: np.int64,
    member_of: "np.ndarray | None" = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Event deletions for one unified family, in event order.

    A promotion deletes the ended small epoch's distinct (set, block)
    pairs; a demotion deletes the large page's copy from every set it
    was touched in during the ended large epoch (more than one only
    under SMALL_INDEX).  A zero-length ended epoch deletes nothing —
    nothing of it was ever inserted, and earlier same-parity entries
    were already shot down by the previous event of the other kind.

    ``member_of`` (a sorted reference-index array) restricts deletions
    to references that actually reached the structure — the two-level
    kernel's L2 only holds pages that missed in L1, so a shootdown can
    only delete what the L1 miss stream inserted.
    """
    mask = np.int64(num_sets - 1)
    sets_out: List[np.ndarray] = []
    keys_out: List[np.ndarray] = []
    lref_out: List[np.ndarray] = []
    eref_out: List[np.ndarray] = []
    for j in range(plan.num_events):
        refs = plan.ended_refs(j)
        if member_of is not None and refs.size:
            pos = np.searchsorted(member_of, refs)
            keep = pos < member_of.size
            keep[keep] = member_of[pos[keep]] == refs[keep]
            refs = refs[keep]
        if refs.size == 0:
            continue
        chunk = int(plan.ev_chunk[j])
        tags = plan.epoch[refs]
        if plan.ev_promote[j]:
            raw = blocks[refs] << np.int64(1)
            if kind == _FA_FAMILY:
                sets_arr = np.zeros(refs.size, dtype=np.int64)
            elif kind == IndexingScheme.LARGE_INDEX.value:
                sets_arr = np.full(refs.size, chunk & int(mask), dtype=np.int64)
            else:  # SMALL_INDEX and EXACT_INDEX index small pages by block
                sets_arr = blocks[refs] & mask
        else:
            raw = np.full(
                refs.size, (chunk << 1) | 1, dtype=np.int64
            )
            if kind == _FA_FAMILY:
                sets_arr = np.zeros(refs.size, dtype=np.int64)
            elif kind == IndexingScheme.SMALL_INDEX.value:
                sets_arr = blocks[refs] & mask
            else:  # LARGE_INDEX and EXACT_INDEX index large pages by chunk
                sets_arr = np.full(refs.size, chunk & int(mask), dtype=np.int64)
        keys_arr = raw * span + tags
        u_sets, u_keys, u_lref = _dedupe_last(sets_arr, keys_arr, refs, key_stride)
        sets_out.append(u_sets)
        keys_out.append(u_keys)
        lref_out.append(u_lref)
        eref_out.append(np.full(u_sets.size, plan.ev_ref[j], dtype=np.int64))
    if not sets_out:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty, empty
    return (
        np.concatenate(sets_out),
        np.concatenate(keys_out),
        np.concatenate(lref_out),
        np.concatenate(eref_out),
    )


def _require_lru(configs: Iterable[TLBConfig]) -> None:
    for config in configs:
        if config.replacement != "lru":
            raise ConfigurationError(
                "the two-size vector kernel supports LRU replacement only; "
                f"got {config.replacement!r} (use kernel='scalar' or 'auto')"
            )


def two_size_counts(
    blocks: np.ndarray,
    blocks_shift: int,
    decisions: PolicyDecisions,
    configs: Sequence[TLBConfig],
) -> List[TwoSizeCounts]:
    """Evaluate every configuration from one epoch-segmented pass.

    ``blocks`` is the small-page-number stream, ``blocks_shift`` the
    log2 blocks-per-chunk, ``decisions`` the precomputed policy stream.
    Configurations sharing a (set-selection rule, set count) family
    share one collapsed stream and one depth computation; each entry
    count x associativity is then a histogram read plus the sparse
    correction scan.  Results are bit-identical to the scalar TLBs.
    """
    configs = list(configs)
    if not configs:
        return []
    _require_lru(configs)
    blocks = np.asarray(blocks, dtype=np.int64)
    n = int(blocks.size)
    if int(decisions.large.size) != n:
        raise ConfigurationError(
            f"decision stream covers {decisions.large.size} references, "
            f"trace has {n}"
        )
    chunks = blocks >> np.int64(blocks_shift)
    large = np.asarray(decisions.large, dtype=bool)
    plan = _event_plan(chunks, decisions)
    span = np.int64(plan.num_events + 1)
    page = np.where(large, chunks, blocks)
    keys = ((page << np.int64(1)) | large.astype(np.int64)) * span + plan.epoch
    key_stride = np.int64((int(keys.max()) if n else 0) + 2)
    large_total = int(np.count_nonzero(large))
    refs = np.arange(n, dtype=np.int64)

    family_caps: Dict[Tuple[str, int], set] = {}
    for config in configs:
        fam_key, capacity = _family_of(config)
        family_caps.setdefault(fam_key, set()).add(capacity)

    families: Dict[Tuple[str, int], _SetFamilyAnalysis] = {}
    for fam_key, caps in family_caps.items():
        kind, num_sets = fam_key
        sets_arr = _unified_set_stream(kind, num_sets, blocks, chunks, page)
        family = _SetFamilyAnalysis(keys, sets_arr, refs, large, caps)
        family.attach_tombstones(
            *_unified_tombstones(plan, blocks, kind, num_sets, span, key_stride)
        )
        families[fam_key] = family

    results: List[TwoSizeCounts] = []
    for config in configs:
        fam_key, capacity = _family_of(config)
        misses, large_misses, invalidations = families[fam_key].counts(capacity)
        if (
            not config.fully_associative
            and config.scheme is IndexingScheme.EXACT_INDEX
            and config.probe_strategy is ProbeStrategy.SEQUENTIAL
        ):
            # Sequential EXACT_INDEX reprobes whenever the small-page
            # probe misses: on every large-page reference (a promotion
            # shot down the chunk's small pages, so the small probe
            # cannot hit) and on every small-page full miss.
            reprobes = large_total + (misses - large_misses)
        else:
            reprobes = 0
        results.append(
            TwoSizeCounts(
                misses=misses,
                large_misses=large_misses,
                reprobes=reprobes,
                invalidations=invalidations,
            )
        )
    return results


# -- the split organisation --------------------------------------------


def _component_counts(
    pages: np.ndarray,
    refs: np.ndarray,
    config: TLBConfig,
    plan: _EventPlan,
    blocks: np.ndarray,
    span: np.int64,
    want_promote: bool,
) -> Tuple[int, int, int]:
    """(misses, invalidations, end occupancy) of one split component.

    A component only ever sees one page size, so it behaves as a plain
    single-size TLB over its sub-stream regardless of its configured
    indexing scheme: block and chunk coincide, both candidate sets are
    the same set.  Promotions shoot small pages out of the small
    component, demotions shoot the large page out of the large one.
    """
    keys = pages * span + plan.epoch[refs]
    if config.fully_associative:
        capacity = config.entries
        num_sets = 1
        sets_arr = np.zeros(pages.size, dtype=np.int64)
    else:
        capacity = config.associativity
        num_sets = config.entries // config.associativity
        sets_arr = pages & np.int64(num_sets - 1)
    key_stride = np.int64((int(keys.max()) if keys.size else 0) + 2)
    family = _SetFamilyAnalysis(
        keys, sets_arr, refs, np.zeros(pages.size, dtype=bool), [capacity]
    )

    mask = np.int64(num_sets - 1)
    sets_out: List[np.ndarray] = []
    keys_out: List[np.ndarray] = []
    lref_out: List[np.ndarray] = []
    eref_out: List[np.ndarray] = []
    for j in range(plan.num_events):
        if bool(plan.ev_promote[j]) != want_promote:
            continue
        ended = plan.ended_refs(j)
        if ended.size == 0:
            continue
        if want_promote:
            ended_pages = blocks[ended]
        else:
            ended_pages = np.full(
                ended.size, int(plan.ev_chunk[j]), dtype=np.int64
            )
        keys_arr = ended_pages * span + plan.epoch[ended]
        sets_arr_ts = (
            np.zeros(ended.size, dtype=np.int64)
            if config.fully_associative
            else ended_pages & mask
        )
        u_sets, u_keys, u_lref = _dedupe_last(
            sets_arr_ts, keys_arr, ended, key_stride
        )
        sets_out.append(u_sets)
        keys_out.append(u_keys)
        lref_out.append(u_lref)
        eref_out.append(np.full(u_sets.size, plan.ev_ref[j], dtype=np.int64))
    if sets_out:
        family.attach_tombstones(
            np.concatenate(sets_out),
            np.concatenate(keys_out),
            np.concatenate(lref_out),
            np.concatenate(eref_out),
        )
    misses, _, invalidations = family.counts(capacity)
    return misses, invalidations, family.occupancy(capacity)


def split_two_size_counts(
    blocks: np.ndarray,
    blocks_shift: int,
    decisions: PolicyDecisions,
    small_config: TLBConfig,
    large_config: TLBConfig,
) -> SplitCounts:
    """Exact counters of a :class:`~repro.tlb.split.SplitTLB` pass.

    The split organisation routes each reference to the component for
    its assigned size, so the kernel is two independent single-size
    analyses over the small/large sub-streams — promotions invalidate
    in the small component, demotions in the large one — sharing the
    unified kernel's epoch tags (exact per component: a component's
    references only occur in its own parity of epochs).
    """
    _require_lru((small_config, large_config))
    blocks = np.asarray(blocks, dtype=np.int64)
    n = int(blocks.size)
    if int(decisions.large.size) != n:
        raise ConfigurationError(
            f"decision stream covers {decisions.large.size} references, "
            f"trace has {n}"
        )
    chunks = blocks >> np.int64(blocks_shift)
    large = np.asarray(decisions.large, dtype=bool)
    plan = _event_plan(chunks, decisions)
    span = np.int64(plan.num_events + 1)

    small_refs = np.flatnonzero(~large)
    small_misses, small_inv, small_occ = _component_counts(
        blocks[small_refs],
        small_refs,
        small_config,
        plan,
        blocks,
        span,
        want_promote=True,
    )
    large_refs = np.flatnonzero(large)
    large_misses, large_inv, large_occ = _component_counts(
        chunks[large_refs],
        large_refs,
        large_config,
        plan,
        blocks,
        span,
        want_promote=False,
    )
    return SplitCounts(
        misses=small_misses + large_misses,
        large_misses=large_misses,
        invalidations=small_inv + large_inv,
        small_occupancy=small_occ,
        large_occupancy=large_occ,
    )
