"""Page-size assignment policies and the working-set window they share.

Implements Section 3.4 of the paper: the dynamic chunk-promotion policy,
static baselines, and the dynamic two-page-size working-set calculator.
"""

from repro.policy.dynamic_ws import (
    DynamicWorkingSetResult,
    dynamic_average_working_set,
)
from repro.policy.promotion import (
    DynamicPromotionPolicy,
    ExplicitAssignmentPolicy,
    PageDecision,
    PageSizeAssignmentPolicy,
    StaticLargePolicy,
    StaticSmallPolicy,
)
from repro.policy.vector import (
    PolicyDecisions,
    policy_decisions,
    supports_vector_decisions,
)
from repro.policy.window import SlidingBlockWindow

__all__ = [
    "DynamicPromotionPolicy",
    "DynamicWorkingSetResult",
    "ExplicitAssignmentPolicy",
    "PageDecision",
    "PageSizeAssignmentPolicy",
    "PolicyDecisions",
    "SlidingBlockWindow",
    "StaticLargePolicy",
    "StaticSmallPolicy",
    "dynamic_average_working_set",
    "policy_decisions",
    "supports_vector_decisions",
]
