"""Average working-set size under the dynamic two-page-size policy.

For a single page size the working set is a pure function of the trace and
can be computed from inter-reference gaps (see
:mod:`repro.stacksim.working_set`).  Under the paper's dynamic page-size
assignment (Section 3.4) the *size* of a window's working set additionally
depends on which chunks are currently promoted: a promoted chunk present
in the window contributes one large page, an unpromoted chunk contributes
one small page per block present.

This module computes the average of that quantity over the trace with an
incremental sweep: the running working-set size changes only when a block
enters or leaves the sliding window or a chunk crosses the promotion
threshold, all of which are O(1) events per reference.

Note the paper's bound (Section 3.4): with the promote threshold at half
the blocks per chunk, the instantaneous two-page-size working set is at
most twice the 4KB working set — a chunk promoted with only half its
blocks present doubles its contribution, and no other case inflates more.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Set

import numpy as np

from repro.errors import ConfigurationError
from repro.perf.kernels import KERNEL_AUTO, KERNEL_VECTOR, resolve_kernel
from repro.policy.window import SlidingBlockWindow
from repro.trace.record import Trace
from repro.types import PageSizePair


@dataclass(frozen=True)
class DynamicWorkingSetResult:
    """Outcome of a dynamic working-set sweep.

    Attributes:
        average_bytes: average working-set size in bytes over the trace.
        peak_bytes: largest instantaneous working-set size observed.
        promotions: number of chunk promotions performed.
        demotions: number of chunk demotions performed.
    """

    average_bytes: float
    peak_bytes: int
    promotions: int
    demotions: int


def dynamic_average_working_set(
    trace: Trace,
    pair: PageSizePair,
    window: int,
    *,
    promote_fraction: float = 0.5,
    demote_fraction: Optional[float] = None,
    kernel: str = KERNEL_AUTO,
) -> DynamicWorkingSetResult:
    """Average working-set size (bytes) under the promotion policy.

    Args:
        trace: the reference trace.
        pair: small/large page-size pair (paper: 4KB/32KB).
        window: working-set parameter T, in references.
        promote_fraction: fraction of a chunk's blocks that must be in the
            window to promote it (paper: 0.5, "half or more").
        demote_fraction: occupancy fraction below which a promoted chunk
            demotes; defaults to ``promote_fraction`` (no hysteresis).
        kernel: ``"scalar"`` for the incremental sweep below,
            ``"vector"`` for the event-stream batch kernel
            (:mod:`repro.policy.vector`), ``"auto"`` (default) for
            vector.  Both produce identical results.
    """
    if not 0 < promote_fraction <= 1:
        raise ConfigurationError(
            f"promote_fraction must be in (0, 1], got {promote_fraction}"
        )
    blocks_per_chunk = pair.blocks_per_chunk
    promote_blocks = max(1, math.ceil(blocks_per_chunk * promote_fraction))
    if demote_fraction is None:
        demote_blocks = promote_blocks
    else:
        if not 0 <= demote_fraction <= promote_fraction:
            raise ConfigurationError(
                "demote_fraction must lie in [0, promote_fraction]"
            )
        demote_blocks = math.ceil(blocks_per_chunk * demote_fraction)

    if resolve_kernel(kernel) == KERNEL_VECTOR:
        from repro.policy.vector import dynamic_working_set_events

        block_array = np.asarray(trace.addresses) >> np.uint32(pair.small_shift)
        current, _, promotions, demotions = dynamic_working_set_events(
            block_array, pair, window, promote_blocks, demote_blocks
        )
        total = current.size
        average = float(current.sum()) / total if total else 0.0
        peak = int(current.max()) if total else 0
        return DynamicWorkingSetResult(average, peak, promotions, demotions)

    small = pair.small
    large = pair.large
    sliding = SlidingBlockWindow(pair, window)
    occupancy: Dict[int, int] = {}
    promoted: Set[int] = set()
    promotions = 0
    demotions = 0
    current = 0  # instantaneous working-set size, bytes
    running_total = 0
    peak = 0

    blocks = (np.asarray(trace.addresses) >> np.uint32(pair.small_shift)).tolist()
    for block in blocks:
        left, entered = sliding.access(block)

        if left is not None:
            chunk = left // blocks_per_chunk
            count = occupancy[chunk] - 1
            if count == 0:
                del occupancy[chunk]
            else:
                occupancy[chunk] = count
            if chunk in promoted:
                if count < demote_blocks:
                    promoted.remove(chunk)
                    demotions += 1
                    current += small * count - large
            else:
                current -= small

        if entered is not None:
            chunk = entered // blocks_per_chunk
            count = occupancy.get(chunk, 0) + 1
            occupancy[chunk] = count
            if chunk in promoted:
                pass  # a promoted chunk already counts one large page
            elif count >= promote_blocks:
                promoted.add(chunk)
                promotions += 1
                current += large - small * (count - 1)
            else:
                current += small

        running_total += current
        if current > peak:
            peak = current

    count = len(blocks)
    average = running_total / count if count else 0.0
    return DynamicWorkingSetResult(average, peak, promotions, demotions)
