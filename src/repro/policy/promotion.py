"""Page-size assignment policies (Section 3.4 of the paper).

A policy decides, reference by reference, whether the chunk containing the
referenced address is currently mapped as one large page or as small
pages.  The paper's policy is dynamic: a chunk is *promoted* to a large
page when at least half of its blocks were accessed within the last *T*
references, and reverts to small pages when usage decays out of the
window.  Static policies (everything small, everything large, or an
explicit chunk set) are provided for the degenerate cases the paper
discusses in Section 5.2.1 (e.g. hardware supporting two page sizes while
the software never allocates a large page).

Each :meth:`~PageSizeAssignmentPolicy.access` call returns a
:class:`PageDecision` carrying the page number to present to the TLB and
any promotion/demotion event, so the TLB simulator can invalidate stale
entries exactly as real hardware would be forced to.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Optional, Set

from repro.errors import ConfigurationError
from repro.policy.window import SlidingBlockWindow
from repro.types import PageSizePair


@dataclass(frozen=True)
class PageDecision:
    """The outcome of presenting one reference to an assignment policy.

    Attributes:
        page: the virtual page number the TLB should look up — a large-page
            (chunk) number when ``large`` is True, otherwise a small-page
            (block) number.
        large: whether the reference falls in a chunk currently mapped
            as one large page.
        promoted_chunk: chunk number promoted to a large page by this
            reference, or None.  The TLB must invalidate that chunk's
            small-page entries.
        demoted_chunk: chunk number demoted back to small pages by this
            reference, or None.  The TLB must invalidate the large-page
            entry.
    """

    page: int
    large: bool
    promoted_chunk: Optional[int] = None
    demoted_chunk: Optional[int] = None


class PageSizeAssignmentPolicy(ABC):
    """Maps each referenced address to a page size, possibly dynamically."""

    def __init__(self, pair: PageSizePair) -> None:
        self.pair = pair

    def access(self, address: int) -> PageDecision:
        """Record a reference by address and return the page decision."""
        return self.access_block(address >> self.pair.small_shift)

    @abstractmethod
    def access_block(self, block: int) -> PageDecision:
        """Record a reference by small-page (block) number.

        The simulation hot loops pre-shift addresses into block numbers
        once with numpy, so policies take blocks directly.
        """

    def reset(self) -> None:
        """Forget all history; the next access starts a fresh simulation."""

    def cache_token(self) -> Optional[dict]:
        """JSON-stable key parts identifying this policy's behaviour.

        Used by the content-addressed result cache: two policies with
        equal tokens produce identical decision streams over any trace.
        ``None`` means *uncacheable* — the policy carries accumulated
        state (or is an unknown subclass), so results depend on history
        the token cannot capture and the cache must be bypassed.
        """
        return None


class DynamicPromotionPolicy(PageSizeAssignmentPolicy):
    """The paper's working-set-window promotion policy.

    A chunk is promoted when the number of its distinct blocks accessed in
    the last ``window`` references reaches ``promote_blocks`` (default:
    half the blocks per chunk, rounded up — the paper's "half or more"),
    and demoted when it falls below ``demote_blocks`` (default: the same
    threshold, making page size a pure function of the window; a lower
    value adds hysteresis, an ablation knob).

    Attributes:
        promotions: number of chunk promotions performed so far.
        demotions: number of chunk demotions performed so far.
    """

    def __init__(
        self,
        pair: PageSizePair,
        window: int,
        *,
        promote_fraction: float = 0.5,
        demote_fraction: Optional[float] = None,
    ) -> None:
        super().__init__(pair)
        if not 0 < promote_fraction <= 1:
            raise ConfigurationError(
                f"promote_fraction must be in (0, 1], got {promote_fraction}"
            )
        blocks = pair.blocks_per_chunk
        self.window = window
        self.promote_blocks = max(1, math.ceil(blocks * promote_fraction))
        if demote_fraction is None:
            self.demote_blocks = self.promote_blocks
        else:
            if not 0 <= demote_fraction <= promote_fraction:
                raise ConfigurationError(
                    "demote_fraction must lie in [0, promote_fraction]"
                )
            self.demote_blocks = math.ceil(blocks * demote_fraction)
        self._window = SlidingBlockWindow(pair, window)
        self._promoted: Set[int] = set()
        self.promotions = 0
        self.demotions = 0

    def access_block(self, block: int) -> PageDecision:
        pair = self.pair
        left, entered = self._window.access(block)

        demoted_chunk: Optional[int] = None
        promoted_chunk: Optional[int] = None
        blocks_per_chunk = pair.blocks_per_chunk

        if left is not None:
            left_chunk = left // blocks_per_chunk
            if (
                left_chunk in self._promoted
                and self._window.chunk_occupancy(left_chunk) < self.demote_blocks
            ):
                self._promoted.remove(left_chunk)
                self.demotions += 1
                demoted_chunk = left_chunk

        chunk = block // blocks_per_chunk
        if entered is not None:
            if (
                chunk not in self._promoted
                and self._window.chunk_occupancy(chunk) >= self.promote_blocks
            ):
                self._promoted.add(chunk)
                self.promotions += 1
                promoted_chunk = chunk

        if chunk in self._promoted:
            return PageDecision(chunk, True, promoted_chunk, demoted_chunk)
        return PageDecision(block, False, promoted_chunk, demoted_chunk)

    def cancel_promotion(self, chunk: int) -> None:
        """Revert a promotion that the OS could not carry out.

        The MMU calls this when no contiguous large frame exists
        (external fragmentation).  The chunk returns to small pages; it
        may be re-promoted later if its occupancy crosses the threshold
        again after leaving and re-entering the promoted state.
        """
        if chunk in self._promoted:
            self._promoted.remove(chunk)
            self.promotions -= 1

    def is_promoted(self, chunk: int) -> bool:
        """Return True if ``chunk`` is currently mapped as a large page."""
        return chunk in self._promoted

    def promoted_chunk_count(self) -> int:
        """Return how many chunks are currently promoted."""
        return len(self._promoted)

    def chunk_occupancy(self, chunk: int) -> int:
        """Expose the window's distinct-block count for ``chunk``."""
        return self._window.chunk_occupancy(chunk)

    def reset(self) -> None:
        self._window = SlidingBlockWindow(self.pair, self.window)
        self._promoted.clear()
        self.promotions = 0
        self.demotions = 0

    def cache_token(self) -> Optional[dict]:
        if (
            self._promoted
            or self.promotions
            or self.demotions
            or self._window.references_seen()
        ):
            return None  # mid-simulation state: results are history-dependent
        return {
            "policy": "dynamic",
            "pair": str(self.pair),
            "window": self.window,
            "promote_blocks": self.promote_blocks,
            "demote_blocks": self.demote_blocks,
        }


class StaticSmallPolicy(PageSizeAssignmentPolicy):
    """Every chunk stays mapped as small pages.

    This models hardware that supports two page sizes running under an
    operating system that never allocates large pages (Section 5.2.1).
    """

    def access_block(self, block: int) -> PageDecision:
        return PageDecision(block, False)

    def cache_token(self) -> Optional[dict]:
        return {"policy": "static-small", "pair": str(self.pair)}


class StaticLargePolicy(PageSizeAssignmentPolicy):
    """Every chunk is mapped as one large page."""

    def access_block(self, block: int) -> PageDecision:
        return PageDecision(block // self.pair.blocks_per_chunk, True)

    def cache_token(self) -> Optional[dict]:
        return {"policy": "static-large", "pair": str(self.pair)}


class ExplicitAssignmentPolicy(PageSizeAssignmentPolicy):
    """A fixed, caller-supplied set of chunks mapped as large pages.

    Models an operating system that chose page sizes ahead of time (e.g.
    large pages for a matrix region, small pages for the heap).
    """

    def __init__(self, pair: PageSizePair, large_chunks: Iterable[int]) -> None:
        super().__init__(pair)
        self._large_chunks = frozenset(large_chunks)

    def access_block(self, block: int) -> PageDecision:
        chunk = block // self.pair.blocks_per_chunk
        if chunk in self._large_chunks:
            return PageDecision(chunk, True)
        return PageDecision(block, False)

    def cache_token(self) -> Optional[dict]:
        return {
            "policy": "explicit",
            "pair": str(self.pair),
            "large_chunks": sorted(self._large_chunks),
        }
