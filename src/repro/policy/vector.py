"""Vectorized page-size assignment: the policy loop as array passes.

The dynamic promotion policy's per-reference work — sliding-window
bookkeeping, chunk occupancy counts and threshold checks — is a pure
function of the trace, so the whole decision stream can be computed
with numpy before any TLB sees a reference:

1. *Window events.*  A block enters the window when its previous
   occurrence is at least *T* references back, and the aged-out block
   leaves when its next occurrence is at least *T* ahead
   (:func:`repro.perf.kernels.window_events`).
2. *Chunk occupancy.*  Occupancy changes only at enter/leave events, so
   sorting the event stream chunk-major and taking a per-chunk running
   sum (a bincount-style grouped cumsum over 32KB-chunk ids) yields the
   distinct-block count after every event.
3. *Promotion state.*  A chunk is promoted when occupancy reaches the
   promote threshold and demoted when it falls below the demote
   threshold — a Schmitt trigger over the occupancy series, evaluated
   per chunk with two forward-filled trigger scans.

Two scalar oracles are mirrored bit-exactly, and they differ in one
corner: :class:`~repro.policy.promotion.DynamicPromotionPolicy` updates
the window fully *before* its threshold checks, so a reference whose
aged-out block and referenced block share a chunk sees the net
occupancy (one combined event here), while
:func:`~repro.policy.dynamic_ws.dynamic_average_working_set` applies
leave then enter strictly in order.  ``merge_same_chunk`` selects the
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.perf.kernels import window_events
from repro.policy.promotion import (
    DynamicPromotionPolicy,
    ExplicitAssignmentPolicy,
    PageSizeAssignmentPolicy,
    StaticLargePolicy,
    StaticSmallPolicy,
)
from repro.types import PageSizePair


@dataclass(frozen=True)
class PolicyDecisions:
    """The full decision stream of an assignment policy over one trace.

    Attributes:
        large: per reference, whether it was mapped by a large page.
        promoted: per reference, the chunk promoted at that reference
            (-1 when none) — the TLBs must invalidate its small pages.
        demoted: per reference, the chunk demoted at that reference
            (-1 when none) — the TLBs must invalidate its large page.
        promotions / demotions: transition totals over the trace.
    """

    large: np.ndarray
    promoted: np.ndarray
    demoted: np.ndarray
    promotions: int
    demotions: int


@dataclass(frozen=True)
class _EventState:
    """Per-event occupancy and promotion state, chunk-major ordered."""

    chunk: np.ndarray
    time: np.ndarray
    delta: np.ndarray
    occupancy: np.ndarray
    state: np.ndarray
    was_promoted: np.ndarray

    @property
    def promote_events(self) -> np.ndarray:
        return self.state & ~self.was_promoted

    @property
    def demote_events(self) -> np.ndarray:
        return self.was_promoted & ~self.state


def _window_event_stream(
    blocks: np.ndarray,
    chunks: np.ndarray,
    window: int,
    *,
    merge_same_chunk: bool,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build the (chunk, time, delta) event stream, chunk-major sorted.

    Event times are ``2 * ref`` for leaves and ``2 * ref + 1`` for
    enters, so each reference's leave precedes its enter and state
    queries at ``2 * ref + 1`` observe both.  With ``merge_same_chunk``
    a reference whose leave and enter land on one chunk becomes a
    single zero-delta event at the enter slot.
    """
    entered, left = window_events(blocks, window)
    enter_ref = np.nonzero(entered)[0]
    left_ref = np.nonzero(left)[0]
    left_chunk = chunks[left_ref - window]
    enter_chunk = chunks[enter_ref]

    if merge_same_chunk and left_ref.size:
        merged_mask = entered[left_ref] & (left_chunk == chunks[left_ref])
        merged_ref = left_ref[merged_mask]
        keep_leave = ~merged_mask
        left_ref = left_ref[keep_leave]
        left_chunk = left_chunk[keep_leave]
        keep_enter = ~np.isin(enter_ref, merged_ref, assume_unique=True)
        enter_ref = enter_ref[keep_enter]
        enter_chunk = enter_chunk[keep_enter]
    else:
        merged_ref = np.empty(0, dtype=np.int64)

    times = np.concatenate(
        [2 * left_ref, 2 * merged_ref + 1, 2 * enter_ref + 1]
    )
    chunk_ids = np.concatenate(
        [left_chunk, chunks[merged_ref], enter_chunk]
    )
    deltas = np.concatenate(
        [
            np.full(left_ref.size, -1, dtype=np.int64),
            np.zeros(merged_ref.size, dtype=np.int64),
            np.ones(enter_ref.size, dtype=np.int64),
        ]
    )
    order = np.lexsort((times, chunk_ids))
    return chunk_ids[order], times[order], deltas[order]


def _event_state(
    chunk_ids: np.ndarray,
    times: np.ndarray,
    deltas: np.ndarray,
    promote_blocks: int,
    demote_blocks: int,
) -> _EventState:
    """Occupancy and Schmitt-trigger promotion state after every event."""
    count = chunk_ids.size
    if count == 0:
        empty = np.empty(0, dtype=np.int64)
        flags = np.empty(0, dtype=bool)
        return _EventState(empty, empty, empty, empty, flags, flags)

    new_group = np.empty(count, dtype=bool)
    new_group[0] = True
    np.not_equal(chunk_ids[1:], chunk_ids[:-1], out=new_group[1:])
    starts = np.nonzero(new_group)[0]
    group = np.cumsum(new_group) - 1

    running = np.cumsum(deltas)
    before_group = np.where(starts > 0, running[starts - 1], 0)
    occupancy = running - before_group[group]

    # Promotion is a Schmitt trigger over occupancy: on at >= promote,
    # off below demote, hold in between.  Forward-fill the most recent
    # trigger of each kind; positions from earlier groups are detected
    # by comparing against the group's first position.
    position = np.arange(count, dtype=np.int64)
    group_start = starts[group]
    last_on = np.maximum.accumulate(
        np.where(occupancy >= promote_blocks, position, -1)
    )
    last_off = np.maximum.accumulate(
        np.where(occupancy < demote_blocks, position, -1)
    )
    on_seen = last_on >= group_start
    off_seen = last_off >= group_start
    state = on_seen & (~off_seen | (last_on > last_off))

    was_promoted = np.empty(count, dtype=bool)
    was_promoted[0] = False
    was_promoted[1:] = state[:-1]
    was_promoted[starts] = False
    return _EventState(chunk_ids, times, deltas, occupancy, state, was_promoted)


def _state_at_references(
    events: _EventState, chunks: np.ndarray
) -> np.ndarray:
    """Promotion state of each reference's chunk after its own events."""
    count = chunks.size
    if events.chunk.size == 0:
        return np.zeros(count, dtype=bool)
    # Chunk-major event keys are globally sorted; a query at the enter
    # slot of reference i finds that chunk's latest event at or before
    # 2i + 1.  Every referenced block is in the window, so its chunk
    # always has a prior enter event to find.
    span = 2 * count + 2
    stride = np.int64(span)
    keys = events.chunk * stride + events.time
    queries = chunks * stride + (2 * np.arange(count, dtype=np.int64) + 1)
    located = np.searchsorted(keys, queries, side="right") - 1
    return events.state[located]


def _transition_arrays(
    events: _EventState, count: int
) -> Tuple[np.ndarray, np.ndarray, int, int]:
    """Scatter promote/demote events back to per-reference arrays."""
    promoted = np.full(count, -1, dtype=np.int64)
    demoted = np.full(count, -1, dtype=np.int64)
    promote_events = events.promote_events
    demote_events = events.demote_events
    promoted[events.time[promote_events] >> 1] = events.chunk[promote_events]
    demoted[events.time[demote_events] >> 1] = events.chunk[demote_events]
    return (
        promoted,
        demoted,
        int(promote_events.sum()),
        int(demote_events.sum()),
    )


def dynamic_policy_decisions(
    blocks: np.ndarray,
    pair: PageSizePair,
    window: int,
    promote_blocks: int,
    demote_blocks: int,
) -> PolicyDecisions:
    """Decision stream of a fresh :class:`DynamicPromotionPolicy`.

    Produces exactly the PageDecision sequence the scalar policy would
    emit reference by reference, as arrays.
    """
    blocks = np.ascontiguousarray(np.asarray(blocks), dtype=np.int64)
    chunks = blocks // pair.blocks_per_chunk
    chunk_ids, times, deltas = _window_event_stream(
        blocks, chunks, window, merge_same_chunk=True
    )
    events = _event_state(
        chunk_ids, times, deltas, promote_blocks, demote_blocks
    )
    promoted, demoted, promotions, demotions = _transition_arrays(
        events, blocks.size
    )
    large = _state_at_references(events, chunks)
    return PolicyDecisions(large, promoted, demoted, promotions, demotions)


def policy_decisions(
    policy: PageSizeAssignmentPolicy, blocks: np.ndarray
) -> PolicyDecisions:
    """Vectorized decision stream for any supported policy.

    Raises :class:`ConfigurationError` for unsupported policies; use
    :func:`supports_vector_decisions` to test first.
    """
    blocks = np.ascontiguousarray(np.asarray(blocks), dtype=np.int64)
    count = blocks.size
    none = np.full(count, -1, dtype=np.int64)
    if isinstance(policy, DynamicPromotionPolicy):
        if not _policy_is_fresh(policy):
            raise ConfigurationError(
                "vector decisions need a fresh DynamicPromotionPolicy; "
                "this one has already seen references"
            )
        return dynamic_policy_decisions(
            blocks,
            policy.pair,
            policy.window,
            policy.promote_blocks,
            policy.demote_blocks,
        )
    if isinstance(policy, StaticSmallPolicy):
        return PolicyDecisions(np.zeros(count, dtype=bool), none, none, 0, 0)
    if isinstance(policy, StaticLargePolicy):
        return PolicyDecisions(np.ones(count, dtype=bool), none, none, 0, 0)
    if isinstance(policy, ExplicitAssignmentPolicy):
        chunks = blocks // policy.pair.blocks_per_chunk
        large = np.isin(chunks, np.fromiter(
            policy._large_chunks, dtype=np.int64,
            count=len(policy._large_chunks),
        ))
        return PolicyDecisions(large, none, none, 0, 0)
    raise ConfigurationError(
        f"no vector decision kernel for {type(policy).__name__}"
    )


def _policy_is_fresh(policy: DynamicPromotionPolicy) -> bool:
    """True when the policy has no accumulated window or promotion state."""
    return (
        policy.promoted_chunk_count() == 0
        and policy.promotions == 0
        and policy.demotions == 0
        and policy._window.references_seen() == 0
    )


def supports_vector_decisions(policy: PageSizeAssignmentPolicy) -> bool:
    """Whether :func:`policy_decisions` can replay ``policy`` exactly."""
    if isinstance(policy, DynamicPromotionPolicy):
        return _policy_is_fresh(policy)
    return isinstance(
        policy,
        (StaticSmallPolicy, StaticLargePolicy, ExplicitAssignmentPolicy),
    )


def dynamic_working_set_events(
    blocks: np.ndarray,
    pair: PageSizePair,
    window: int,
    promote_blocks: int,
    demote_blocks: int,
) -> Tuple[np.ndarray, np.ndarray, int, int]:
    """Per-reference working-set size under the dynamic policy, plus totals.

    Returns ``(current_bytes, reference_times, promotions, demotions)``
    where ``current_bytes[i]`` is the instantaneous two-page-size
    working-set size after reference ``i`` — the quantity the scalar
    sweep in :mod:`repro.policy.dynamic_ws` accumulates.  Events are
    *not* merged per chunk: that scalar oracle applies leave before
    enter unconditionally.
    """
    blocks = np.ascontiguousarray(np.asarray(blocks), dtype=np.int64)
    count = blocks.size
    if count == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, 0, 0
    chunks = blocks // pair.blocks_per_chunk
    chunk_ids, times, deltas = _window_event_stream(
        blocks, chunks, window, merge_same_chunk=False
    )
    events = _event_state(
        chunk_ids, times, deltas, promote_blocks, demote_blocks
    )

    small = np.int64(pair.small)
    large = np.int64(pair.large)
    promote_events = events.promote_events
    demote_events = events.demote_events
    byte_delta = np.where(
        promote_events,
        large - small * (events.occupancy - 1),
        np.where(
            demote_events,
            small * events.occupancy - large,
            np.where(
                events.state,
                0,
                np.where(deltas > 0, small, -small),
            ),
        ),
    )

    time_order = np.argsort(events.time)
    running = np.cumsum(byte_delta[time_order])
    ordered_times = events.time[time_order]
    queries = 2 * np.arange(count, dtype=np.int64) + 1
    located = np.searchsorted(ordered_times, queries, side="right") - 1
    current = running[located]
    return (
        current,
        queries,
        int(promote_events.sum()),
        int(demote_events.sum()),
    )
