"""Sliding working-set window over small-page blocks.

Section 3.4 of the paper bases its page-size assignment on "the last *T*
references": the address space is viewed as large-page *chunks* of eight
small-page *blocks*, and a chunk's page size is decided by how many of its
blocks were touched within the window.  This module maintains that window
incrementally, in O(1) per reference, and reports the block/chunk
transitions that the promotion policy and the dynamic working-set
calculator both consume.

The window is a circular buffer of the last *T* block numbers plus a
block -> count map; a block *enters* the window when its count rises from
zero and *leaves* when it falls back to zero.  Chunk occupancy (distinct
blocks present per chunk) is maintained alongside.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.types import PageSizePair

#: Transition codes yielded by :meth:`SlidingBlockWindow.access`.
BLOCK_ENTERED = 1
BLOCK_LEFT = -1


class SlidingBlockWindow:
    """Tracks which small-page blocks appeared in the last *T* references.

    Attributes:
        pair: the two-page-size configuration defining blocks and chunks.
        window: the working-set parameter *T*, in references.
    """

    def __init__(self, pair: PageSizePair, window: int) -> None:
        if window <= 0:
            raise ConfigurationError(f"window must be positive, got {window}")
        self.pair = pair
        self.window = window
        self._buffer = np.zeros(window, dtype=np.int64)
        self._cursor = 0
        self._filled = False
        self._block_counts: Dict[int, int] = {}
        self._chunk_occupancy: Dict[int, int] = {}
        self._blocks_per_chunk = pair.blocks_per_chunk

    def access(self, block: int) -> Tuple[Optional[int], Optional[int]]:
        """Record a reference to ``block`` and age out the oldest reference.

        Returns a pair ``(left_block, entered_block)``: the block that left
        the window because its last occurrence aged out (or None), and
        ``block`` itself if it was not present before (or None).  At most
        one block can leave per reference because exactly one reference
        ages out.
        """
        left: Optional[int] = None
        if self._filled:
            oldest = int(self._buffer[self._cursor])
            count = self._block_counts[oldest] - 1
            if count == 0:
                del self._block_counts[oldest]
                self._forget_chunk_block(oldest)
                left = oldest
            else:
                self._block_counts[oldest] = count

        self._buffer[self._cursor] = block
        self._cursor += 1
        if self._cursor == self.window:
            self._cursor = 0
            self._filled = True

        entered: Optional[int] = None
        previous = self._block_counts.get(block, 0)
        self._block_counts[block] = previous + 1
        if previous == 0:
            chunk = block // self._blocks_per_chunk
            self._chunk_occupancy[chunk] = self._chunk_occupancy.get(chunk, 0) + 1
            entered = block
        return left, entered

    def _forget_chunk_block(self, block: int) -> None:
        """Drop one block from its chunk's occupancy count."""
        chunk = block // self._blocks_per_chunk
        occupancy = self._chunk_occupancy[chunk] - 1
        if occupancy == 0:
            del self._chunk_occupancy[chunk]
        else:
            self._chunk_occupancy[chunk] = occupancy

    def block_present(self, block: int) -> bool:
        """Return True if ``block`` was referenced within the last T refs."""
        return block in self._block_counts

    def chunk_occupancy(self, chunk: int) -> int:
        """Return the number of distinct blocks of ``chunk`` in the window."""
        return self._chunk_occupancy.get(chunk, 0)

    def distinct_blocks(self) -> int:
        """Return the number of distinct blocks currently in the window."""
        return len(self._block_counts)

    def occupied_chunks(self) -> Iterator[Tuple[int, int]]:
        """Iterate over ``(chunk, occupancy)`` pairs currently in the window."""
        return iter(self._chunk_occupancy.items())

    def references_seen(self) -> int:
        """Return how many references have been recorded so far.

        Saturates at the window length once the buffer wraps; before that
        it equals the cursor position.
        """
        return self.window if self._filled else self._cursor
