"""Plain-text result presentation in the paper's style."""

from repro.report.figures import GroupedBarChart, series_csv
from repro.report.table import TextTable

__all__ = ["GroupedBarChart", "TextTable", "series_csv"]
