"""Figure-style output: grouped ASCII bar charts and CSV series.

The paper's Figures 5.1/5.2 are grouped bar charts (one group per
program, one bar per page-size scheme).  :class:`GroupedBarChart`
renders the same visual in plain text so benchmark output can be *read*
like the paper's figures; :func:`series_csv` exports the identical data
for external plotting.
"""

from __future__ import annotations

import io
from typing import List, Mapping, Sequence

from repro.errors import ReproError

#: Characters used for the bar body and its tip.
_BAR = "█"
_TIP = "▏"


class GroupedBarChart:
    """A grouped horizontal bar chart rendered in monospace text.

    Args:
        series_labels: the bar names within each group (page-size
            schemes), rendered in order.
        width: maximum bar length in characters.
    """

    def __init__(self, series_labels: Sequence[str], *, width: int = 40,
                 title: str = "", value_format: str = "{:.3f}") -> None:
        if not series_labels:
            raise ReproError("a chart needs at least one series")
        if width < 10:
            raise ReproError("chart width below 10 characters is unreadable")
        self.series_labels = list(series_labels)
        self.width = width
        self.title = title
        self.value_format = value_format
        self._groups: List[tuple] = []

    def add_group(self, label: str, values: Mapping[str, float]) -> "GroupedBarChart":
        """Add one group (e.g. one program) of bar values."""
        missing = set(self.series_labels) - set(values)
        if missing:
            raise ReproError(f"group {label!r} missing series {sorted(missing)}")
        for name, value in values.items():
            if value < 0:
                raise ReproError(f"bar value for {name!r} is negative")
        self._groups.append((label, dict(values)))
        return self

    def render(self) -> str:
        """Render all groups; bars share one global scale."""
        if not self._groups:
            raise ReproError("nothing to render: add_group first")
        peak = max(
            value
            for _, values in self._groups
            for value in values.values()
        )
        scale = (self.width / peak) if peak > 0 else 0.0
        label_width = max(
            len(series) for series in self.series_labels
        )
        out = io.StringIO()
        if self.title:
            out.write(self.title + "\n")
        for group_label, values in self._groups:
            out.write(f"{group_label}\n")
            for series in self.series_labels:
                value = values[series]
                length = int(round(value * scale))
                bar = _BAR * length if length else _TIP
                rendered_value = self.value_format.format(value)
                out.write(
                    f"  {series.ljust(label_width)} {bar} {rendered_value}\n"
                )
        return out.getvalue().rstrip("\n")

    def __str__(self) -> str:
        return self.render()


def series_csv(
    row_labels: Sequence[str],
    columns: Mapping[str, Mapping[str, float]],
    *,
    row_header: str = "program",
) -> str:
    """Render ``{column: {row: value}}`` as CSV with rows in given order.

    Used to export figure data for external plotting tools.
    """
    if not columns:
        raise ReproError("no columns to export")
    column_names = list(columns)
    lines = [",".join([row_header, *column_names])]
    for row in row_labels:
        cells = [row]
        for column in column_names:
            try:
                cells.append(repr(float(columns[column][row])))
            except KeyError:
                raise ReproError(
                    f"column {column!r} has no value for row {row!r}"
                ) from None
        lines.append(",".join(cells))
    return "\n".join(lines)
