"""Plain-text tables in the paper's style.

Every experiment renders its results through :class:`TextTable` so the
benchmark harness prints rows directly comparable to the paper's tables
(program name column, right-aligned numeric columns, section rules).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.errors import ReproError

Cell = Union[str, int, float, None]


class TextTable:
    """A fixed-column text table with paper-style number formatting."""

    def __init__(
        self,
        headers: Sequence[str],
        *,
        title: Optional[str] = None,
        float_format: str = "{:.3f}",
    ) -> None:
        if not headers:
            raise ReproError("a table needs at least one column")
        self.title = title
        self.headers = list(headers)
        self.float_format = float_format
        self._rows: List[Optional[List[str]]] = []

    def add_row(self, *cells: Cell) -> "TextTable":
        """Append a data row; cell count must match the headers."""
        if len(cells) != len(self.headers):
            raise ReproError(
                f"row has {len(cells)} cells; table has {len(self.headers)} "
                f"columns"
            )
        self._rows.append([self._format(cell) for cell in cells])
        return self

    def add_rule(self) -> "TextTable":
        """Append a horizontal rule (section separator)."""
        self._rows.append(None)
        return self

    def render(self) -> str:
        """Render the table as aligned plain text."""
        widths = [len(header) for header in self.headers]
        for row in self._rows:
            if row is None:
                continue
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells: Sequence[str]) -> str:
            parts = []
            for index, cell in enumerate(cells):
                if index == 0:
                    parts.append(cell.ljust(widths[index]))
                else:
                    parts.append(cell.rjust(widths[index]))
            return "  ".join(parts).rstrip()

        rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
        out: List[str] = []
        if self.title:
            out.append(self.title)
        out.append(line(self.headers))
        out.append(rule)
        for row in self._rows:
            out.append(rule if row is None else line(row))
        return "\n".join(out)

    def _format(self, cell: Cell) -> str:
        if cell is None:
            return "-"
        if isinstance(cell, bool):  # bool is an int subclass; be explicit
            return "yes" if cell else "no"
        if isinstance(cell, float):
            return self.float_format.format(cell)
        return str(cell)

    def __str__(self) -> str:
        return self.render()
