"""Fault-tolerant experiment execution.

The paper's economics make one simulation pass expensive and its results
precious (Hill–Smith all-associativity simulation: 84 configurations per
pass); this package brings the matching degrade-don't-die discipline to
the reproduction's execution layer:

* :mod:`repro.robustness.journal` — append-only JSONL checkpoint journal
  with per-line CRCs and a run fingerprint, so interrupted suites resume
  instead of restarting;
* :mod:`repro.robustness.retry` — exponential backoff and per-unit
  wall-clock deadlines;
* :mod:`repro.robustness.executor` — failure-isolated suite execution
  producing a structured :class:`SuiteReport`;
* :mod:`repro.robustness.faultinject` — deterministic byte corruption
  and transient exception injection used to *prove* the above works.
"""

from repro.robustness.executor import (
    SuiteReport,
    UnitOutcome,
    UnitSpec,
    run_units,
)
from repro.robustness.journal import RunJournal, UnitRecord
from repro.robustness.retry import (
    NO_RETRY,
    Deadline,
    RetryPolicy,
    call_with_retry,
)

__all__ = [
    "Deadline",
    "NO_RETRY",
    "RetryPolicy",
    "RunJournal",
    "SuiteReport",
    "UnitOutcome",
    "UnitRecord",
    "UnitSpec",
    "call_with_retry",
    "run_units",
]
