"""Failure-isolated execution of a suite of experiment units.

:func:`run_units` is the degrade-don't-die engine behind
``repro-experiments``: each unit runs under a retry policy and an
optional per-unit deadline; a unit that still fails is recorded as
FAILED with its traceback and the *rest of the suite keeps going*; with
a :class:`~repro.robustness.journal.RunJournal` attached, every outcome
is checkpointed so an interrupted run resumes where it left off.

The resulting :class:`SuiteReport` renders a one-screen summary (OK /
SKIPPED / FAILED per unit plus each failure's message) and maps to the
process exit code: 0 when everything succeeded, 1 when any unit failed.
"""

from __future__ import annotations

import time
import traceback as traceback_module
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.errors import DeadlineExceededError
from repro.parallel.supervisor import SupervisorConfig
from repro.robustness.journal import RunJournal
from repro.robustness.retry import Deadline, RetryPolicy, call_with_retry

STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_SKIPPED = "skipped"


@dataclass(frozen=True)
class UnitSpec:
    """One schedulable unit of work: a name and a zero-argument callable.

    ``needs`` names units that must *complete successfully* first (they
    must be listed earlier in the suite); if one fails, this unit is
    recorded FAILED without running.  ``affinity`` is an opaque grouping
    key for parallel runs — units sharing a key run in the same worker
    process, so worker-local state (attached shared-memory traces, a
    warmed stack pass) is actually reused.  Both are ignored-but-honored
    in serial runs: ``needs`` still gates execution, ``affinity`` is
    moot when there is only one process.

    ``cost`` is an optional relative size estimate (e.g. estimated
    references x geometry count) steering parallel batch packing; it
    never affects correctness, only how units are grouped per dispatch.
    """

    name: str
    run: Callable[[], Any]
    needs: Tuple[str, ...] = ()
    affinity: Optional[str] = None
    cost: Optional[float] = None


@dataclass(frozen=True)
class UnitOutcome:
    """What happened to one unit.

    ``status`` is ``"ok"`` (ran and succeeded), ``"skipped"`` (already
    journaled as complete by a previous run), or ``"failed"`` (exhausted
    its retries or its deadline).  ``result`` is the unit's return value
    only when it ran this time; skipped units carry ``None``.
    """

    name: str
    status: str
    result: Any = None
    error: Optional[str] = None
    traceback: Optional[str] = None
    elapsed: float = 0.0
    attempts: int = 0

    @property
    def failed(self) -> bool:
        return self.status == STATUS_FAILED


@dataclass
class SuiteReport:
    """Every unit's outcome, in execution order."""

    outcomes: List[UnitOutcome] = field(default_factory=list)
    #: Supervision counters from a supervised parallel run (kills,
    #: requeues, respawns, poisoned units, degraded flag); None for
    #: serial or unsupervised runs.
    supervision: Optional[Dict[str, Any]] = None
    #: Corrupt cache entries discarded (and recomputed) during the run.
    cache_corrupt_discarded: int = 0
    #: Per-unit orchestration timing from a parallel run: ``{"units":
    #: {name: {dispatch_s, queue_wait_s, run_s, result_transfer_s,
    #: flush_s}}, "totals": {...}}``; None for serial runs.
    timing: Optional[Dict[str, Any]] = None

    @property
    def succeeded(self) -> List[UnitOutcome]:
        return [o for o in self.outcomes if o.status == STATUS_OK]

    @property
    def skipped(self) -> List[UnitOutcome]:
        return [o for o in self.outcomes if o.status == STATUS_SKIPPED]

    @property
    def failures(self) -> List[UnitOutcome]:
        return [o for o in self.outcomes if o.failed]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def render(self) -> str:
        """One-screen failure report in the style of a test summary."""
        lines = [
            f"suite: {len(self.succeeded)} ok, {len(self.skipped)} resumed, "
            f"{len(self.failures)} failed"
        ]
        for outcome in self.outcomes:
            marker = {
                STATUS_OK: "ok    ",
                STATUS_SKIPPED: "resume",
                STATUS_FAILED: "FAILED",
            }[outcome.status]
            detail = f" ({outcome.elapsed:.1f}s, {outcome.attempts} attempt"
            detail += "s)" if outcome.attempts != 1 else ")"
            if outcome.status == STATUS_SKIPPED:
                detail = " (journaled by a previous run)"
            lines.append(f"  {marker}  {outcome.name}{detail}")
        if self.cache_corrupt_discarded:
            lines.append(
                f"  note: {self.cache_corrupt_discarded} corrupt cache "
                f"entr{'ies' if self.cache_corrupt_discarded != 1 else 'y'} "
                f"discarded and recomputed"
            )
        if self.supervision:
            sup = self.supervision
            interventions = (
                sup.get("crashes", 0)
                + sup.get("hangs", 0)
                + sup.get("respawns", 0)
            )
            if interventions or sup.get("degraded") or sup.get("poisoned"):
                lines.append(
                    f"  supervision: {sup.get('crashes', 0)} crashes, "
                    f"{sup.get('hangs', 0)} hangs, "
                    f"{sup.get('respawns', 0)} respawns, "
                    f"{len(sup.get('poisoned', []))} quarantined"
                    + (" [degraded to serial]" if sup.get("degraded") else "")
                )
        for outcome in self.failures:
            lines.append("")
            lines.append(f"FAILED {outcome.name}: {outcome.error}")
            if outcome.traceback:
                lines.append(outcome.traceback.rstrip("\n"))
        return "\n".join(lines)


def run_units(
    units: Sequence[UnitSpec],
    *,
    journal: Optional[RunJournal] = None,
    resume: bool = False,
    retry_policy: RetryPolicy = RetryPolicy(),
    deadline_seconds: Optional[float] = None,
    fail_fast: bool = False,
    retriable: Tuple[Type[BaseException], ...] = (Exception,),
    on_success: Optional[Callable[[UnitSpec, Any, float], None]] = None,
    on_skip: Optional[Callable[[UnitSpec], None]] = None,
    on_failure: Optional[Callable[[UnitSpec, BaseException], None]] = None,
    on_retry: Optional[Callable[[UnitSpec, int, BaseException, float], None]] = None,
    journal_payload: Optional[
        Callable[[UnitSpec, Any], Optional[Dict[str, Any]]]
    ] = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
    jobs: Optional[int] = None,
    supervision: Optional[SupervisorConfig] = None,
    batch_size: Optional[int] = None,
) -> SuiteReport:
    """Run every unit, isolating failures; never raises for a unit's error.

    ``on_success`` (publishing: rendering, writing result files) runs
    *before* the unit is journaled as complete, and inside the same
    failure-isolation boundary as the unit itself — a publish error
    records the unit FAILED rather than letting a later ``--resume``
    skip a unit whose outputs were never written.  ``journal_payload``
    maps a unit's result to the dict stored on its success record, so a
    resumed run can re-publish outputs without re-running the unit.

    ``jobs`` spreads units over that many forked worker processes
    (``0`` = one per CPU; default serial).  The parallel path
    (:mod:`repro.parallel.engine`) produces the same report, journal
    contents and callback order as this serial loop: workers only
    compute, while the parent publishes and journals outcomes as a
    contiguous prefix of spec order.  ``clock``/``sleep`` injection only
    affects worker-side retry timing through the fork, so tests that
    fake time should stay serial.

    ``KeyboardInterrupt``/``SystemExit`` still propagate (after being
    journaled as a failure when a journal is attached) so an operator's
    Ctrl-C actually stops the run — the journal then makes the rerun
    cheap, which is the whole point.
    """
    from repro.parallel.cache import corrupt_discarded_total
    from repro.parallel.pool import resolve_jobs

    worker_count = resolve_jobs(jobs)
    corrupt_before = corrupt_discarded_total()
    if worker_count > 1 and len(units) > 1:
        from repro.parallel.engine import run_units_parallel

        return run_units_parallel(
            units,
            jobs=worker_count,
            journal=journal,
            resume=resume,
            retry_policy=retry_policy,
            deadline_seconds=deadline_seconds,
            fail_fast=fail_fast,
            retriable=retriable,
            on_success=on_success,
            on_skip=on_skip,
            on_failure=on_failure,
            on_retry=on_retry,
            journal_payload=journal_payload,
            clock=clock,
            sleep=sleep,
            supervision=supervision,
            batch_size=batch_size,
        )
    if any(spec.needs or spec.affinity is not None for spec in units):
        from repro.parallel.scheduler import validate_units

        validate_units(units)

    report = SuiteReport()
    failed_names = set()
    for spec in units:
        if resume and journal is not None and journal.completed(spec.name):
            previous = journal.get(spec.name)
            report.outcomes.append(
                UnitOutcome(
                    name=spec.name,
                    status=STATUS_SKIPPED,
                    elapsed=previous.elapsed if previous else 0.0,
                )
            )
            if on_skip is not None:
                on_skip(spec)
            continue

        failed_needs = [need for need in spec.needs if need in failed_names]
        if failed_needs:
            from repro.errors import ParallelError

            error = ParallelError(f"dependency {failed_needs[0]!r} failed")
            error_text = f"{type(error).__name__}: {error}"
            failed_names.add(spec.name)
            if journal is not None:
                journal.record_failure(
                    spec.name, error=error_text, elapsed=0.0, attempts=0
                )
            report.outcomes.append(
                UnitOutcome(
                    name=spec.name,
                    status=STATUS_FAILED,
                    error=error_text,
                    elapsed=0.0,
                    attempts=0,
                )
            )
            if on_failure is not None:
                on_failure(spec, error)
            if fail_fast:
                break
            continue

        deadline = Deadline(deadline_seconds, clock=clock)
        started = clock()
        attempts_seen = {"count": 0}

        def unit_on_retry(attempt, error, delay, _spec=spec):
            attempts_seen["count"] = attempt
            if on_retry is not None:
                on_retry(_spec, attempt, error, delay)

        def journal_interrupt(interrupt, attempts, _spec=spec, _started=started):
            if journal is not None:
                journal.record_failure(
                    _spec.name,
                    error=f"interrupted: {interrupt!r}",
                    elapsed=clock() - _started,
                    attempts=attempts,
                )

        def record_unit_failure(error, attempts, _spec=spec, _started=started):
            failed_names.add(_spec.name)
            elapsed = clock() - _started
            trace_text = "".join(
                traceback_module.format_exception(
                    type(error), error, error.__traceback__
                )
            )
            if journal is not None:
                journal.record_failure(
                    _spec.name,
                    error=f"{type(error).__name__}: {error}",
                    traceback=trace_text,
                    elapsed=elapsed,
                    attempts=attempts,
                )
            report.outcomes.append(
                UnitOutcome(
                    name=_spec.name,
                    status=STATUS_FAILED,
                    error=f"{type(error).__name__}: {error}",
                    traceback=trace_text,
                    elapsed=elapsed,
                    attempts=attempts,
                )
            )
            if on_failure is not None:
                on_failure(_spec, error)

        try:
            result, attempts = call_with_retry(
                spec.run,
                policy=retry_policy,
                deadline=deadline,
                retriable=retriable,
                on_retry=unit_on_retry,
                sleep=sleep,
                label=spec.name,
            )
        except (KeyboardInterrupt, SystemExit) as interrupt:
            journal_interrupt(interrupt, attempts_seen["count"] + 1)
            raise
        except BaseException as error:  # noqa: BLE001 - isolation boundary
            attempts = (
                attempts_seen["count"] + 1
                if not isinstance(error, DeadlineExceededError)
                else attempts_seen["count"]
            )
            record_unit_failure(error, attempts)
            if fail_fast:
                break
            continue

        # Publish BEFORE journaling success: a unit is complete only
        # once its outputs exist, so a publish error (render, CSV or
        # results-dir write) must not leave a success record that a
        # later --resume would trust.
        elapsed = clock() - started
        payload: Optional[Dict[str, Any]] = None
        try:
            if on_success is not None:
                on_success(spec, result, elapsed)
            if journal is not None and journal_payload is not None:
                payload = journal_payload(spec, result)
        except (KeyboardInterrupt, SystemExit) as interrupt:
            journal_interrupt(interrupt, attempts)
            raise
        except BaseException as error:  # noqa: BLE001 - isolation boundary
            record_unit_failure(error, attempts)
            if fail_fast:
                break
            continue

        if journal is not None:
            journal.record_success(
                spec.name, elapsed=elapsed, attempts=attempts, payload=payload
            )
        report.outcomes.append(
            UnitOutcome(
                name=spec.name,
                status=STATUS_OK,
                result=result,
                elapsed=elapsed,
                attempts=attempts,
            )
        )
    report.cache_corrupt_discarded = corrupt_discarded_total() - corrupt_before
    return report


__all__ = [
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_SKIPPED",
    "SuiteReport",
    "UnitOutcome",
    "UnitSpec",
    "run_units",
]
