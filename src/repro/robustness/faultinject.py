"""Deterministic fault injection for robustness testing.

Three families of faults, all fully deterministic so failures reproduce:

* **Byte-level corruption** of on-disk trace files —
  :func:`flip_byte`, :func:`truncate_file`, and the seeded
  :func:`corrupt_trace` — used to prove that every corrupted or
  truncated ``.rpt`` raises a structured
  :class:`~repro.errors.TraceError` subclass rather than a silent wrong
  result or a bare ``struct.error``.

* **Transient exception injection** into simulation and experiment
  steps.  :class:`FaultPlan` raises :class:`TransientInjectedFault` for
  the first *N* visits to matching sites; the simulation drivers call
  :func:`check` at well-known sites (``sim.driver.run_single_size``,
  ``sim.driver.run_with_policy``, ``sim.sweep``), so a test can make a
  real trace pass fail twice and succeed on the third retry.

* **Parallel chaos** against the worker pool (:class:`ChaosPlan`):
  seeded selection of victim units whose workers are SIGKILLed or hung
  mid-unit, plus corruption helpers for shared-memory trace segments
  (:func:`corrupt_shared_memory`) and result-cache entries
  (:func:`corrupt_cache_entry`).  Strikes fire **only inside pool
  workers** (never in the parent or a degraded-serial run) and use a
  token directory for exactly-``times`` cross-process semantics, so a
  requeued unit recovers on its next attempt — or keeps striking to
  prove poison-unit quarantine.

Injected faults deliberately do **not** derive from
:class:`~repro.errors.ReproError`: they model the *unexpected* crash the
robustness layer must survive, so they must not be swallowed by the
``except ReproError`` clauses at the CLI boundaries.
"""

from __future__ import annotations

import os
import random
import signal
import time
from contextlib import contextmanager
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro.errors import ConfigurationError

PathLike = Union[str, os.PathLike]
T = TypeVar("T")


class InjectedFault(RuntimeError):
    """A failure injected on purpose by the fault harness."""


class TransientInjectedFault(InjectedFault):
    """An injected failure that clears after a bounded number of hits."""


class FaultPlan:
    """Raise on the first ``times`` visits to matching sites.

    Attributes:
        times: how many visits raise before the fault clears.
        sites: site-name prefixes to match (None = every site).
        exc_factory: builds the exception to raise, given the site name.
    """

    def __init__(
        self,
        times: int = 1,
        *,
        sites: Optional[Sequence[str]] = None,
        exc_factory: Optional[Callable[[str], BaseException]] = None,
    ) -> None:
        if times < 0:
            raise ConfigurationError("fault count cannot be negative")
        self.times = times
        self.sites = tuple(sites) if sites is not None else None
        self.exc_factory = exc_factory or (
            lambda site: TransientInjectedFault(f"injected fault at {site}")
        )
        self.triggered = 0
        self.visits = 0

    def matches(self, site: str) -> bool:
        if self.sites is None:
            return True
        return any(site.startswith(prefix) for prefix in self.sites)

    def visit(self, site: str) -> None:
        """Record a visit to ``site``, raising while the plan is armed."""
        if not self.matches(site):
            return
        self.visits += 1
        if self.triggered < self.times:
            self.triggered += 1
            raise self.exc_factory(site)


#: The active plan, consulted by :func:`check`.  None = faults disabled,
#: which keeps the hot-path cost of instrumented sites to one attribute
#: load and an is-None test.
_ACTIVE_PLAN: Optional[FaultPlan] = None


def check(site: str) -> None:
    """Fault-injection hook: instrumented code calls this at named sites."""
    plan = _ACTIVE_PLAN
    if plan is not None:
        plan.visit(site)


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the duration of the ``with`` block."""
    global _ACTIVE_PLAN
    previous = _ACTIVE_PLAN
    _ACTIVE_PLAN = plan
    try:
        yield plan
    finally:
        _ACTIVE_PLAN = previous


def flaky(
    fn: Callable[..., T],
    *,
    failures: int = 1,
    exc_factory: Optional[Callable[[int], BaseException]] = None,
) -> Callable[..., T]:
    """Wrap ``fn`` to raise on its first ``failures`` calls, then pass through."""
    state = {"calls": 0}
    make = exc_factory or (
        lambda call: TransientInjectedFault(f"injected fault on call {call}")
    )

    def wrapper(*args, **kwargs):
        state["calls"] += 1
        if state["calls"] <= failures:
            raise make(state["calls"])
        return fn(*args, **kwargs)

    wrapper.__name__ = getattr(fn, "__name__", "flaky")
    return wrapper


# -- byte-level corruption ----------------------------------------------


def flip_byte(path: PathLike, offset: int, mask: int = 0xFF) -> int:
    """XOR the byte at ``offset`` with ``mask`` in place; returns old value."""
    if not 1 <= mask <= 0xFF:
        raise ConfigurationError("mask must flip at least one bit")
    with open(path, "r+b") as stream:
        stream.seek(0, os.SEEK_END)
        size = stream.tell()
        if not 0 <= offset < size:
            raise ConfigurationError(
                f"offset {offset} outside file of {size} bytes"
            )
        stream.seek(offset)
        old = stream.read(1)[0]
        stream.seek(offset)
        stream.write(bytes([old ^ mask]))
    return old


def truncate_file(path: PathLike, length: int) -> int:
    """Truncate ``path`` to ``length`` bytes; returns the original size."""
    size = os.path.getsize(path)
    if not 0 <= length <= size:
        raise ConfigurationError(
            f"cannot truncate {size}-byte file to {length} bytes"
        )
    with open(path, "r+b") as stream:
        stream.truncate(length)
    return size


def corrupt_trace(
    path: PathLike,
    *,
    mode: str = "flip",
    seed: int = 0,
    offset: Optional[int] = None,
) -> int:
    """Deterministically damage a trace file.

    ``mode="flip"`` XORs one byte (chosen by ``seed`` unless ``offset``
    is given); ``mode="truncate"`` cuts the file at a seed-chosen (or
    explicit) length.  Returns the offset/length used, so tests can
    report exactly which byte proved fragile.
    """
    size = os.path.getsize(path)
    if size == 0:
        raise ConfigurationError(f"{path}: cannot corrupt an empty file")
    rng = random.Random(seed)
    if mode == "flip":
        target = rng.randrange(size) if offset is None else offset
        flip_byte(path, target, mask=rng.randrange(1, 256))
        return target
    if mode == "truncate":
        target = rng.randrange(size) if offset is None else offset
        truncate_file(path, target)
        return target
    raise ConfigurationError(f"unknown corruption mode {mode!r}")


# -- parallel chaos ------------------------------------------------------


def _token_slug(name: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in name)


class ChaosPlan:
    """Seeded worker-kill / worker-hang chaos for the parallel engine.

    ``victims`` maps a unit name to ``(action, times)`` where ``action``
    is ``"kill"`` (SIGKILL own process mid-unit) or ``"hang"`` (sleep
    ``hang_seconds``, far past any supervised deadline).  Each victim
    strikes on its first ``times`` *attempts*, counted across processes
    through ``token_dir`` (one ``O_CREAT|O_EXCL`` token per strike) —
    so with ``times=1`` the requeued attempt succeeds, and with
    ``times >= max_worker_kills`` the unit proves quarantine.

    Strikes are a no-op outside a pool worker: a degraded-serial
    fallback or a serial equivalence run executes the same wrapped
    callables untouched, which is exactly the "byte-identical to
    serial" contract the chaos matrix asserts.
    """

    def __init__(
        self,
        token_dir: PathLike,
        *,
        victims: Dict[str, Tuple[str, int]],
        hang_seconds: float = 60.0,
    ) -> None:
        for name, (action, times) in victims.items():
            if action not in ("kill", "hang"):
                raise ConfigurationError(
                    f"unknown chaos action {action!r} for {name!r}"
                )
            if times < 1:
                raise ConfigurationError(
                    f"chaos victim {name!r} needs times >= 1, got {times}"
                )
        self.token_dir = Path(token_dir)
        self.token_dir.mkdir(parents=True, exist_ok=True)
        self.victims = dict(victims)
        self.hang_seconds = hang_seconds

    @classmethod
    def sample(
        cls,
        names: Sequence[str],
        token_dir: PathLike,
        *,
        kills: int = 0,
        hangs: int = 0,
        seed: int = 0,
        times: int = 1,
        hang_seconds: float = 60.0,
    ) -> "ChaosPlan":
        """Pick ``kills`` + ``hangs`` victim units deterministically."""
        names = list(names)
        if kills + hangs > len(names):
            raise ConfigurationError(
                f"cannot pick {kills + hangs} victims from "
                f"{len(names)} units"
            )
        chosen = random.Random(seed).sample(names, kills + hangs)
        victims: Dict[str, Tuple[str, int]] = {}
        for name in chosen[:kills]:
            victims[name] = ("kill", times)
        for name in chosen[kills:]:
            victims[name] = ("hang", times)
        return cls(token_dir, victims=victims, hang_seconds=hang_seconds)

    def strike(self, name: str) -> None:
        """Maybe kill or hang the calling process (pool workers only)."""
        victim = self.victims.get(name)
        if victim is None:
            return
        from repro.parallel.pool import in_worker

        if not in_worker():
            return  # never take down the parent / degraded-serial run
        action, times = victim
        for attempt in range(times):
            token = self.token_dir / f"{action}-{_token_slug(name)}-{attempt}"
            try:
                fd = os.open(str(token), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue  # this strike already happened (earlier attempt)
            os.close(fd)
            if action == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            time.sleep(self.hang_seconds)
            return

    def wrap(self, name: str, fn: Callable[[], T]) -> Callable[[], T]:
        """Wrap a unit callable so it strikes (maybe) before running."""

        def chaotic() -> T:
            self.strike(name)
            return fn()

        chaotic.__name__ = getattr(fn, "__name__", "chaotic")
        return chaotic

    def strikes_delivered(self) -> int:
        """How many strikes actually fired (tokens consumed)."""
        return sum(1 for _ in self.token_dir.iterdir())


def corrupt_shared_memory(shm_name: str, *, seed: int = 0) -> int:
    """Flip one seeded byte of a shared-memory segment; returns offset.

    Models a scribbler or bit flip in the shared trace transport;
    :func:`repro.trace.trace_io.attach_shared_trace` must catch it via
    the handle CRC and raise
    :class:`~repro.errors.TraceIntegrityError` instead of simulating
    garbage.  POSIX shared memory is a tmpfs file, so the flip goes
    through the file — writes are visible to every existing mapping and
    no :class:`~multiprocessing.shared_memory.SharedMemory` attach (with
    its resource-tracker registration side effects) is needed.
    """
    path = os.path.join("/dev/shm", shm_name.lstrip("/"))
    if not os.path.exists(path):
        raise ConfigurationError(
            f"shared memory segment {shm_name!r} not found at {path}"
        )
    rng = random.Random(seed)
    offset = rng.randrange(os.path.getsize(path))
    flip_byte(path, offset, mask=rng.randrange(1, 256))
    return offset


def corrupt_cache_entry(root: PathLike, *, seed: int = 0) -> Path:
    """Flip one seeded byte of one result-cache entry; returns its path."""
    entries = sorted(Path(root).rglob("*.json"))
    if not entries:
        raise ConfigurationError(f"{root}: no cache entries to corrupt")
    rng = random.Random(seed)
    path = entries[rng.randrange(len(entries))]
    flip_byte(path, rng.randrange(path.stat().st_size), mask=0x40)
    return path


__all__ = [
    "ChaosPlan",
    "FaultPlan",
    "InjectedFault",
    "TransientInjectedFault",
    "check",
    "corrupt_cache_entry",
    "corrupt_shared_memory",
    "corrupt_trace",
    "flaky",
    "flip_byte",
    "inject",
    "truncate_file",
]
