"""Deterministic fault injection for robustness testing.

Two families of faults, both fully deterministic so failures reproduce:

* **Byte-level corruption** of on-disk trace files —
  :func:`flip_byte`, :func:`truncate_file`, and the seeded
  :func:`corrupt_trace` — used to prove that every corrupted or
  truncated ``.rpt`` raises a structured
  :class:`~repro.errors.TraceError` subclass rather than a silent wrong
  result or a bare ``struct.error``.

* **Transient exception injection** into simulation and experiment
  steps.  :class:`FaultPlan` raises :class:`TransientInjectedFault` for
  the first *N* visits to matching sites; the simulation drivers call
  :func:`check` at well-known sites (``sim.driver.run_single_size``,
  ``sim.driver.run_with_policy``, ``sim.sweep``), so a test can make a
  real trace pass fail twice and succeed on the third retry.

Injected faults deliberately do **not** derive from
:class:`~repro.errors.ReproError`: they model the *unexpected* crash the
robustness layer must survive, so they must not be swallowed by the
``except ReproError`` clauses at the CLI boundaries.
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager
from typing import Callable, Iterator, Optional, Sequence, TypeVar, Union

from repro.errors import ConfigurationError

PathLike = Union[str, os.PathLike]
T = TypeVar("T")


class InjectedFault(RuntimeError):
    """A failure injected on purpose by the fault harness."""


class TransientInjectedFault(InjectedFault):
    """An injected failure that clears after a bounded number of hits."""


class FaultPlan:
    """Raise on the first ``times`` visits to matching sites.

    Attributes:
        times: how many visits raise before the fault clears.
        sites: site-name prefixes to match (None = every site).
        exc_factory: builds the exception to raise, given the site name.
    """

    def __init__(
        self,
        times: int = 1,
        *,
        sites: Optional[Sequence[str]] = None,
        exc_factory: Optional[Callable[[str], BaseException]] = None,
    ) -> None:
        if times < 0:
            raise ConfigurationError("fault count cannot be negative")
        self.times = times
        self.sites = tuple(sites) if sites is not None else None
        self.exc_factory = exc_factory or (
            lambda site: TransientInjectedFault(f"injected fault at {site}")
        )
        self.triggered = 0
        self.visits = 0

    def matches(self, site: str) -> bool:
        if self.sites is None:
            return True
        return any(site.startswith(prefix) for prefix in self.sites)

    def visit(self, site: str) -> None:
        """Record a visit to ``site``, raising while the plan is armed."""
        if not self.matches(site):
            return
        self.visits += 1
        if self.triggered < self.times:
            self.triggered += 1
            raise self.exc_factory(site)


#: The active plan, consulted by :func:`check`.  None = faults disabled,
#: which keeps the hot-path cost of instrumented sites to one attribute
#: load and an is-None test.
_ACTIVE_PLAN: Optional[FaultPlan] = None


def check(site: str) -> None:
    """Fault-injection hook: instrumented code calls this at named sites."""
    plan = _ACTIVE_PLAN
    if plan is not None:
        plan.visit(site)


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the duration of the ``with`` block."""
    global _ACTIVE_PLAN
    previous = _ACTIVE_PLAN
    _ACTIVE_PLAN = plan
    try:
        yield plan
    finally:
        _ACTIVE_PLAN = previous


def flaky(
    fn: Callable[..., T],
    *,
    failures: int = 1,
    exc_factory: Optional[Callable[[int], BaseException]] = None,
) -> Callable[..., T]:
    """Wrap ``fn`` to raise on its first ``failures`` calls, then pass through."""
    state = {"calls": 0}
    make = exc_factory or (
        lambda call: TransientInjectedFault(f"injected fault on call {call}")
    )

    def wrapper(*args, **kwargs):
        state["calls"] += 1
        if state["calls"] <= failures:
            raise make(state["calls"])
        return fn(*args, **kwargs)

    wrapper.__name__ = getattr(fn, "__name__", "flaky")
    return wrapper


# -- byte-level corruption ----------------------------------------------


def flip_byte(path: PathLike, offset: int, mask: int = 0xFF) -> int:
    """XOR the byte at ``offset`` with ``mask`` in place; returns old value."""
    if not 1 <= mask <= 0xFF:
        raise ConfigurationError("mask must flip at least one bit")
    with open(path, "r+b") as stream:
        stream.seek(0, os.SEEK_END)
        size = stream.tell()
        if not 0 <= offset < size:
            raise ConfigurationError(
                f"offset {offset} outside file of {size} bytes"
            )
        stream.seek(offset)
        old = stream.read(1)[0]
        stream.seek(offset)
        stream.write(bytes([old ^ mask]))
    return old


def truncate_file(path: PathLike, length: int) -> int:
    """Truncate ``path`` to ``length`` bytes; returns the original size."""
    size = os.path.getsize(path)
    if not 0 <= length <= size:
        raise ConfigurationError(
            f"cannot truncate {size}-byte file to {length} bytes"
        )
    with open(path, "r+b") as stream:
        stream.truncate(length)
    return size


def corrupt_trace(
    path: PathLike,
    *,
    mode: str = "flip",
    seed: int = 0,
    offset: Optional[int] = None,
) -> int:
    """Deterministically damage a trace file.

    ``mode="flip"`` XORs one byte (chosen by ``seed`` unless ``offset``
    is given); ``mode="truncate"`` cuts the file at a seed-chosen (or
    explicit) length.  Returns the offset/length used, so tests can
    report exactly which byte proved fragile.
    """
    size = os.path.getsize(path)
    if size == 0:
        raise ConfigurationError(f"{path}: cannot corrupt an empty file")
    rng = random.Random(seed)
    if mode == "flip":
        target = rng.randrange(size) if offset is None else offset
        flip_byte(path, target, mask=rng.randrange(1, 256))
        return target
    if mode == "truncate":
        target = rng.randrange(size) if offset is None else offset
        truncate_file(path, target)
        return target
    raise ConfigurationError(f"unknown corruption mode {mode!r}")


__all__ = [
    "FaultPlan",
    "InjectedFault",
    "TransientInjectedFault",
    "check",
    "corrupt_trace",
    "flaky",
    "flip_byte",
    "inject",
    "truncate_file",
]
