"""Checkpoint/resume journal for long-running experiment suites.

The paper's economics (Hill–Smith all-associativity simulation) make one
trace pass expensive and its results precious; this journal is the
software analogue of not throwing a pass away.  Each completed unit of
work — one (experiment, trace, config) — is appended as one JSON line to
an append-only journal, and a resumed run skips every unit already
recorded as successful.

Journal layout (one JSON object per line)::

    {"type": "meta", "version": 1, "fingerprint": {...}}     # first line
    {"type": "unit", "unit": "...", "status": "ok", ...}      # one per unit
    {"type": "unit", "unit": "...", "status": "failed", ...}

Every line carries a ``"crc"`` field: the CRC32 of the line's canonical
JSON with the ``crc`` key removed.  On load, a corrupt *final* line (the
signature of a crash mid-append) is dropped — and truncated from the
file, so later appends start on a clean line — and its unit simply
re-runs; a corrupt line anywhere earlier raises
:class:`~repro.errors.JournalError`, because silently skipping completed
work in the middle of the record could double-run side-effecting units.

The ``fingerprint`` pins the run parameters (scale, seed, generator
version).  Resuming against a journal whose fingerprint differs raises
:class:`~repro.errors.JournalError` — results recorded at one scale must
never satisfy a run at another.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.errors import JournalError

PathLike = Union[str, os.PathLike]

JOURNAL_VERSION = 1

STATUS_OK = "ok"
STATUS_FAILED = "failed"


def _line_crc(record: Dict[str, Any]) -> int:
    """CRC32 of the record's canonical JSON without its ``crc`` field."""
    stripped = {key: value for key, value in record.items() if key != "crc"}
    canonical = json.dumps(stripped, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF


def _encode_line(record: Dict[str, Any]) -> str:
    record = dict(record)
    record["crc"] = _line_crc(record)
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class UnitRecord:
    """One journaled unit of work."""

    unit: str
    status: str
    elapsed: float = 0.0
    attempts: int = 1
    error: Optional[str] = None
    traceback: Optional[str] = None
    payload: Optional[Dict[str, Any]] = None
    #: Structured failure context (e.g. a poison-unit quarantine record:
    #: kill count, kill reasons, last worker error).  Machine-readable
    #: where ``error`` is for humans.
    detail: Optional[Dict[str, Any]] = None

    @property
    def succeeded(self) -> bool:
        return self.status == STATUS_OK


@dataclass
class RunJournal:
    """Append-only JSONL checkpoint journal.

    Opening a path that does not exist creates it (writing the meta
    line); opening an existing journal replays its units into memory.
    ``fingerprint`` is compared against the stored one when replaying —
    pass ``None`` to skip the check (read-only inspection).
    """

    path: PathLike
    fingerprint: Optional[Dict[str, Any]] = None
    _records: Dict[str, UnitRecord] = field(default_factory=dict, repr=False)
    _dropped_torn_line: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if os.path.exists(self.path):
            self._replay()
        else:
            self._write_line(
                {
                    "type": "meta",
                    "version": JOURNAL_VERSION,
                    "fingerprint": self.fingerprint or {},
                }
            )

    # -- loading ---------------------------------------------------------

    def _replay(self) -> None:
        with open(self.path, "rb") as stream:
            blob = stream.read()
        raw_lines = blob.split(b"\n")
        if raw_lines and raw_lines[-1] == b"":
            raw_lines.pop()
        if not raw_lines:
            raise JournalError(f"{self.path}: journal is empty (no meta line)")
        parsed: List[Dict[str, Any]] = []
        valid_end = 0  # byte offset just past the last valid line
        for index, raw_bytes in enumerate(raw_lines):
            try:
                record = self._decode_line(raw_bytes.decode("utf-8"))
            except UnicodeDecodeError:
                record = None
            if record is None:
                if index == len(raw_lines) - 1:
                    # Torn final line from a crash mid-append: drop it —
                    # its unit re-runs, which is what resume is for.
                    # Physically truncate the fragment so the next append
                    # starts on a clean line instead of merging with it.
                    self._dropped_torn_line = True
                    os.truncate(self.path, valid_end)
                    continue
                raise JournalError(
                    f"{self.path}:{index + 1}: corrupt journal line "
                    f"(not torn-tail; refusing to guess which work is done)"
                )
            parsed.append(record)
            valid_end = min(valid_end + len(raw_bytes) + 1, len(blob))
        if not parsed or parsed[0].get("type") != "meta":
            raise JournalError(f"{self.path}: missing meta line")
        meta = parsed[0]
        if meta.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"{self.path}: journal version {meta.get('version')!r} "
                f"!= supported {JOURNAL_VERSION}"
            )
        stored = meta.get("fingerprint") or {}
        if self.fingerprint is not None and stored != self.fingerprint:
            raise JournalError(
                f"{self.path}: journal fingerprint {stored} does not match "
                f"this run {self.fingerprint}; delete the journal or rerun "
                f"at the recorded scale"
            )
        for record in parsed[1:]:
            if record.get("type") != "unit":
                continue
            self._records[record["unit"]] = UnitRecord(
                unit=record["unit"],
                status=record.get("status", STATUS_FAILED),
                elapsed=float(record.get("elapsed", 0.0)),
                attempts=int(record.get("attempts", 1)),
                error=record.get("error"),
                traceback=record.get("traceback"),
                payload=record.get("payload"),
                detail=record.get("detail"),
            )

    @staticmethod
    def _decode_line(raw: str) -> Optional[Dict[str, Any]]:
        """Parse and CRC-check one line; None when unusable."""
        raw = raw.strip()
        if not raw:
            return None
        try:
            record = json.loads(raw)
        except ValueError:
            return None
        if not isinstance(record, dict) or "crc" not in record:
            return None
        if _line_crc(record) != record["crc"]:
            return None
        return record

    # -- recording -------------------------------------------------------

    def _write_line(self, record: Dict[str, Any]) -> None:
        # A crash can leave the file without a trailing newline (e.g. a
        # partial append that happens to end exactly at the JSON's last
        # byte, which CRC-checks as valid).  Never append onto such a
        # tail: the two records would merge into one corrupt line.
        needs_newline = False
        try:
            with open(self.path, "rb") as stream:
                stream.seek(-1, os.SEEK_END)
                needs_newline = stream.read(1) != b"\n"
        except OSError:
            pass  # missing or empty file: nothing to terminate
        with open(self.path, "a", encoding="utf-8") as stream:
            if needs_newline:
                stream.write("\n")
            stream.write(_encode_line(record) + "\n")
            stream.flush()
            os.fsync(stream.fileno())

    def record_success(
        self,
        unit: str,
        *,
        elapsed: float = 0.0,
        attempts: int = 1,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Journal ``unit`` as completed (latest record for a unit wins)."""
        record = UnitRecord(
            unit=unit,
            status=STATUS_OK,
            elapsed=elapsed,
            attempts=attempts,
            payload=payload,
        )
        self._write_line(self._to_json(record))
        self._records[unit] = record

    def record_failure(
        self,
        unit: str,
        *,
        error: str,
        traceback: Optional[str] = None,
        elapsed: float = 0.0,
        attempts: int = 1,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Journal ``unit`` as FAILED with its error for the report.

        ``detail`` attaches a machine-readable record to the failure —
        the supervisor uses it for poison-unit quarantines (kill count,
        reasons, last worker error).
        """
        record = UnitRecord(
            unit=unit,
            status=STATUS_FAILED,
            elapsed=elapsed,
            attempts=attempts,
            error=error,
            traceback=traceback,
            detail=detail,
        )
        self._write_line(self._to_json(record))
        self._records[unit] = record

    @staticmethod
    def _to_json(record: UnitRecord) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "type": "unit",
            "unit": record.unit,
            "status": record.status,
            "elapsed": round(record.elapsed, 6),
            "attempts": record.attempts,
        }
        if record.error is not None:
            data["error"] = record.error
        if record.traceback is not None:
            data["traceback"] = record.traceback
        if record.payload is not None:
            data["payload"] = record.payload
        if record.detail is not None:
            data["detail"] = record.detail
        return data

    # -- queries ---------------------------------------------------------

    def completed(self, unit: str) -> bool:
        """True when ``unit``'s latest record is a success."""
        record = self._records.get(unit)
        return record is not None and record.succeeded

    def get(self, unit: str) -> Optional[UnitRecord]:
        return self._records.get(unit)

    @property
    def units(self) -> Dict[str, UnitRecord]:
        """Latest record per unit, in insertion order."""
        return dict(self._records)

    @property
    def failures(self) -> List[UnitRecord]:
        return [r for r in self._records.values() if not r.succeeded]

    @property
    def dropped_torn_line(self) -> bool:
        """True when loading dropped a torn (partially written) final line."""
        return self._dropped_torn_line


__all__ = [
    "JOURNAL_VERSION",
    "RunJournal",
    "STATUS_FAILED",
    "STATUS_OK",
    "UnitRecord",
]
