"""Retry with exponential backoff and wall-clock deadlines.

Transient failures (a flaky filesystem, an injected fault, an OOM-killed
helper) should cost one retry, not the whole suite; deterministic
failures should cost a bounded number of attempts and then be recorded.
:func:`call_with_retry` implements that discipline for any callable, and
:class:`Deadline` bounds how long one unit may keep trying.

The clock and sleep functions are injectable so tests exercise the full
backoff schedule in microseconds of real time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple, Type, TypeVar

from repro.errors import ConfigurationError, DeadlineExceededError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before declaring a unit failed.

    Attributes:
        max_attempts: total attempts (1 = no retries).
        base_delay: seconds before the first retry.
        multiplier: backoff growth factor between retries.
        max_delay: ceiling on any single backoff sleep.
    """

    max_attempts: int = 3
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("backoff delays cannot be negative")
        if self.multiplier < 1.0:
            raise ConfigurationError("backoff multiplier must be >= 1")

    def delays(self) -> Iterator[float]:
        """The backoff sleep before each retry (max_attempts - 1 values)."""
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            yield min(delay, self.max_delay)
            delay *= self.multiplier


#: A policy that tries exactly once — failure isolation with no retries.
NO_RETRY = RetryPolicy(max_attempts=1)


class Deadline:
    """A wall-clock budget for one unit of work.

    The deadline is checked between attempts, not preemptively inside a
    running attempt (pure-Python simulation steps cannot be safely
    interrupted mid-pass); an attempt that starts before the deadline may
    finish after it, but no *new* attempt or backoff sleep begins once
    the budget is spent.
    """

    def __init__(
        self,
        seconds: Optional[float],
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds is not None and seconds <= 0:
            raise ConfigurationError("deadline must be positive (or None)")
        self._clock = clock
        self._seconds = seconds
        self._expires_at = None if seconds is None else clock() + seconds

    @property
    def seconds(self) -> Optional[float]:
        return self._seconds

    def remaining(self) -> float:
        """Seconds left (``inf`` when unbounded, floored at 0)."""
        if self._expires_at is None:
            return float("inf")
        return max(0.0, self._expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, label: str = "work") -> None:
        """Raise :class:`DeadlineExceededError` once the budget is spent."""
        if self.expired:
            raise DeadlineExceededError(
                f"{label}: deadline of {self._seconds:.3g}s exceeded"
            )


def call_with_retry(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy = RetryPolicy(),
    deadline: Optional[Deadline] = None,
    retriable: Tuple[Type[BaseException], ...] = (Exception,),
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
    label: str = "work",
) -> Tuple[T, int]:
    """Call ``fn`` until it succeeds, retries are exhausted, or time is up.

    Returns ``(result, attempts_used)``.  On exhaustion the last
    exception propagates unchanged; on an expired deadline a
    :class:`DeadlineExceededError` chains the last failure.  ``on_retry``
    is invoked as ``(attempt_number, error, backoff_delay)`` before each
    backoff sleep.
    """
    delays = policy.delays()
    last_error: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        if deadline is not None and deadline.expired:
            raise DeadlineExceededError(
                f"{label}: deadline of {deadline.seconds:.3g}s exceeded "
                f"after {attempt - 1} attempt(s)"
            ) from last_error
        try:
            return fn(), attempt
        except retriable as error:
            last_error = error
            if attempt == policy.max_attempts:
                raise
            delay = next(delays)
            if deadline is not None:
                delay = min(delay, deadline.remaining())
            if on_retry is not None:
                on_retry(attempt, error, delay)
            if delay > 0:
                sleep(delay)
    raise AssertionError("unreachable: loop returns or raises")


__all__ = [
    "Deadline",
    "NO_RETRY",
    "RetryPolicy",
    "call_with_retry",
]
