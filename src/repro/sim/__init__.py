"""Simulation drivers: declarative configs, single-size and two-size runs,
and the all-associativity configuration sweep."""

from repro.sim.config import (
    SingleSizeScheme,
    TLBConfig,
    TwoLevelConfig,
    TwoSizeScheme,
)
from repro.sim.driver import (
    RunResult,
    TwoLevelRunResult,
    run_single_size,
    run_two_level,
    run_two_sizes,
    run_with_policy,
    sweep_two_level,
)
from repro.sim.multiprog import (
    MultiprogramResult,
    TwoSizeMultiprogramResult,
    run_multiprogrammed,
    run_multiprogrammed_two_sizes,
    sweep_multiprogrammed,
    sweep_multiprogrammed_two_sizes,
)
from repro.sim.sweep import sweep_single_size

__all__ = [
    "MultiprogramResult",
    "RunResult",
    "SingleSizeScheme",
    "TLBConfig",
    "TwoLevelConfig",
    "TwoLevelRunResult",
    "TwoSizeMultiprogramResult",
    "TwoSizeScheme",
    "run_multiprogrammed",
    "run_multiprogrammed_two_sizes",
    "run_single_size",
    "run_two_level",
    "run_two_sizes",
    "run_with_policy",
    "sweep_multiprogrammed",
    "sweep_multiprogrammed_two_sizes",
    "sweep_single_size",
]
