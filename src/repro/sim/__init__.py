"""Simulation drivers: declarative configs, single-size and two-size runs,
and the all-associativity configuration sweep."""

from repro.sim.config import SingleSizeScheme, TLBConfig, TwoSizeScheme
from repro.sim.driver import (
    RunResult,
    run_single_size,
    run_two_sizes,
    run_with_policy,
)
from repro.sim.multiprog import (
    MultiprogramResult,
    run_multiprogrammed,
    sweep_multiprogrammed,
)
from repro.sim.sweep import sweep_single_size

__all__ = [
    "MultiprogramResult",
    "RunResult",
    "SingleSizeScheme",
    "TLBConfig",
    "TwoSizeScheme",
    "run_multiprogrammed",
    "run_single_size",
    "run_two_sizes",
    "run_with_policy",
    "sweep_multiprogrammed",
    "sweep_single_size",
]
