"""Declarative TLB and page-size-scheme configurations.

Experiments describe *what* to simulate with these frozen dataclasses and
let the drivers build the mutable models.  A :class:`TLBConfig` names a
hardware shape (the paper's are 16/32 entries, fully associative or
two-way); a :class:`SingleSizeScheme` or :class:`TwoSizeScheme` names a
page-size regime.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.tlb.base import TLB
from repro.tlb.fully_assoc import FullyAssociativeTLB
from repro.tlb.indexing import IndexingScheme, ProbeStrategy
from repro.tlb.replacement import make_replacement_policy
from repro.tlb.set_assoc import SetAssociativeTLB
from repro.tlb.twolevel import TwoLevelTLB
from repro.types import PAIR_4KB_32KB, PageSizePair, format_size


@dataclass(frozen=True)
class TLBConfig:
    """A TLB hardware shape.

    Attributes:
        entries: total entry count.
        associativity: ways per set, or None for fully associative.
        scheme: set-index scheme (ignored when fully associative).
        probe_strategy: EXACT_INDEX probe style (parallel/sequential).
        replacement: replacement policy name (``lru``/``fifo``/``random``).
    """

    entries: int
    associativity: Optional[int] = None
    scheme: IndexingScheme = IndexingScheme.EXACT_INDEX
    probe_strategy: ProbeStrategy = ProbeStrategy.PARALLEL
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ConfigurationError("TLB needs at least one entry")
        if self.associativity is not None:
            if self.associativity <= 0:
                raise ConfigurationError("associativity must be positive")
            if self.entries % self.associativity != 0:
                raise ConfigurationError(
                    f"associativity {self.associativity} does not divide "
                    f"{self.entries} entries"
                )

    @property
    def fully_associative(self) -> bool:
        """True when this config is a fully associative TLB."""
        return self.associativity is None or self.associativity == self.entries

    @property
    def label(self) -> str:
        """Short human-readable name, e.g. ``"16e-FA"`` or ``"32e-2way-exact"``."""
        if self.fully_associative:
            return f"{self.entries}e-FA"
        return f"{self.entries}e-{self.associativity}way-{self.scheme.value}"

    def cache_parts(self) -> dict:
        """This shape as JSON-stable key parts for the result cache.

        Same fields as ``RunResult.to_payload()["config"]``, so a cached
        payload always round-trips to a config equal to the one that
        keyed it.
        """
        return {
            "entries": self.entries,
            "associativity": self.associativity,
            "scheme": self.scheme.value,
            "probe_strategy": self.probe_strategy.value,
            "replacement": self.replacement,
        }

    def replacement_seed(self) -> int:
        """Deterministic RNG seed for this shape's replacement policy.

        Derived from the configuration itself (never global ``random``
        state), so repeated runs of the same config produce identical
        random-replacement victim sequences and cacheable results.
        """
        canonical = json.dumps(self.cache_parts(), sort_keys=True)
        return zlib.crc32(canonical.encode("utf-8"))

    def build(self) -> TLB:
        """Construct a fresh TLB model for one simulation run."""
        replacement = make_replacement_policy(
            self.replacement, seed=self.replacement_seed()
        )
        if self.fully_associative:
            return FullyAssociativeTLB(self.entries, replacement=replacement)
        return SetAssociativeTLB(
            self.entries,
            self.associativity,
            self.scheme,
            probe_strategy=self.probe_strategy,
            replacement=replacement,
        )


@dataclass(frozen=True)
class TwoLevelConfig:
    """A two-level TLB hierarchy shape: a micro-TLB backed by an L2.

    Attributes:
        level1: the small first-level shape (on the lookup critical path).
        level2: the larger backing shape probed on an L1 miss.
        l2_hit_cycles: stall cycles charged per L1-miss/L2-hit.
    """

    level1: TLBConfig
    level2: TLBConfig
    l2_hit_cycles: float = 4.0

    def __post_init__(self) -> None:
        if self.l2_hit_cycles < 0:
            raise ConfigurationError("l2_hit_cycles must be non-negative")

    @property
    def label(self) -> str:
        """Short name, e.g. ``"4e-FA+32e-FA"``."""
        return f"{self.level1.label}+{self.level2.label}"

    def cache_parts(self) -> dict:
        """This hierarchy as JSON-stable key parts for the result cache."""
        return {
            "level1": self.level1.cache_parts(),
            "level2": self.level2.cache_parts(),
            "l2_hit_cycles": self.l2_hit_cycles,
        }

    def build(self) -> TwoLevelTLB:
        """Construct a fresh two-level hierarchy for one simulation run."""
        return TwoLevelTLB(
            self.level1.build(),
            self.level2.build(),
            l2_hit_cycles=self.l2_hit_cycles,
        )


@dataclass(frozen=True)
class SingleSizeScheme:
    """A single-page-size regime (the paper's 4KB .. 64KB columns)."""

    page_size: int

    @property
    def label(self) -> str:
        return format_size(self.page_size)

    @property
    def two_page_sizes(self) -> bool:
        return False


@dataclass(frozen=True)
class TwoSizeScheme:
    """A two-page-size regime under the dynamic promotion policy.

    Attributes:
        pair: the small/large page sizes (paper: 4KB/32KB).
        window: working-set window T for the promotion policy.
        promote_fraction: promotion threshold (paper: 0.5).
        demote_fraction: demotion threshold; None = same as promotion.
    """

    pair: PageSizePair = PAIR_4KB_32KB
    window: int = 100_000
    promote_fraction: float = 0.5
    demote_fraction: Optional[float] = None

    @property
    def label(self) -> str:
        return str(self.pair)

    @property
    def two_page_sizes(self) -> bool:
        return True
