"""Trace-driven simulation drivers.

Two entry points:

* :func:`run_single_size` — a conventional one-page-size TLB over a
  trace.  (Experiments that sweep many single-size geometries use
  :mod:`repro.stacksim` instead, which gets all of them from one pass;
  this driver is the canonical reference the stack results are validated
  against.)
* :func:`run_with_policy` / :func:`run_two_sizes` — the two-page-size
  simulation.  Page-size decisions are TLB-independent, so one policy
  instance drives any number of TLB models in a single trace pass (the
  same many-configurations-per-pass economics as the paper's ``tycho``),
  with promotion/demotion shootdowns applied to every TLB.  The vector
  path hands the whole pass to :mod:`repro.perf.twosize`, which
  evaluates *all* requested geometries from shared epoch-segmented
  depth arrays.
* :func:`run_split_two_sizes` — the split per-size organisation
  (Section 2.2 option c) as one composite result, with end-of-trace
  component occupancies for the utilisation ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.parallel.cache import (
    CACHE_KEY_VERSION,
    SimulationCache,
    canonical_key,
)
from repro.robustness import faultinject
from repro.mem.misshandler import (
    SINGLE_SIZE_PENALTY_CYCLES,
    TWO_SIZE_PENALTY_FACTOR,
)
from repro.metrics.cpi import TLBPerformance
from repro.perf.kernels import (
    KERNEL_AUTO,
    KERNEL_VECTOR,
    resolve_kernel,
    stack_depths,
)
from repro.perf.twosize import split_two_size_counts, two_size_counts
from repro.policy.promotion import (
    DynamicPromotionPolicy,
    PageSizeAssignmentPolicy,
)
from repro.policy.vector import policy_decisions, supports_vector_decisions
from repro.sim.config import SingleSizeScheme, TLBConfig, TwoSizeScheme
from repro.tlb.indexing import IndexingScheme, ProbeStrategy
from repro.tlb.split import SplitTLB
from repro.trace.record import Trace
from repro.types import log2_exact


@dataclass(frozen=True)
class RunResult:
    """Outcome of simulating one TLB configuration over one trace.

    Attributes:
        trace_name: workload name.
        scheme_label: page-size regime label ("4KB", "4KB/32KB", ...).
        config: the TLB hardware shape simulated.
        references: references simulated.
        misses: TLB misses observed.
        large_misses: misses on references assigned to a large page.
        reprobes: sequential-probe reprobes observed.
        invalidations: entries shot down by promotions/demotions.
        promotions / demotions: policy transitions during the run.
        refs_per_instruction: the trace's RPI.
        miss_penalty_cycles: penalty charged per miss for CPI_TLB.
    """

    trace_name: str
    scheme_label: str
    config: TLBConfig
    references: int
    misses: int
    large_misses: int
    reprobes: int
    invalidations: int
    promotions: int
    demotions: int
    refs_per_instruction: float
    miss_penalty_cycles: float

    @property
    def performance(self) -> TLBPerformance:
        """This run's metrics in the paper's units."""
        return TLBPerformance(
            misses=self.misses,
            references=self.references,
            refs_per_instruction=self.refs_per_instruction,
            miss_penalty_cycles=self.miss_penalty_cycles,
        )

    @property
    def cpi_tlb(self) -> float:
        """Shorthand for ``performance.cpi_tlb``."""
        return self.performance.cpi_tlb

    @property
    def miss_ratio(self) -> float:
        """Shorthand for ``performance.miss_ratio``."""
        return self.performance.miss_ratio

    def to_payload(self) -> Dict[str, Any]:
        """JSON-serializable form, for checkpoint journals."""
        return {
            "trace_name": self.trace_name,
            "scheme_label": self.scheme_label,
            "config": {
                "entries": self.config.entries,
                "associativity": self.config.associativity,
                "scheme": self.config.scheme.value,
                "probe_strategy": self.config.probe_strategy.value,
                "replacement": self.config.replacement,
            },
            "references": int(self.references),
            "misses": int(self.misses),
            "large_misses": int(self.large_misses),
            "reprobes": int(self.reprobes),
            "invalidations": int(self.invalidations),
            "promotions": int(self.promotions),
            "demotions": int(self.demotions),
            "refs_per_instruction": float(self.refs_per_instruction),
            "miss_penalty_cycles": float(self.miss_penalty_cycles),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "RunResult":
        """Rebuild a result journaled by :meth:`to_payload`."""
        from repro.tlb.indexing import IndexingScheme, ProbeStrategy

        raw_config = payload["config"]
        config = TLBConfig(
            entries=int(raw_config["entries"]),
            associativity=raw_config["associativity"],
            scheme=IndexingScheme(raw_config["scheme"]),
            probe_strategy=ProbeStrategy(raw_config["probe_strategy"]),
            replacement=raw_config["replacement"],
        )
        return cls(
            trace_name=payload["trace_name"],
            scheme_label=payload["scheme_label"],
            config=config,
            references=int(payload["references"]),
            misses=int(payload["misses"]),
            large_misses=int(payload["large_misses"]),
            reprobes=int(payload["reprobes"]),
            invalidations=int(payload["invalidations"]),
            promotions=int(payload["promotions"]),
            demotions=int(payload["demotions"]),
            refs_per_instruction=float(payload["refs_per_instruction"]),
            miss_penalty_cycles=float(payload["miss_penalty_cycles"]),
        )


def run_single_size(
    trace: Trace,
    scheme: SingleSizeScheme,
    config: TLBConfig,
    *,
    base_penalty: float = SINGLE_SIZE_PENALTY_CYCLES,
    kernel: str = KERNEL_AUTO,
    cache: Optional[SimulationCache] = None,
) -> RunResult:
    """Simulate one single-page-size TLB over ``trace``.

    The vector kernel replays the run as a batched stack-distance pass
    (:mod:`repro.perf.kernels`): under LRU replacement each set is an
    independent recency stack, so misses at this associativity fall out
    of one grouped depth computation, and reprobes follow from the probe
    strategy (in single-size mode the large-page probe of an
    EXACT_INDEX sequential lookup never hits, so every miss costs
    exactly one reprobe).  Non-LRU replacement is stateful and stays on
    the scalar model; ``kernel="auto"`` falls back silently,
    ``kernel="vector"`` raises.

    With a ``cache``, the result is looked up by content address (trace
    fingerprint + config + kernel + penalty) before simulating, and
    stored after; see :mod:`repro.parallel.cache`.
    """
    faultinject.check("sim.driver.run_single_size")
    resolved = resolve_kernel(
        kernel, vector_supported=config.replacement == "lru"
    )
    key: Optional[str] = None
    if cache is not None:
        key = canonical_key(
            {
                "version": CACHE_KEY_VERSION,
                "kind": "single",
                "trace": trace.fingerprint,
                "page_size": scheme.page_size,
                "config": config.cache_parts(),
                "base_penalty": base_penalty,
                "kernel": resolved,
            }
        )
        payload = cache.get(key)
        if payload is not None:
            return RunResult.from_payload(payload)
    result = _run_single_size_uncached(
        trace, scheme, config, base_penalty=base_penalty, kernel=resolved
    )
    if cache is not None:
        cache.put(key, result.to_payload())
    return result


def _run_single_size_uncached(
    trace: Trace,
    scheme: SingleSizeScheme,
    config: TLBConfig,
    *,
    base_penalty: float,
    kernel: str,
) -> RunResult:
    # ``kernel`` arrives already resolved ("scalar" or "vector"); the
    # resolved identity is also what the cache key records, so "auto"
    # and an explicit request share entries.
    if kernel == KERNEL_VECTOR:
        pages = np.asarray(
            trace.addresses >> np.uint32(log2_exact(scheme.page_size)),
            dtype=np.int64,
        )
        if config.fully_associative:
            depths = stack_depths(pages)
            capacity = config.entries
            sequential_exact = False
        else:
            sets = config.entries // config.associativity
            depths = stack_depths(pages, groups=pages & (sets - 1))
            capacity = config.associativity
            sequential_exact = (
                config.scheme is IndexingScheme.EXACT_INDEX
                and config.probe_strategy is ProbeStrategy.SEQUENTIAL
            )
        misses = depths.misses(capacity)
        reprobes = misses if sequential_exact else 0
        return RunResult(
            trace_name=trace.name,
            scheme_label=scheme.label,
            config=config,
            references=len(trace),
            misses=misses,
            large_misses=0,
            reprobes=reprobes,
            invalidations=0,
            promotions=0,
            demotions=0,
            refs_per_instruction=trace.refs_per_instruction,
            miss_penalty_cycles=base_penalty,
        )
    tlb = config.build()
    pages = (trace.addresses >> np.uint32(log2_exact(scheme.page_size))).tolist()
    access = tlb.access_single
    for page in pages:
        access(page)
    return RunResult(
        trace_name=trace.name,
        scheme_label=scheme.label,
        config=config,
        references=len(trace),
        misses=tlb.stats.misses,
        large_misses=0,
        reprobes=tlb.stats.reprobes,
        invalidations=0,
        promotions=0,
        demotions=0,
        refs_per_instruction=trace.refs_per_instruction,
        miss_penalty_cycles=base_penalty,
    )


def run_with_policy(
    trace: Trace,
    policy: PageSizeAssignmentPolicy,
    configs: Sequence[TLBConfig],
    *,
    base_penalty: float = SINGLE_SIZE_PENALTY_CYCLES,
    penalty_factor: float = TWO_SIZE_PENALTY_FACTOR,
    kernel: str = KERNEL_AUTO,
    cache: Optional[SimulationCache] = None,
) -> List[RunResult]:
    """Drive several TLB configs through one policy-managed trace pass.

    The policy sees each reference exactly once; every TLB model sees
    the identical (block, chunk, size) stream and the identical shootdown
    events, so results across configs are directly comparable.

    The vector kernel precomputes the policy's entire decision stream as
    arrays (:mod:`repro.policy.vector`) and replays it, eliminating the
    per-reference window bookkeeping; it applies only to supported,
    fresh policy instances (``supports_vector_decisions``) and leaves
    ``policy`` untouched — the returned results carry the
    promotion/demotion counts.  ``kernel="auto"`` (default) falls back
    to the scalar pass otherwise; ``kernel="vector"`` raises.

    Caching applies only when ``policy.cache_token()`` is non-None (a
    fresh, parameter-determined policy): each config's result is
    addressed by (trace fingerprint, policy token, config, penalties,
    kernel), and the pass is skipped only when *every* config hits —
    a single trace pass serves all configs, so partial hits save
    nothing.  Like the vector kernel, a cache hit leaves ``policy``
    untouched; read transition counts from the results.
    """
    if not configs:
        raise ConfigurationError("run_with_policy needs at least one TLBConfig")
    faultinject.check("sim.driver.run_with_policy")
    resolved = _resolve_two_size_kernel(policy, configs, kernel)
    keys: Optional[List[str]] = None
    if cache is not None:
        token = policy.cache_token()
        if token is not None:
            keys = [
                canonical_key(
                    {
                        "version": CACHE_KEY_VERSION,
                        "kind": "policy",
                        "trace": trace.fingerprint,
                        "policy": token,
                        "config": config.cache_parts(),
                        "base_penalty": base_penalty,
                        "penalty_factor": penalty_factor,
                        "kernel": resolved,
                    }
                )
                for config in configs
            ]
            payloads = [cache.get(key) for key in keys]
            if all(payload is not None for payload in payloads):
                return [RunResult.from_payload(p) for p in payloads]
    results = _run_with_policy_uncached(
        trace,
        policy,
        configs,
        base_penalty=base_penalty,
        penalty_factor=penalty_factor,
        kernel=resolved,
    )
    if keys is not None:
        for key, result in zip(keys, results):
            cache.put(key, result.to_payload())
    return results


def _resolve_two_size_kernel(
    policy: PageSizeAssignmentPolicy,
    configs: Sequence[TLBConfig],
    kernel: str,
) -> str:
    """Resolve the kernel switch for a policy-driven two-size pass.

    The vector kernel needs both a replayable policy decision stream
    (``supports_vector_decisions``) and LRU replacement in every
    configuration — the epoch-segmented stack identity does not hold
    for history-dependent replacement.  ``"auto"`` falls back to the
    scalar oracle otherwise; an explicit ``"vector"`` raises.
    """
    vector_ok = supports_vector_decisions(policy) and all(
        config.replacement == "lru" for config in configs
    )
    return resolve_kernel(kernel, vector_supported=vector_ok)


def _run_with_policy_uncached(
    trace: Trace,
    policy: PageSizeAssignmentPolicy,
    configs: Sequence[TLBConfig],
    *,
    base_penalty: float,
    penalty_factor: float,
    kernel: str,
) -> List[RunResult]:
    pair = policy.pair
    blocks_shift = log2_exact(pair.blocks_per_chunk)
    block_array = trace.addresses >> np.uint32(pair.small_shift)
    penalty = base_penalty * penalty_factor

    # ``kernel`` arrives resolved (see ``_resolve_two_size_kernel``).
    if kernel == KERNEL_VECTOR:
        decisions = policy_decisions(policy, block_array)
        counts = two_size_counts(
            np.asarray(block_array, dtype=np.int64),
            blocks_shift,
            decisions,
            configs,
        )
        return [
            RunResult(
                trace_name=trace.name,
                scheme_label=str(pair),
                config=config,
                references=len(trace),
                misses=result.misses,
                large_misses=result.large_misses,
                reprobes=result.reprobes,
                invalidations=result.invalidations,
                promotions=decisions.promotions,
                demotions=decisions.demotions,
                refs_per_instruction=trace.refs_per_instruction,
                miss_penalty_cycles=penalty,
            )
            for config, result in zip(configs, counts)
        ]

    # Scalar oracle: stateful TLB objects walked per reference.
    tlbs = [config.build() for config in configs]
    blocks = block_array.tolist()
    blocks_per_chunk = pair.blocks_per_chunk
    decide = policy.access_block
    for block in blocks:
        decision = decide(block)
        promoted = decision.promoted_chunk
        demoted = decision.demoted_chunk
        if promoted is not None or demoted is not None:
            for tlb in tlbs:
                if demoted is not None:
                    tlb.invalidate_large_page(demoted)
                if promoted is not None:
                    tlb.invalidate_small_pages_of_chunk(
                        promoted, blocks_per_chunk
                    )
        chunk = block >> blocks_shift
        large = decision.large
        for tlb in tlbs:
            tlb.access(block, chunk, large)
    promotions = getattr(policy, "promotions", 0)
    demotions = getattr(policy, "demotions", 0)
    return [
        RunResult(
            trace_name=trace.name,
            scheme_label=str(pair),
            config=config,
            references=len(trace),
            misses=tlb.stats.misses,
            large_misses=tlb.stats.large_misses,
            reprobes=tlb.stats.reprobes,
            invalidations=tlb.stats.invalidations,
            promotions=promotions,
            demotions=demotions,
            refs_per_instruction=trace.refs_per_instruction,
            miss_penalty_cycles=penalty,
        )
        for config, tlb in zip(configs, tlbs)
    ]


def run_two_sizes(
    trace: Trace,
    scheme: TwoSizeScheme,
    configs: Sequence[TLBConfig],
    *,
    base_penalty: float = SINGLE_SIZE_PENALTY_CYCLES,
    penalty_factor: float = TWO_SIZE_PENALTY_FACTOR,
    policy: Optional[PageSizeAssignmentPolicy] = None,
    kernel: str = KERNEL_AUTO,
    cache: Optional[SimulationCache] = None,
) -> List[RunResult]:
    """Simulate the paper's two-page-size scheme over ``trace``.

    Builds the Section 3.4 dynamic promotion policy from ``scheme``
    (unless an explicit ``policy`` is supplied) and charges the paper's
    25%-higher miss penalty.
    """
    if policy is None:
        policy = DynamicPromotionPolicy(
            scheme.pair,
            scheme.window,
            promote_fraction=scheme.promote_fraction,
            demote_fraction=scheme.demote_fraction,
        )
    return run_with_policy(
        trace,
        policy,
        configs,
        base_penalty=base_penalty,
        penalty_factor=penalty_factor,
        kernel=kernel,
        cache=cache,
    )


@dataclass(frozen=True)
class SplitRunResult:
    """Outcome of simulating a split (per-size) TLB pair over one trace.

    Composite counters mirror :class:`~repro.tlb.split.SplitTLB`'s
    stats (the split organisation never reprobes — each component
    resolves in one probe); the occupancy fields record how many
    component entries were still resident when the trace ended, which
    the utilisation ablation reads.
    """

    trace_name: str
    scheme_label: str
    small_config: TLBConfig
    large_config: TLBConfig
    references: int
    misses: int
    large_misses: int
    invalidations: int
    promotions: int
    demotions: int
    small_occupancy: int
    large_occupancy: int
    refs_per_instruction: float
    miss_penalty_cycles: float

    @property
    def performance(self) -> TLBPerformance:
        """This run's metrics in the paper's units."""
        return TLBPerformance(
            misses=self.misses,
            references=self.references,
            refs_per_instruction=self.refs_per_instruction,
            miss_penalty_cycles=self.miss_penalty_cycles,
        )

    def to_payload(self) -> Dict[str, Any]:
        """JSON-serializable form, for the result cache."""
        return {
            "trace_name": self.trace_name,
            "scheme_label": self.scheme_label,
            "small_config": self.small_config.cache_parts(),
            "large_config": self.large_config.cache_parts(),
            "references": int(self.references),
            "misses": int(self.misses),
            "large_misses": int(self.large_misses),
            "invalidations": int(self.invalidations),
            "promotions": int(self.promotions),
            "demotions": int(self.demotions),
            "small_occupancy": int(self.small_occupancy),
            "large_occupancy": int(self.large_occupancy),
            "refs_per_instruction": float(self.refs_per_instruction),
            "miss_penalty_cycles": float(self.miss_penalty_cycles),
        }

    @classmethod
    def from_payload(
        cls,
        payload: Dict[str, Any],
        small_config: TLBConfig,
        large_config: TLBConfig,
    ) -> "SplitRunResult":
        """Rebuild a result stored by :meth:`to_payload`."""
        return cls(
            trace_name=payload["trace_name"],
            scheme_label=payload["scheme_label"],
            small_config=small_config,
            large_config=large_config,
            references=int(payload["references"]),
            misses=int(payload["misses"]),
            large_misses=int(payload["large_misses"]),
            invalidations=int(payload["invalidations"]),
            promotions=int(payload["promotions"]),
            demotions=int(payload["demotions"]),
            small_occupancy=int(payload["small_occupancy"]),
            large_occupancy=int(payload["large_occupancy"]),
            refs_per_instruction=float(payload["refs_per_instruction"]),
            miss_penalty_cycles=float(payload["miss_penalty_cycles"]),
        )


def run_split_two_sizes(
    trace: Trace,
    scheme: TwoSizeScheme,
    small_config: TLBConfig,
    large_config: TLBConfig,
    *,
    base_penalty: float = SINGLE_SIZE_PENALTY_CYCLES,
    penalty_factor: float = TWO_SIZE_PENALTY_FACTOR,
    policy: Optional[PageSizeAssignmentPolicy] = None,
    kernel: str = KERNEL_AUTO,
    cache: Optional[SimulationCache] = None,
) -> SplitRunResult:
    """Simulate the split per-size organisation (Section 2.2 option c).

    One TLB holds only small pages, the other only large pages; the
    policy routes each reference to its component, promotions shoot
    small pages out of the small TLB and demotions shoot the large
    page out of the large TLB.  The scalar oracle walks a
    :class:`~repro.tlb.split.SplitTLB`; the vector kernel runs the two
    components as independent epoch-segmented single-size analyses
    (:func:`repro.perf.twosize.split_two_size_counts`).  Both report
    the composite stats and the end-of-trace component occupancies.
    """
    faultinject.check("sim.driver.run_split_two_sizes")
    if policy is None:
        policy = DynamicPromotionPolicy(
            scheme.pair,
            scheme.window,
            promote_fraction=scheme.promote_fraction,
            demote_fraction=scheme.demote_fraction,
        )
    resolved = _resolve_two_size_kernel(
        policy, (small_config, large_config), kernel
    )
    key: Optional[str] = None
    if cache is not None:
        token = policy.cache_token()
        if token is not None:
            key = canonical_key(
                {
                    "version": CACHE_KEY_VERSION,
                    "kind": "split",
                    "trace": trace.fingerprint,
                    "policy": token,
                    "small_config": small_config.cache_parts(),
                    "large_config": large_config.cache_parts(),
                    "base_penalty": base_penalty,
                    "penalty_factor": penalty_factor,
                    "kernel": resolved,
                }
            )
            payload = cache.get(key)
            if payload is not None:
                return SplitRunResult.from_payload(
                    payload, small_config, large_config
                )
    result = _run_split_two_sizes_uncached(
        trace,
        policy,
        small_config,
        large_config,
        base_penalty=base_penalty,
        penalty_factor=penalty_factor,
        kernel=resolved,
    )
    if key is not None:
        cache.put(key, result.to_payload())
    return result


def _run_split_two_sizes_uncached(
    trace: Trace,
    policy: PageSizeAssignmentPolicy,
    small_config: TLBConfig,
    large_config: TLBConfig,
    *,
    base_penalty: float,
    penalty_factor: float,
    kernel: str,
) -> SplitRunResult:
    pair = policy.pair
    blocks_shift = log2_exact(pair.blocks_per_chunk)
    block_array = trace.addresses >> np.uint32(pair.small_shift)
    penalty = base_penalty * penalty_factor
    scheme_label = f"{pair} split"

    if kernel == KERNEL_VECTOR:
        decisions = policy_decisions(policy, block_array)
        counts = split_two_size_counts(
            np.asarray(block_array, dtype=np.int64),
            blocks_shift,
            decisions,
            small_config,
            large_config,
        )
        return SplitRunResult(
            trace_name=trace.name,
            scheme_label=scheme_label,
            small_config=small_config,
            large_config=large_config,
            references=len(trace),
            misses=counts.misses,
            large_misses=counts.large_misses,
            invalidations=counts.invalidations,
            promotions=decisions.promotions,
            demotions=decisions.demotions,
            small_occupancy=counts.small_occupancy,
            large_occupancy=counts.large_occupancy,
            refs_per_instruction=trace.refs_per_instruction,
            miss_penalty_cycles=penalty,
        )

    # Scalar oracle: a stateful SplitTLB walked per reference.
    split = SplitTLB(small_config.build(), large_config.build())
    blocks_per_chunk = pair.blocks_per_chunk
    decide = policy.access_block
    for block in block_array.tolist():
        decision = decide(block)
        if decision.demoted_chunk is not None:
            split.invalidate_large_page(decision.demoted_chunk)
        if decision.promoted_chunk is not None:
            split.invalidate_small_pages_of_chunk(
                decision.promoted_chunk, blocks_per_chunk
            )
        split.access(block, block >> blocks_shift, decision.large)
    return SplitRunResult(
        trace_name=trace.name,
        scheme_label=scheme_label,
        small_config=small_config,
        large_config=large_config,
        references=len(trace),
        misses=split.stats.misses,
        large_misses=split.stats.large_misses,
        invalidations=split.stats.invalidations,
        promotions=getattr(policy, "promotions", 0),
        demotions=getattr(policy, "demotions", 0),
        small_occupancy=split.small_tlb.occupancy(),
        large_occupancy=split.large_tlb.occupancy(),
        refs_per_instruction=trace.refs_per_instruction,
        miss_penalty_cycles=penalty,
    )
