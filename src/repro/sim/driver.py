"""Trace-driven simulation drivers.

Two entry points:

* :func:`run_single_size` — a conventional one-page-size TLB over a
  trace.  (Experiments that sweep many single-size geometries use
  :mod:`repro.stacksim` instead, which gets all of them from one pass;
  this driver is the canonical reference the stack results are validated
  against.)
* :func:`run_with_policy` / :func:`run_two_sizes` — the two-page-size
  simulation.  Page-size decisions are TLB-independent, so one policy
  instance drives any number of TLB models in a single trace pass (the
  same many-configurations-per-pass economics as the paper's ``tycho``),
  with promotion/demotion shootdowns applied to every TLB.  The vector
  path hands the whole pass to :mod:`repro.perf.twosize`, which
  evaluates *all* requested geometries from shared epoch-segmented
  depth arrays.
* :func:`run_split_two_sizes` — the split per-size organisation
  (Section 2.2 option c) as one composite result, with end-of-trace
  component occupancies for the utilisation ablation.
* :func:`run_two_level` / :func:`sweep_two_level` — a micro-TLB backed
  by an L2, under either page-size regime.  The vector path
  reconstructs the L1 miss stream once and serves every L2 geometry
  from it (:mod:`repro.perf.twolevel`).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.parallel.cache import (
    CACHE_KEY_VERSION,
    SimulationCache,
    canonical_key,
)
from repro.robustness import faultinject
from repro.mem.misshandler import (
    SINGLE_SIZE_PENALTY_CYCLES,
    TWO_SIZE_PENALTY_FACTOR,
)
from repro.metrics.cpi import TLBPerformance
from repro.perf.kernels import (
    KERNEL_AUTO,
    KERNEL_SAMPLED,
    KERNEL_VECTOR,
    KernelChoice,
    choose_kernel,
    stack_depths,
)
from repro.perf.sampled import SAMPLED_REPLACEMENTS, sampled_replacement_counts
from repro.perf.twolevel import two_level_counts
from repro.perf.twosize import split_two_size_counts, two_size_counts
from repro.policy.promotion import (
    DynamicPromotionPolicy,
    PageSizeAssignmentPolicy,
)
from repro.policy.vector import (
    PolicyDecisions,
    policy_decisions,
    supports_vector_decisions,
)
from repro.sim.config import (
    SingleSizeScheme,
    TLBConfig,
    TwoLevelConfig,
    TwoSizeScheme,
)
from repro.tlb.indexing import IndexingScheme, ProbeStrategy
from repro.tlb.split import SplitTLB
from repro.trace.record import Trace
from repro.types import log2_exact


@dataclass(frozen=True)
class RunResult:
    """Outcome of simulating one TLB configuration over one trace.

    Attributes:
        trace_name: workload name.
        scheme_label: page-size regime label ("4KB", "4KB/32KB", ...).
        config: the TLB hardware shape simulated.
        references: references simulated.
        misses: TLB misses observed.
        large_misses: misses on references assigned to a large page.
        reprobes: sequential-probe reprobes observed.
        invalidations: entries shot down by promotions/demotions.
        promotions / demotions: policy transitions during the run.
        refs_per_instruction: the trace's RPI.
        miss_penalty_cycles: penalty charged per miss for CPI_TLB.
        resolved_kernel / fallback_reason: audit trail of the kernel
            switch (excluded from equality so oracle comparisons hold).
        sampling: sampled-kernel estimator metadata (None for exact
            kernels): sampled/total set counts, stderr and the 95% CI.
    """

    trace_name: str
    scheme_label: str
    config: TLBConfig
    references: int
    misses: int
    large_misses: int
    reprobes: int
    invalidations: int
    promotions: int
    demotions: int
    refs_per_instruction: float
    miss_penalty_cycles: float
    resolved_kernel: Optional[str] = field(
        default=None, compare=False, repr=False
    )
    fallback_reason: Optional[str] = field(
        default=None, compare=False, repr=False
    )
    sampling: Optional[Dict[str, Any]] = field(
        default=None, compare=False, repr=False
    )

    @property
    def performance(self) -> TLBPerformance:
        """This run's metrics in the paper's units."""
        return TLBPerformance(
            misses=self.misses,
            references=self.references,
            refs_per_instruction=self.refs_per_instruction,
            miss_penalty_cycles=self.miss_penalty_cycles,
        )

    @property
    def cpi_tlb(self) -> float:
        """Shorthand for ``performance.cpi_tlb``."""
        return self.performance.cpi_tlb

    @property
    def miss_ratio(self) -> float:
        """Shorthand for ``performance.miss_ratio``."""
        return self.performance.miss_ratio

    def to_payload(self) -> Dict[str, Any]:
        """JSON-serializable form, for checkpoint journals."""
        return {
            "trace_name": self.trace_name,
            "scheme_label": self.scheme_label,
            "config": {
                "entries": self.config.entries,
                "associativity": self.config.associativity,
                "scheme": self.config.scheme.value,
                "probe_strategy": self.config.probe_strategy.value,
                "replacement": self.config.replacement,
            },
            "references": int(self.references),
            "misses": int(self.misses),
            "large_misses": int(self.large_misses),
            "reprobes": int(self.reprobes),
            "invalidations": int(self.invalidations),
            "promotions": int(self.promotions),
            "demotions": int(self.demotions),
            "refs_per_instruction": float(self.refs_per_instruction),
            "miss_penalty_cycles": float(self.miss_penalty_cycles),
            "resolved_kernel": self.resolved_kernel,
            "fallback_reason": self.fallback_reason,
            "sampling": self.sampling,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "RunResult":
        """Rebuild a result journaled by :meth:`to_payload`."""
        from repro.tlb.indexing import IndexingScheme, ProbeStrategy

        raw_config = payload["config"]
        config = TLBConfig(
            entries=int(raw_config["entries"]),
            associativity=raw_config["associativity"],
            scheme=IndexingScheme(raw_config["scheme"]),
            probe_strategy=ProbeStrategy(raw_config["probe_strategy"]),
            replacement=raw_config["replacement"],
        )
        return cls(
            trace_name=payload["trace_name"],
            scheme_label=payload["scheme_label"],
            config=config,
            references=int(payload["references"]),
            misses=int(payload["misses"]),
            large_misses=int(payload["large_misses"]),
            reprobes=int(payload["reprobes"]),
            invalidations=int(payload["invalidations"]),
            promotions=int(payload["promotions"]),
            demotions=int(payload["demotions"]),
            refs_per_instruction=float(payload["refs_per_instruction"]),
            miss_penalty_cycles=float(payload["miss_penalty_cycles"]),
            resolved_kernel=payload.get("resolved_kernel"),
            fallback_reason=payload.get("fallback_reason"),
            sampling=payload.get("sampling"),
        )


def run_single_size(
    trace: Trace,
    scheme: SingleSizeScheme,
    config: TLBConfig,
    *,
    base_penalty: float = SINGLE_SIZE_PENALTY_CYCLES,
    kernel: str = KERNEL_AUTO,
    exact: bool = False,
    cache: Optional[SimulationCache] = None,
) -> RunResult:
    """Simulate one single-page-size TLB over ``trace``.

    The vector kernel replays the run as a batched stack-distance pass
    (:mod:`repro.perf.kernels`): under LRU replacement each set is an
    independent recency stack, so misses at this associativity fall out
    of one grouped depth computation, and reprobes follow from the probe
    strategy (in single-size mode the large-page probe of an
    EXACT_INDEX sequential lookup never hits, so every miss costs
    exactly one reprobe).  FIFO and random replacement have no stack
    identity and run on the sampled-set kernel
    (:mod:`repro.perf.sampled`) — a statistical estimate with reported
    error bounds (``result.sampling``); ``exact=True`` walks every set
    and reproduces the scalar model bit-exactly.  Only PLRU remains on
    the scalar walk, and ``kernel="auto"`` announces that fallback with
    a :class:`~repro.perf.kernels.KernelFallbackWarning`.

    With a ``cache``, the result is looked up by content address (trace
    fingerprint + config + kernel + penalty) before simulating, and
    stored after; see :mod:`repro.parallel.cache`.
    """
    faultinject.check("sim.driver.run_single_size")
    choice = choose_kernel(
        kernel,
        vector_supported=config.replacement == "lru",
        sampled_supported=config.replacement in SAMPLED_REPLACEMENTS,
        reason=(
            f"replacement {config.replacement!r} has neither a vector "
            f"nor a sampled kernel"
        ),
    )
    key: Optional[str] = None
    if cache is not None:
        key_parts = {
            "version": CACHE_KEY_VERSION,
            "kind": "single",
            "trace": trace.fingerprint,
            "page_size": scheme.page_size,
            "config": config.cache_parts(),
            "base_penalty": base_penalty,
            "kernel": choice.kernel,
        }
        if choice.kernel == KERNEL_SAMPLED:
            key_parts["exact"] = exact
        key = canonical_key(key_parts)
        payload = cache.get(key)
        if payload is not None:
            return RunResult.from_payload(payload)
    result = _run_single_size_uncached(
        trace,
        scheme,
        config,
        base_penalty=base_penalty,
        choice=choice,
        exact=exact,
    )
    if cache is not None:
        cache.put(key, result.to_payload())
    return result


def _sample_seed(trace: Trace, scheme: SingleSizeScheme, config: TLBConfig) -> int:
    """Deterministic set-sample seed, derived from the cache-key parts."""
    return zlib.crc32(
        canonical_key(
            {
                "trace": trace.fingerprint,
                "page_size": scheme.page_size,
                "config": config.cache_parts(),
            }
        ).encode("utf-8")
    )


def _run_single_size_uncached(
    trace: Trace,
    scheme: SingleSizeScheme,
    config: TLBConfig,
    *,
    base_penalty: float,
    choice: KernelChoice,
    exact: bool = False,
) -> RunResult:
    # ``choice`` arrives already resolved; the resolved identity is also
    # what the cache key records, so "auto" and an explicit request
    # share entries.
    kernel = choice.kernel
    common = dict(
        trace_name=trace.name,
        scheme_label=scheme.label,
        config=config,
        references=len(trace),
        large_misses=0,
        invalidations=0,
        promotions=0,
        demotions=0,
        refs_per_instruction=trace.refs_per_instruction,
        miss_penalty_cycles=base_penalty,
        resolved_kernel=kernel,
        fallback_reason=choice.fallback_reason,
    )
    sequential_exact = (
        not config.fully_associative
        and config.scheme is IndexingScheme.EXACT_INDEX
        and config.probe_strategy is ProbeStrategy.SEQUENTIAL
    )
    if kernel == KERNEL_VECTOR:
        pages = np.asarray(
            trace.addresses >> np.uint32(log2_exact(scheme.page_size)),
            dtype=np.int64,
        )
        if config.fully_associative:
            depths = stack_depths(pages)
            capacity = config.entries
        else:
            sets = config.entries // config.associativity
            depths = stack_depths(pages, groups=pages & (sets - 1))
            capacity = config.associativity
        misses = depths.misses(capacity)
        return RunResult(
            misses=misses,
            reprobes=misses if sequential_exact else 0,
            **common,
        )
    if kernel == KERNEL_SAMPLED:
        pages = np.asarray(
            trace.addresses >> np.uint32(log2_exact(scheme.page_size)),
            dtype=np.int64,
        )
        counts = sampled_replacement_counts(
            pages,
            config,
            sample_seed=_sample_seed(trace, scheme, config),
            replacement_seed=config.replacement_seed(),
            exact=exact,
        )
        return RunResult(
            misses=counts.misses,
            reprobes=counts.misses if sequential_exact else 0,
            sampling={
                "exact": counts.exact,
                "sampled_sets": counts.sampled_sets,
                "total_sets": counts.total_sets,
                "stderr": counts.stderr,
                "ci_low": counts.ci_low,
                "ci_high": counts.ci_high,
            },
            **common,
        )
    tlb = config.build()
    pages = (trace.addresses >> np.uint32(log2_exact(scheme.page_size))).tolist()
    access = tlb.access_single
    for page in pages:
        access(page)
    return RunResult(
        misses=tlb.stats.misses,
        reprobes=tlb.stats.reprobes,
        **common,
    )


def run_with_policy(
    trace: Trace,
    policy: PageSizeAssignmentPolicy,
    configs: Sequence[TLBConfig],
    *,
    base_penalty: float = SINGLE_SIZE_PENALTY_CYCLES,
    penalty_factor: float = TWO_SIZE_PENALTY_FACTOR,
    kernel: str = KERNEL_AUTO,
    cache: Optional[SimulationCache] = None,
) -> List[RunResult]:
    """Drive several TLB configs through one policy-managed trace pass.

    The policy sees each reference exactly once; every TLB model sees
    the identical (block, chunk, size) stream and the identical shootdown
    events, so results across configs are directly comparable.

    The vector kernel precomputes the policy's entire decision stream as
    arrays (:mod:`repro.policy.vector`) and replays it, eliminating the
    per-reference window bookkeeping; it applies only to supported,
    fresh policy instances (``supports_vector_decisions``) and leaves
    ``policy`` untouched — the returned results carry the
    promotion/demotion counts.  ``kernel="auto"`` (default) falls back
    to the scalar pass otherwise; ``kernel="vector"`` raises.

    Caching applies only when ``policy.cache_token()`` is non-None (a
    fresh, parameter-determined policy): each config's result is
    addressed by (trace fingerprint, policy token, config, penalties,
    kernel), and the pass is skipped only when *every* config hits —
    a single trace pass serves all configs, so partial hits save
    nothing.  Like the vector kernel, a cache hit leaves ``policy``
    untouched; read transition counts from the results.
    """
    if not configs:
        raise ConfigurationError("run_with_policy needs at least one TLBConfig")
    faultinject.check("sim.driver.run_with_policy")
    choice = _resolve_two_size_kernel(policy, configs, kernel)
    keys: Optional[List[str]] = None
    if cache is not None:
        token = policy.cache_token()
        if token is not None:
            keys = [
                canonical_key(
                    {
                        "version": CACHE_KEY_VERSION,
                        "kind": "policy",
                        "trace": trace.fingerprint,
                        "policy": token,
                        "config": config.cache_parts(),
                        "base_penalty": base_penalty,
                        "penalty_factor": penalty_factor,
                        "kernel": choice.kernel,
                    }
                )
                for config in configs
            ]
            payloads = [cache.get(key) for key in keys]
            if all(payload is not None for payload in payloads):
                return [RunResult.from_payload(p) for p in payloads]
    results = _run_with_policy_uncached(
        trace,
        policy,
        configs,
        base_penalty=base_penalty,
        penalty_factor=penalty_factor,
        choice=choice,
    )
    if keys is not None:
        for key, result in zip(keys, results):
            cache.put(key, result.to_payload())
    return results


def _resolve_two_size_kernel(
    policy: PageSizeAssignmentPolicy,
    configs: Sequence[TLBConfig],
    kernel: str,
) -> KernelChoice:
    """Resolve the kernel switch for a policy-driven two-size pass.

    The vector kernel needs both a replayable policy decision stream
    (``supports_vector_decisions``) and LRU replacement in every
    configuration — the epoch-segmented stack identity does not hold
    for history-dependent replacement.  ``"auto"`` falls back to the
    scalar oracle otherwise (announced with a
    :class:`~repro.perf.kernels.KernelFallbackWarning`); an explicit
    ``"vector"`` raises.
    """
    if not supports_vector_decisions(policy):
        reason = (
            "the policy instance is stale or unsupported by the "
            "vectorized decision replay"
        )
    elif not all(config.replacement == "lru" for config in configs):
        reason = (
            "non-LRU replacement breaks the epoch-segmented stack identity"
        )
    else:
        return choose_kernel(kernel, vector_supported=True)
    return choose_kernel(kernel, vector_supported=False, reason=reason)


def _run_with_policy_uncached(
    trace: Trace,
    policy: PageSizeAssignmentPolicy,
    configs: Sequence[TLBConfig],
    *,
    base_penalty: float,
    penalty_factor: float,
    choice: KernelChoice,
) -> List[RunResult]:
    pair = policy.pair
    blocks_shift = log2_exact(pair.blocks_per_chunk)
    block_array = trace.addresses >> np.uint32(pair.small_shift)
    penalty = base_penalty * penalty_factor

    # ``choice`` arrives resolved (see ``_resolve_two_size_kernel``).
    if choice.kernel == KERNEL_VECTOR:
        decisions = policy_decisions(policy, block_array)
        counts = two_size_counts(
            np.asarray(block_array, dtype=np.int64),
            blocks_shift,
            decisions,
            configs,
        )
        return [
            RunResult(
                trace_name=trace.name,
                scheme_label=str(pair),
                config=config,
                references=len(trace),
                misses=result.misses,
                large_misses=result.large_misses,
                reprobes=result.reprobes,
                invalidations=result.invalidations,
                promotions=decisions.promotions,
                demotions=decisions.demotions,
                refs_per_instruction=trace.refs_per_instruction,
                miss_penalty_cycles=penalty,
                resolved_kernel=choice.kernel,
                fallback_reason=choice.fallback_reason,
            )
            for config, result in zip(configs, counts)
        ]

    # Scalar oracle: stateful TLB objects walked per reference.
    tlbs = [config.build() for config in configs]
    blocks = block_array.tolist()
    blocks_per_chunk = pair.blocks_per_chunk
    decide = policy.access_block
    for block in blocks:
        decision = decide(block)
        promoted = decision.promoted_chunk
        demoted = decision.demoted_chunk
        if promoted is not None or demoted is not None:
            for tlb in tlbs:
                if demoted is not None:
                    tlb.invalidate_large_page(demoted)
                if promoted is not None:
                    tlb.invalidate_small_pages_of_chunk(
                        promoted, blocks_per_chunk
                    )
        chunk = block >> blocks_shift
        large = decision.large
        for tlb in tlbs:
            tlb.access(block, chunk, large)
    promotions = getattr(policy, "promotions", 0)
    demotions = getattr(policy, "demotions", 0)
    return [
        RunResult(
            trace_name=trace.name,
            scheme_label=str(pair),
            config=config,
            references=len(trace),
            misses=tlb.stats.misses,
            large_misses=tlb.stats.large_misses,
            reprobes=tlb.stats.reprobes,
            invalidations=tlb.stats.invalidations,
            promotions=promotions,
            demotions=demotions,
            refs_per_instruction=trace.refs_per_instruction,
            miss_penalty_cycles=penalty,
            resolved_kernel=choice.kernel,
            fallback_reason=choice.fallback_reason,
        )
        for config, tlb in zip(configs, tlbs)
    ]


def run_two_sizes(
    trace: Trace,
    scheme: TwoSizeScheme,
    configs: Sequence[TLBConfig],
    *,
    base_penalty: float = SINGLE_SIZE_PENALTY_CYCLES,
    penalty_factor: float = TWO_SIZE_PENALTY_FACTOR,
    policy: Optional[PageSizeAssignmentPolicy] = None,
    kernel: str = KERNEL_AUTO,
    cache: Optional[SimulationCache] = None,
) -> List[RunResult]:
    """Simulate the paper's two-page-size scheme over ``trace``.

    Builds the Section 3.4 dynamic promotion policy from ``scheme``
    (unless an explicit ``policy`` is supplied) and charges the paper's
    25%-higher miss penalty.
    """
    if policy is None:
        policy = DynamicPromotionPolicy(
            scheme.pair,
            scheme.window,
            promote_fraction=scheme.promote_fraction,
            demote_fraction=scheme.demote_fraction,
        )
    return run_with_policy(
        trace,
        policy,
        configs,
        base_penalty=base_penalty,
        penalty_factor=penalty_factor,
        kernel=kernel,
        cache=cache,
    )


@dataclass(frozen=True)
class SplitRunResult:
    """Outcome of simulating a split (per-size) TLB pair over one trace.

    Composite counters mirror :class:`~repro.tlb.split.SplitTLB`'s
    stats (the split organisation never reprobes — each component
    resolves in one probe); the occupancy fields record how many
    component entries were still resident when the trace ended, which
    the utilisation ablation reads.
    """

    trace_name: str
    scheme_label: str
    small_config: TLBConfig
    large_config: TLBConfig
    references: int
    misses: int
    large_misses: int
    invalidations: int
    promotions: int
    demotions: int
    small_occupancy: int
    large_occupancy: int
    refs_per_instruction: float
    miss_penalty_cycles: float

    @property
    def performance(self) -> TLBPerformance:
        """This run's metrics in the paper's units."""
        return TLBPerformance(
            misses=self.misses,
            references=self.references,
            refs_per_instruction=self.refs_per_instruction,
            miss_penalty_cycles=self.miss_penalty_cycles,
        )

    def to_payload(self) -> Dict[str, Any]:
        """JSON-serializable form, for the result cache."""
        return {
            "trace_name": self.trace_name,
            "scheme_label": self.scheme_label,
            "small_config": self.small_config.cache_parts(),
            "large_config": self.large_config.cache_parts(),
            "references": int(self.references),
            "misses": int(self.misses),
            "large_misses": int(self.large_misses),
            "invalidations": int(self.invalidations),
            "promotions": int(self.promotions),
            "demotions": int(self.demotions),
            "small_occupancy": int(self.small_occupancy),
            "large_occupancy": int(self.large_occupancy),
            "refs_per_instruction": float(self.refs_per_instruction),
            "miss_penalty_cycles": float(self.miss_penalty_cycles),
        }

    @classmethod
    def from_payload(
        cls,
        payload: Dict[str, Any],
        small_config: TLBConfig,
        large_config: TLBConfig,
    ) -> "SplitRunResult":
        """Rebuild a result stored by :meth:`to_payload`."""
        return cls(
            trace_name=payload["trace_name"],
            scheme_label=payload["scheme_label"],
            small_config=small_config,
            large_config=large_config,
            references=int(payload["references"]),
            misses=int(payload["misses"]),
            large_misses=int(payload["large_misses"]),
            invalidations=int(payload["invalidations"]),
            promotions=int(payload["promotions"]),
            demotions=int(payload["demotions"]),
            small_occupancy=int(payload["small_occupancy"]),
            large_occupancy=int(payload["large_occupancy"]),
            refs_per_instruction=float(payload["refs_per_instruction"]),
            miss_penalty_cycles=float(payload["miss_penalty_cycles"]),
        )


def run_split_two_sizes(
    trace: Trace,
    scheme: TwoSizeScheme,
    small_config: TLBConfig,
    large_config: TLBConfig,
    *,
    base_penalty: float = SINGLE_SIZE_PENALTY_CYCLES,
    penalty_factor: float = TWO_SIZE_PENALTY_FACTOR,
    policy: Optional[PageSizeAssignmentPolicy] = None,
    kernel: str = KERNEL_AUTO,
    cache: Optional[SimulationCache] = None,
) -> SplitRunResult:
    """Simulate the split per-size organisation (Section 2.2 option c).

    One TLB holds only small pages, the other only large pages; the
    policy routes each reference to its component, promotions shoot
    small pages out of the small TLB and demotions shoot the large
    page out of the large TLB.  The scalar oracle walks a
    :class:`~repro.tlb.split.SplitTLB`; the vector kernel runs the two
    components as independent epoch-segmented single-size analyses
    (:func:`repro.perf.twosize.split_two_size_counts`).  Both report
    the composite stats and the end-of-trace component occupancies.
    """
    faultinject.check("sim.driver.run_split_two_sizes")
    if policy is None:
        policy = DynamicPromotionPolicy(
            scheme.pair,
            scheme.window,
            promote_fraction=scheme.promote_fraction,
            demote_fraction=scheme.demote_fraction,
        )
    choice = _resolve_two_size_kernel(
        policy, (small_config, large_config), kernel
    )
    key: Optional[str] = None
    if cache is not None:
        token = policy.cache_token()
        if token is not None:
            key = canonical_key(
                {
                    "version": CACHE_KEY_VERSION,
                    "kind": "split",
                    "trace": trace.fingerprint,
                    "policy": token,
                    "small_config": small_config.cache_parts(),
                    "large_config": large_config.cache_parts(),
                    "base_penalty": base_penalty,
                    "penalty_factor": penalty_factor,
                    "kernel": choice.kernel,
                }
            )
            payload = cache.get(key)
            if payload is not None:
                return SplitRunResult.from_payload(
                    payload, small_config, large_config
                )
    result = _run_split_two_sizes_uncached(
        trace,
        policy,
        small_config,
        large_config,
        base_penalty=base_penalty,
        penalty_factor=penalty_factor,
        kernel=choice.kernel,
    )
    if key is not None:
        cache.put(key, result.to_payload())
    return result


def _run_split_two_sizes_uncached(
    trace: Trace,
    policy: PageSizeAssignmentPolicy,
    small_config: TLBConfig,
    large_config: TLBConfig,
    *,
    base_penalty: float,
    penalty_factor: float,
    kernel: str,
) -> SplitRunResult:
    pair = policy.pair
    blocks_shift = log2_exact(pair.blocks_per_chunk)
    block_array = trace.addresses >> np.uint32(pair.small_shift)
    penalty = base_penalty * penalty_factor
    scheme_label = f"{pair} split"

    if kernel == KERNEL_VECTOR:
        decisions = policy_decisions(policy, block_array)
        counts = split_two_size_counts(
            np.asarray(block_array, dtype=np.int64),
            blocks_shift,
            decisions,
            small_config,
            large_config,
        )
        return SplitRunResult(
            trace_name=trace.name,
            scheme_label=scheme_label,
            small_config=small_config,
            large_config=large_config,
            references=len(trace),
            misses=counts.misses,
            large_misses=counts.large_misses,
            invalidations=counts.invalidations,
            promotions=decisions.promotions,
            demotions=decisions.demotions,
            small_occupancy=counts.small_occupancy,
            large_occupancy=counts.large_occupancy,
            refs_per_instruction=trace.refs_per_instruction,
            miss_penalty_cycles=penalty,
        )

    # Scalar oracle: a stateful SplitTLB walked per reference.
    split = SplitTLB(small_config.build(), large_config.build())
    blocks_per_chunk = pair.blocks_per_chunk
    decide = policy.access_block
    for block in block_array.tolist():
        decision = decide(block)
        if decision.demoted_chunk is not None:
            split.invalidate_large_page(decision.demoted_chunk)
        if decision.promoted_chunk is not None:
            split.invalidate_small_pages_of_chunk(
                decision.promoted_chunk, blocks_per_chunk
            )
        split.access(block, block >> blocks_shift, decision.large)
    return SplitRunResult(
        trace_name=trace.name,
        scheme_label=scheme_label,
        small_config=small_config,
        large_config=large_config,
        references=len(trace),
        misses=split.stats.misses,
        large_misses=split.stats.large_misses,
        invalidations=split.stats.invalidations,
        promotions=getattr(policy, "promotions", 0),
        demotions=getattr(policy, "demotions", 0),
        small_occupancy=split.small_tlb.occupancy(),
        large_occupancy=split.large_tlb.occupancy(),
        refs_per_instruction=trace.refs_per_instruction,
        miss_penalty_cycles=penalty,
    )


@dataclass(frozen=True)
class TwoLevelRunResult:
    """Outcome of simulating one two-level TLB hierarchy over one trace.

    ``misses`` are full misses (both levels missed — software walks);
    ``l2_hits`` are L1 misses the L2 absorbed, each charged
    ``config.l2_hit_cycles`` instead of the full walk penalty.  The
    hierarchy's CPI contribution therefore has two terms; see
    :attr:`cpi_tlb`.
    """

    trace_name: str
    scheme_label: str
    config: TwoLevelConfig
    references: int
    misses: int
    large_misses: int
    l2_hits: int
    invalidations: int
    promotions: int
    demotions: int
    refs_per_instruction: float
    miss_penalty_cycles: float
    resolved_kernel: Optional[str] = field(
        default=None, compare=False, repr=False
    )
    fallback_reason: Optional[str] = field(
        default=None, compare=False, repr=False
    )

    @property
    def miss_ratio(self) -> float:
        """Full-miss ratio of the hierarchy (software walks / refs)."""
        if self.references == 0:
            return 0.0
        return self.misses / self.references

    @property
    def cpi_tlb(self) -> float:
        """TLB cycles per instruction: walk penalties plus L2-hit stalls."""
        if self.references == 0:
            return 0.0
        instructions = self.references / self.refs_per_instruction
        cycles = (
            self.misses * self.miss_penalty_cycles
            + self.l2_hits * self.config.l2_hit_cycles
        )
        return cycles / instructions

    def to_payload(self) -> Dict[str, Any]:
        """JSON-serializable form, for the result cache."""
        return {
            "trace_name": self.trace_name,
            "scheme_label": self.scheme_label,
            "config": self.config.cache_parts(),
            "references": int(self.references),
            "misses": int(self.misses),
            "large_misses": int(self.large_misses),
            "l2_hits": int(self.l2_hits),
            "invalidations": int(self.invalidations),
            "promotions": int(self.promotions),
            "demotions": int(self.demotions),
            "refs_per_instruction": float(self.refs_per_instruction),
            "miss_penalty_cycles": float(self.miss_penalty_cycles),
            "resolved_kernel": self.resolved_kernel,
            "fallback_reason": self.fallback_reason,
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], config: TwoLevelConfig
    ) -> "TwoLevelRunResult":
        """Rebuild a result stored by :meth:`to_payload`."""
        return cls(
            trace_name=payload["trace_name"],
            scheme_label=payload["scheme_label"],
            config=config,
            references=int(payload["references"]),
            misses=int(payload["misses"]),
            large_misses=int(payload["large_misses"]),
            l2_hits=int(payload["l2_hits"]),
            invalidations=int(payload["invalidations"]),
            promotions=int(payload["promotions"]),
            demotions=int(payload["demotions"]),
            refs_per_instruction=float(payload["refs_per_instruction"]),
            miss_penalty_cycles=float(payload["miss_penalty_cycles"]),
            resolved_kernel=payload.get("resolved_kernel"),
            fallback_reason=payload.get("fallback_reason"),
        )


def _all_small_decisions(n: int) -> PolicyDecisions:
    """The degenerate single-size decision stream: everything small."""
    none = np.full(n, -1, dtype=np.int64)
    return PolicyDecisions(
        large=np.zeros(n, dtype=bool),
        promoted=none,
        demoted=none.copy(),
        promotions=0,
        demotions=0,
    )


def run_two_level(
    trace: Trace,
    scheme: Union[SingleSizeScheme, TwoSizeScheme],
    config: TwoLevelConfig,
    *,
    base_penalty: float = SINGLE_SIZE_PENALTY_CYCLES,
    penalty_factor: float = TWO_SIZE_PENALTY_FACTOR,
    policy: Optional[PageSizeAssignmentPolicy] = None,
    kernel: str = KERNEL_AUTO,
    cache: Optional[SimulationCache] = None,
) -> TwoLevelRunResult:
    """Simulate one two-level TLB hierarchy over ``trace``.

    Works under either page-size regime: a :class:`SingleSizeScheme`
    runs the hierarchy conventionally; a :class:`TwoSizeScheme` drives
    it through the dynamic promotion policy (shootdowns invalidate both
    levels) and charges the two-size penalty factor on full misses.
    See :func:`sweep_two_level` for the many-L2-geometries form.
    """
    return sweep_two_level(
        trace,
        scheme,
        [config],
        base_penalty=base_penalty,
        penalty_factor=penalty_factor,
        policy=policy,
        kernel=kernel,
        cache=cache,
    )[0]


def sweep_two_level(
    trace: Trace,
    scheme: Union[SingleSizeScheme, TwoSizeScheme],
    configs: Sequence[TwoLevelConfig],
    *,
    base_penalty: float = SINGLE_SIZE_PENALTY_CYCLES,
    penalty_factor: float = TWO_SIZE_PENALTY_FACTOR,
    policy: Optional[PageSizeAssignmentPolicy] = None,
    kernel: str = KERNEL_AUTO,
    cache: Optional[SimulationCache] = None,
) -> List[TwoLevelRunResult]:
    """Evaluate several L2 geometries behind one shared L1 in one pass.

    All ``configs`` must share the same ``level1`` shape: the vector
    kernel (:mod:`repro.perf.twolevel`) runs the L1 analysis once,
    reconstructs its per-reference miss stream — which *is* the L2
    reference trace — and serves every L2 geometry from that shared
    subsequence.  The scalar oracle walks composite
    :class:`~repro.tlb.twolevel.TwoLevelTLB` models per reference.

    The vector kernel requires LRU at both levels (and, under a
    two-size scheme, a replayable policy); ``kernel="auto"`` otherwise
    falls back loudly with a
    :class:`~repro.perf.kernels.KernelFallbackWarning`.
    """
    configs = list(configs)
    if not configs:
        raise ConfigurationError(
            "sweep_two_level needs at least one TwoLevelConfig"
        )
    level1 = configs[0].level1
    for config in configs[1:]:
        if config.level1 != level1:
            raise ConfigurationError(
                "all configurations of one two-level sweep must share "
                f"the L1 shape: {config.level1.label} != {level1.label}"
            )
    faultinject.check("sim.driver.sweep_two_level")
    two_size = scheme.two_page_sizes
    if two_size and policy is None:
        policy = DynamicPromotionPolicy(
            scheme.pair,
            scheme.window,
            promote_fraction=scheme.promote_fraction,
            demote_fraction=scheme.demote_fraction,
        )
    all_lru = all(
        c.level1.replacement == "lru" and c.level2.replacement == "lru"
        for c in configs
    )
    if not all_lru:
        choice = choose_kernel(
            kernel,
            vector_supported=False,
            reason=(
                "non-LRU replacement at either level breaks the "
                "victim-stream reconstruction"
            ),
        )
    elif two_size and not supports_vector_decisions(policy):
        choice = choose_kernel(
            kernel,
            vector_supported=False,
            reason=(
                "the policy instance is stale or unsupported by the "
                "vectorized decision replay"
            ),
        )
    else:
        choice = choose_kernel(kernel, vector_supported=True)
    penalty = base_penalty * (penalty_factor if two_size else 1.0)

    keys: Optional[List[str]] = None
    if cache is not None:
        token = policy.cache_token() if two_size else None
        if not two_size or token is not None:
            keys = [
                canonical_key(
                    {
                        "version": CACHE_KEY_VERSION,
                        "kind": "twolevel",
                        "trace": trace.fingerprint,
                        "scheme": (
                            {"policy": token}
                            if two_size
                            else {"page_size": scheme.page_size}
                        ),
                        "config": config.cache_parts(),
                        "base_penalty": base_penalty,
                        "penalty_factor": penalty_factor,
                        "kernel": choice.kernel,
                    }
                )
                for config in configs
            ]
            payloads = [cache.get(key) for key in keys]
            if all(payload is not None for payload in payloads):
                return [
                    TwoLevelRunResult.from_payload(p, config)
                    for p, config in zip(payloads, configs)
                ]
    results = _sweep_two_level_uncached(
        trace,
        scheme,
        configs,
        policy=policy,
        penalty=penalty,
        choice=choice,
    )
    if keys is not None:
        for key, result in zip(keys, results):
            cache.put(key, result.to_payload())
    return results


def _sweep_two_level_uncached(
    trace: Trace,
    scheme: Union[SingleSizeScheme, TwoSizeScheme],
    configs: List[TwoLevelConfig],
    *,
    policy: Optional[PageSizeAssignmentPolicy],
    penalty: float,
    choice: KernelChoice,
) -> List[TwoLevelRunResult]:
    two_size = scheme.two_page_sizes
    if two_size:
        pair = policy.pair
        blocks_shift = log2_exact(pair.blocks_per_chunk)
        block_array = trace.addresses >> np.uint32(pair.small_shift)
        scheme_label = str(pair)
    else:
        blocks_shift = 0
        block_array = trace.addresses >> np.uint32(
            log2_exact(scheme.page_size)
        )
        scheme_label = scheme.label

    if choice.kernel == KERNEL_VECTOR:
        blocks = np.asarray(block_array, dtype=np.int64)
        if two_size:
            decisions = policy_decisions(policy, block_array)
        else:
            decisions = _all_small_decisions(int(blocks.size))
        level1 = configs[0].level1
        counts = two_level_counts(
            blocks,
            blocks_shift,
            decisions,
            level1,
            [config.level2 for config in configs],
        )
        return [
            TwoLevelRunResult(
                trace_name=trace.name,
                scheme_label=scheme_label,
                config=config,
                references=len(trace),
                misses=result.misses,
                large_misses=result.large_misses,
                l2_hits=result.l2_hits,
                invalidations=result.invalidations,
                promotions=decisions.promotions,
                demotions=decisions.demotions,
                refs_per_instruction=trace.refs_per_instruction,
                miss_penalty_cycles=penalty,
                resolved_kernel=choice.kernel,
                fallback_reason=choice.fallback_reason,
            )
            for config, result in zip(configs, counts)
        ]

    # Scalar oracle: composite TwoLevelTLB models walked per reference.
    tlbs = [config.build() for config in configs]
    if two_size:
        blocks_per_chunk = policy.pair.blocks_per_chunk
        decide = policy.access_block
        for block in block_array.tolist():
            decision = decide(block)
            promoted = decision.promoted_chunk
            demoted = decision.demoted_chunk
            if promoted is not None or demoted is not None:
                for tlb in tlbs:
                    if demoted is not None:
                        tlb.invalidate_large_page(demoted)
                    if promoted is not None:
                        tlb.invalidate_small_pages_of_chunk(
                            promoted, blocks_per_chunk
                        )
            chunk = block >> blocks_shift
            large = decision.large
            for tlb in tlbs:
                tlb.access(block, chunk, large)
        promotions = getattr(policy, "promotions", 0)
        demotions = getattr(policy, "demotions", 0)
    else:
        pages = block_array.tolist()
        for tlb in tlbs:
            access = tlb.access_single
            for page in pages:
                access(page)
        promotions = demotions = 0
    return [
        TwoLevelRunResult(
            trace_name=trace.name,
            scheme_label=scheme_label,
            config=config,
            references=len(trace),
            misses=tlb.stats.misses,
            large_misses=tlb.stats.large_misses,
            l2_hits=tlb.l2_hits,
            invalidations=tlb.stats.invalidations,
            promotions=promotions,
            demotions=demotions,
            refs_per_instruction=trace.refs_per_instruction,
            miss_penalty_cycles=penalty,
            resolved_kernel=choice.kernel,
            fallback_reason=choice.fallback_reason,
        )
        for config, tlb in zip(configs, tlbs)
    ]
