"""Multiprogrammed simulation driver (flush vs ASID context handling).

Runs several programs' traces through one TLB with round-robin
scheduling, under either context-switch policy of
:mod:`repro.tlb.context`.  This is the experiment the paper's traces
could not support (Sections 3.1, 6); results are labelled beyond-paper.

:func:`sweep_multiprogrammed` is the grid entry point: it builds each
quantum's interleaving exactly once, then evaluates every requested
geometry of a (quantum, policy) cell from one epoch-segmented
stack-depth pass (:mod:`repro.perf.multiprog`), with per-cell failure
isolation and optional worker fan-out via
:func:`repro.robustness.executor.run_units` and per-configuration
results threaded through the content-addressed result cache (kind
``"multiprog"``).  :func:`run_multiprogrammed` is the single-cell
special case.  The scalar :class:`~repro.tlb.context.MultiprogrammedTLB`
walk remains the reference oracle behind ``kernel="scalar"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.mem.misshandler import SINGLE_SIZE_PENALTY_CYCLES
from repro.metrics.cpi import TLBPerformance
from repro.parallel.cache import (
    CACHE_KEY_VERSION,
    SimulationCache,
    canonical_key,
)
from repro.perf.kernels import KERNEL_AUTO, KERNEL_VECTOR, resolve_kernel
from repro.perf.multiprog import (
    MultiprogCounts,
    multiprog_counts,
    validate_multiprog_config,
)
from repro.robustness import faultinject
from repro.robustness.executor import UnitSpec, run_units
from repro.robustness.retry import NO_RETRY
from repro.sim.config import TLBConfig
from repro.tlb.context import ContextSwitchPolicy, MultiprogrammedTLB
from repro.trace.mix import interleave_with_contexts
from repro.trace.record import Trace
from repro.types import log2_exact

#: Sweep result key: (policy value, quantum, config label).
SweepKey = Tuple[str, int, str]


@dataclass(frozen=True)
class MultiprogramResult:
    """Outcome of one multiprogrammed run.

    Attributes:
        program_names: the mixed programs.
        switch_policy: FLUSH or ASID.
        quantum: scheduling quantum in references.
        references: total references simulated.
        misses: TLB misses.
        switches: context switches performed.
        refs_per_instruction: the mix's aggregate RPI.
        miss_penalty_cycles: penalty used for CPI.
    """

    program_names: Sequence[str]
    switch_policy: ContextSwitchPolicy
    quantum: int
    references: int
    misses: int
    switches: int
    refs_per_instruction: float
    miss_penalty_cycles: float

    @property
    def performance(self) -> TLBPerformance:
        return TLBPerformance(
            misses=self.misses,
            references=self.references,
            refs_per_instruction=self.refs_per_instruction,
            miss_penalty_cycles=self.miss_penalty_cycles,
        )

    @property
    def cpi_tlb(self) -> float:
        return self.performance.cpi_tlb

    def to_payload(self) -> Dict[str, Any]:
        """JSON-serializable form, for the result cache."""
        return {
            "program_names": list(self.program_names),
            "switch_policy": self.switch_policy.value,
            "quantum": int(self.quantum),
            "references": int(self.references),
            "misses": int(self.misses),
            "switches": int(self.switches),
            "refs_per_instruction": float(self.refs_per_instruction),
            "miss_penalty_cycles": float(self.miss_penalty_cycles),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "MultiprogramResult":
        """Rebuild a result stored by :meth:`to_payload`."""
        return cls(
            program_names=tuple(payload["program_names"]),
            switch_policy=ContextSwitchPolicy(payload["switch_policy"]),
            quantum=int(payload["quantum"]),
            references=int(payload["references"]),
            misses=int(payload["misses"]),
            switches=int(payload["switches"]),
            refs_per_instruction=float(payload["refs_per_instruction"]),
            miss_penalty_cycles=float(payload["miss_penalty_cycles"]),
        )


def run_multiprogrammed(
    traces: Sequence[Trace],
    config: TLBConfig,
    *,
    quantum: int = 20_000,
    switch_policy: ContextSwitchPolicy = ContextSwitchPolicy.ASID,
    page_size: int = 4096,
    base_penalty: float = SINGLE_SIZE_PENALTY_CYCLES,
    kernel: str = KERNEL_AUTO,
    cache: Optional[SimulationCache] = None,
) -> MultiprogramResult:
    """Simulate a round-robin multiprogrammed mix on one TLB.

    The single-cell case of :func:`sweep_multiprogrammed`: same kernel
    switch, same validation, same cache entries — a later grid sweep
    reuses anything computed here and vice versa.
    """
    results = sweep_multiprogrammed(
        traces,
        (config,),
        quanta=(quantum,),
        policies=(switch_policy,),
        page_size=page_size,
        base_penalty=base_penalty,
        kernel=kernel,
        cache=cache,
    )
    return results[(switch_policy.value, quantum, config.label)]


def sweep_multiprogrammed(
    traces: Sequence[Trace],
    configs: Sequence[TLBConfig],
    *,
    quanta: Sequence[int] = (20_000,),
    policies: Sequence[ContextSwitchPolicy] = (
        ContextSwitchPolicy.FLUSH,
        ContextSwitchPolicy.ASID,
    ),
    page_size: int = 4096,
    base_penalty: float = SINGLE_SIZE_PENALTY_CYCLES,
    kernel: str = KERNEL_AUTO,
    cache: Optional[SimulationCache] = None,
    jobs: Optional[int] = None,
) -> Dict[SweepKey, MultiprogramResult]:
    """One-pass quantum x policy x geometry grid over a program mix.

    Each quantum's interleaving is built exactly once (vectorized
    round-robin mixer) and shared by both policies; each (quantum,
    policy) cell is one executor unit that serves *every* geometry from
    a single epoch-segmented kernel pass (or, under ``kernel="scalar"``,
    one oracle walk driving all cell TLBs).  Cached cells are skipped
    per configuration — entries share the ``"multiprog"`` cache kind
    with :func:`run_multiprogrammed`.  ``jobs`` fans the cells out over
    forked workers (the parent-built mixes are inherited through the
    fork); a failed cell raises :class:`~repro.errors.SimulationError`
    after the remaining cells have finished.

    Returns a dict keyed by ``(policy.value, quantum, config.label)``.
    """
    faultinject.check("sim.multiprog.sweep")
    if not traces:
        raise ConfigurationError("need at least one trace to mix")
    if not configs:
        raise ConfigurationError(
            "sweep_multiprogrammed needs at least one TLBConfig"
        )
    if not quanta:
        raise ConfigurationError(
            "sweep_multiprogrammed needs at least one quantum"
        )
    if not policies:
        raise ConfigurationError(
            "sweep_multiprogrammed needs at least one switch policy"
        )
    for config in configs:
        validate_multiprog_config(config)
    resolved = resolve_kernel(
        kernel,
        vector_supported=all(
            config.replacement == "lru" for config in configs
        ),
    )

    program_names = tuple(trace.name for trace in traces)
    results: Dict[SweepKey, MultiprogramResult] = {}
    # (quantum, policy) -> [(config, cache key or None), ...] still to run.
    pending: Dict[Tuple[int, ContextSwitchPolicy], List[Any]] = {}
    for quantum in quanta:
        for policy in policies:
            for config in configs:
                key: Optional[str] = None
                if cache is not None:
                    key = canonical_key(
                        {
                            "version": CACHE_KEY_VERSION,
                            "kind": "multiprog",
                            "traces": [t.fingerprint for t in traces],
                            "quantum": quantum,
                            "policy": policy.value,
                            "page_size": page_size,
                            "config": config.cache_parts(),
                            "base_penalty": base_penalty,
                            "kernel": resolved,
                        }
                    )
                    payload = cache.get(key)
                    if payload is not None:
                        results[(policy.value, quantum, config.label)] = (
                            MultiprogramResult.from_payload(payload)
                        )
                        continue
                pending.setdefault((quantum, policy), []).append(
                    (config, key)
                )
    if not pending:
        return results

    # Build each needed interleaving exactly once, in the parent, so
    # forked cell workers inherit the arrays instead of rebuilding them.
    shift = np.uint32(log2_exact(page_size))
    mixes: Dict[int, Tuple[np.ndarray, np.ndarray, Trace]] = {}
    for quantum in {quantum for quantum, _ in pending}:
        mixed, contexts = interleave_with_contexts(traces, quantum=quantum)
        pages = np.asarray(mixed.addresses >> shift, dtype=np.int64)
        mixes[quantum] = (pages, contexts, mixed)

    def make_cell(
        quantum: int, policy: ContextSwitchPolicy, cell_configs: List[TLBConfig]
    ):
        def run_cell() -> List[Dict[str, Any]]:
            faultinject.check("sim.multiprog.cell")
            pages, contexts, mixed = mixes[quantum]
            if resolved == KERNEL_VECTOR:
                counts = multiprog_counts(
                    pages, contexts, policy, cell_configs
                )
            else:
                counts = _scalar_counts(pages, contexts, policy, cell_configs)
            return [
                MultiprogramResult(
                    program_names=program_names,
                    switch_policy=policy,
                    quantum=quantum,
                    references=len(mixed),
                    misses=count.misses,
                    switches=count.switches,
                    refs_per_instruction=mixed.refs_per_instruction,
                    miss_penalty_cycles=base_penalty,
                ).to_payload()
                for count in counts
            ]

        return run_cell

    units = []
    cells = []
    for (quantum, policy), cell_entries in pending.items():
        cell_configs = [config for config, _ in cell_entries]
        units.append(
            UnitSpec(
                name=f"multiprog/q{quantum}/{policy.value}",
                run=make_cell(quantum, policy, cell_configs),
            )
        )
        cells.append((policy, quantum, cell_entries))
    report = run_units(units, retry_policy=NO_RETRY, jobs=jobs)
    if report.failures:
        failure = report.failures[0]
        raise SimulationError(
            f"multiprogrammed sweep cell {failure.name} failed: "
            f"{failure.error}"
        )
    for outcome, (policy, quantum, cell_entries) in zip(
        report.outcomes, cells
    ):
        for payload, (config, key) in zip(outcome.result, cell_entries):
            if cache is not None and key is not None:
                cache.put(key, payload)
            results[(policy.value, quantum, config.label)] = (
                MultiprogramResult.from_payload(payload)
            )
    return results


def _scalar_counts(
    pages: np.ndarray,
    contexts: np.ndarray,
    policy: ContextSwitchPolicy,
    configs: Sequence[TLBConfig],
) -> List[MultiprogCounts]:
    """Reference oracle: stateful multiprogrammed TLB walks, one pass.

    Every configuration's TLB sees the identical reference and switch
    stream, so one walk of the mix drives them all — the scalar analogue
    of the kernel's one-pass-many-geometries contract.
    """
    tlbs = [MultiprogrammedTLB(config.build(), policy) for config in configs]
    current = -1
    for page, context in zip(pages.tolist(), contexts.tolist()):
        if context != current:
            for tlb in tlbs:
                tlb.switch_to(context)
            current = context
        for tlb in tlbs:
            tlb.access_single(page)
    return [
        MultiprogCounts(misses=tlb.stats.misses, switches=tlb.switches)
        for tlb in tlbs
    ]
