"""Multiprogrammed simulation driver (flush vs ASID context handling).

Runs several programs' traces through one TLB with round-robin
scheduling, under either context-switch policy of
:mod:`repro.tlb.context`.  This is the experiment the paper's traces
could not support (Sections 3.1, 6); results are labelled beyond-paper.

:func:`sweep_multiprogrammed` is the grid entry point: it builds each
quantum's interleaving exactly once, then evaluates every requested
geometry of a (quantum, policy) cell from one epoch-segmented
stack-depth pass (:mod:`repro.perf.multiprog`), with per-cell failure
isolation and optional worker fan-out via
:func:`repro.robustness.executor.run_units` and per-configuration
results threaded through the content-addressed result cache (kind
``"multiprog"``).  :func:`run_multiprogrammed` is the single-cell
special case.  The scalar :class:`~repro.tlb.context.MultiprogrammedTLB`
walk remains the reference oracle behind ``kernel="scalar"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.mem.misshandler import (
    SINGLE_SIZE_PENALTY_CYCLES,
    TWO_SIZE_PENALTY_FACTOR,
)
from repro.metrics.cpi import TLBPerformance
from repro.parallel.cache import (
    CACHE_KEY_VERSION,
    SimulationCache,
    canonical_key,
)
from repro.perf.kernels import KERNEL_AUTO, KERNEL_VECTOR, choose_kernel
from repro.perf.multiprog import (
    MultiprogCounts,
    multiprog_counts,
    validate_multiprog_config,
)
from repro.perf.multiprog_twosize import (
    MultiprogTwoSizeCounts,
    fold_event_chunks,
    multiprog_two_size_counts,
)
from repro.policy.promotion import DynamicPromotionPolicy
from repro.policy.vector import PolicyDecisions, policy_decisions
from repro.robustness import faultinject
from repro.robustness.executor import UnitSpec, run_units
from repro.robustness.retry import NO_RETRY
from repro.sim.config import TLBConfig, TwoSizeScheme
from repro.tlb.context import ContextSwitchPolicy, MultiprogrammedTLB
from repro.trace.mix import interleave_with_contexts
from repro.trace.record import Trace
from repro.types import log2_exact

#: Sweep result key: (policy value, quantum, config label).
SweepKey = Tuple[str, int, str]


@dataclass(frozen=True)
class MultiprogramResult:
    """Outcome of one multiprogrammed run.

    Attributes:
        program_names: the mixed programs.
        switch_policy: FLUSH or ASID.
        quantum: scheduling quantum in references.
        references: total references simulated.
        misses: TLB misses.
        switches: context switches performed.
        refs_per_instruction: the mix's aggregate RPI.
        miss_penalty_cycles: penalty used for CPI.
        resolved_kernel / fallback_reason: audit trail of the kernel
            switch (excluded from equality so oracle comparisons hold).
    """

    program_names: Sequence[str]
    switch_policy: ContextSwitchPolicy
    quantum: int
    references: int
    misses: int
    switches: int
    refs_per_instruction: float
    miss_penalty_cycles: float
    resolved_kernel: Optional[str] = field(
        default=None, compare=False, repr=False
    )
    fallback_reason: Optional[str] = field(
        default=None, compare=False, repr=False
    )

    @property
    def performance(self) -> TLBPerformance:
        return TLBPerformance(
            misses=self.misses,
            references=self.references,
            refs_per_instruction=self.refs_per_instruction,
            miss_penalty_cycles=self.miss_penalty_cycles,
        )

    @property
    def cpi_tlb(self) -> float:
        return self.performance.cpi_tlb

    def to_payload(self) -> Dict[str, Any]:
        """JSON-serializable form, for the result cache."""
        return {
            "program_names": list(self.program_names),
            "switch_policy": self.switch_policy.value,
            "quantum": int(self.quantum),
            "references": int(self.references),
            "misses": int(self.misses),
            "switches": int(self.switches),
            "refs_per_instruction": float(self.refs_per_instruction),
            "miss_penalty_cycles": float(self.miss_penalty_cycles),
            "resolved_kernel": self.resolved_kernel,
            "fallback_reason": self.fallback_reason,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "MultiprogramResult":
        """Rebuild a result stored by :meth:`to_payload`."""
        return cls(
            program_names=tuple(payload["program_names"]),
            switch_policy=ContextSwitchPolicy(payload["switch_policy"]),
            quantum=int(payload["quantum"]),
            references=int(payload["references"]),
            misses=int(payload["misses"]),
            switches=int(payload["switches"]),
            refs_per_instruction=float(payload["refs_per_instruction"]),
            miss_penalty_cycles=float(payload["miss_penalty_cycles"]),
            resolved_kernel=payload.get("resolved_kernel"),
            fallback_reason=payload.get("fallback_reason"),
        )


def run_multiprogrammed(
    traces: Sequence[Trace],
    config: TLBConfig,
    *,
    quantum: int = 20_000,
    switch_policy: ContextSwitchPolicy = ContextSwitchPolicy.ASID,
    page_size: int = 4096,
    base_penalty: float = SINGLE_SIZE_PENALTY_CYCLES,
    kernel: str = KERNEL_AUTO,
    cache: Optional[SimulationCache] = None,
) -> MultiprogramResult:
    """Simulate a round-robin multiprogrammed mix on one TLB.

    The single-cell case of :func:`sweep_multiprogrammed`: same kernel
    switch, same validation, same cache entries — a later grid sweep
    reuses anything computed here and vice versa.
    """
    results = sweep_multiprogrammed(
        traces,
        (config,),
        quanta=(quantum,),
        policies=(switch_policy,),
        page_size=page_size,
        base_penalty=base_penalty,
        kernel=kernel,
        cache=cache,
    )
    return results[(switch_policy.value, quantum, config.label)]


def sweep_multiprogrammed(
    traces: Sequence[Trace],
    configs: Sequence[TLBConfig],
    *,
    quanta: Sequence[int] = (20_000,),
    policies: Sequence[ContextSwitchPolicy] = (
        ContextSwitchPolicy.FLUSH,
        ContextSwitchPolicy.ASID,
    ),
    page_size: int = 4096,
    base_penalty: float = SINGLE_SIZE_PENALTY_CYCLES,
    kernel: str = KERNEL_AUTO,
    cache: Optional[SimulationCache] = None,
    jobs: Optional[int] = None,
) -> Dict[SweepKey, MultiprogramResult]:
    """One-pass quantum x policy x geometry grid over a program mix.

    Each quantum's interleaving is built exactly once (vectorized
    round-robin mixer) and shared by both policies; each (quantum,
    policy) cell is one executor unit that serves *every* geometry from
    a single epoch-segmented kernel pass (or, under ``kernel="scalar"``,
    one oracle walk driving all cell TLBs).  Cached cells are skipped
    per configuration — entries share the ``"multiprog"`` cache kind
    with :func:`run_multiprogrammed`.  ``jobs`` fans the cells out over
    forked workers (the parent-built mixes are inherited through the
    fork); a failed cell raises :class:`~repro.errors.SimulationError`
    after the remaining cells have finished.

    Returns a dict keyed by ``(policy.value, quantum, config.label)``.
    """
    faultinject.check("sim.multiprog.sweep")
    if not traces:
        raise ConfigurationError("need at least one trace to mix")
    if not configs:
        raise ConfigurationError(
            "sweep_multiprogrammed needs at least one TLBConfig"
        )
    if not quanta:
        raise ConfigurationError(
            "sweep_multiprogrammed needs at least one quantum"
        )
    if not policies:
        raise ConfigurationError(
            "sweep_multiprogrammed needs at least one switch policy"
        )
    for config in configs:
        validate_multiprog_config(config)
    choice = choose_kernel(
        kernel,
        vector_supported=all(
            config.replacement == "lru" for config in configs
        ),
        reason="non-LRU replacement breaks the epoch-segmented stack identity",
    )
    resolved = choice.kernel

    program_names = tuple(trace.name for trace in traces)
    results: Dict[SweepKey, MultiprogramResult] = {}
    # (quantum, policy) -> [(config, cache key or None), ...] still to run.
    pending: Dict[Tuple[int, ContextSwitchPolicy], List[Any]] = {}
    for quantum in quanta:
        for policy in policies:
            for config in configs:
                key: Optional[str] = None
                if cache is not None:
                    key = canonical_key(
                        {
                            "version": CACHE_KEY_VERSION,
                            "kind": "multiprog",
                            "traces": [t.fingerprint for t in traces],
                            "quantum": quantum,
                            "policy": policy.value,
                            "page_size": page_size,
                            "config": config.cache_parts(),
                            "base_penalty": base_penalty,
                            "kernel": resolved,
                        }
                    )
                    payload = cache.get(key)
                    if payload is not None:
                        results[(policy.value, quantum, config.label)] = (
                            MultiprogramResult.from_payload(payload)
                        )
                        continue
                pending.setdefault((quantum, policy), []).append(
                    (config, key)
                )
    if not pending:
        return results

    # Build each needed interleaving exactly once, in the parent, so
    # forked cell workers inherit the arrays instead of rebuilding them.
    shift = np.uint32(log2_exact(page_size))
    mixes: Dict[int, Tuple[np.ndarray, np.ndarray, Trace]] = {}
    for quantum in {quantum for quantum, _ in pending}:
        mixed, contexts = interleave_with_contexts(traces, quantum=quantum)
        pages = np.asarray(mixed.addresses >> shift, dtype=np.int64)
        mixes[quantum] = (pages, contexts, mixed)

    def make_cell(
        quantum: int, policy: ContextSwitchPolicy, cell_configs: List[TLBConfig]
    ):
        def run_cell() -> List[Dict[str, Any]]:
            faultinject.check("sim.multiprog.cell")
            pages, contexts, mixed = mixes[quantum]
            if resolved == KERNEL_VECTOR:
                counts = multiprog_counts(
                    pages, contexts, policy, cell_configs
                )
            else:
                counts = _scalar_counts(pages, contexts, policy, cell_configs)
            return [
                MultiprogramResult(
                    program_names=program_names,
                    switch_policy=policy,
                    quantum=quantum,
                    references=len(mixed),
                    misses=count.misses,
                    switches=count.switches,
                    refs_per_instruction=mixed.refs_per_instruction,
                    miss_penalty_cycles=base_penalty,
                    resolved_kernel=resolved,
                    fallback_reason=choice.fallback_reason,
                ).to_payload()
                for count in counts
            ]

        return run_cell

    units = []
    cells = []
    for (quantum, policy), cell_entries in pending.items():
        cell_configs = [config for config, _ in cell_entries]
        units.append(
            UnitSpec(
                name=f"multiprog/q{quantum}/{policy.value}",
                run=make_cell(quantum, policy, cell_configs),
            )
        )
        cells.append((policy, quantum, cell_entries))
    report = run_units(units, retry_policy=NO_RETRY, jobs=jobs)
    if report.failures:
        failure = report.failures[0]
        raise SimulationError(
            f"multiprogrammed sweep cell {failure.name} failed: "
            f"{failure.error}"
        )
    for outcome, (policy, quantum, cell_entries) in zip(
        report.outcomes, cells
    ):
        for payload, (config, key) in zip(outcome.result, cell_entries):
            if cache is not None and key is not None:
                cache.put(key, payload)
            results[(policy.value, quantum, config.label)] = (
                MultiprogramResult.from_payload(payload)
            )
    return results


def _scalar_counts(
    pages: np.ndarray,
    contexts: np.ndarray,
    policy: ContextSwitchPolicy,
    configs: Sequence[TLBConfig],
) -> List[MultiprogCounts]:
    """Reference oracle: stateful multiprogrammed TLB walks, one pass.

    Every configuration's TLB sees the identical reference and switch
    stream, so one walk of the mix drives them all — the scalar analogue
    of the kernel's one-pass-many-geometries contract.
    """
    tlbs = [MultiprogrammedTLB(config.build(), policy) for config in configs]
    current = -1
    for page, context in zip(pages.tolist(), contexts.tolist()):
        if context != current:
            for tlb in tlbs:
                tlb.switch_to(context)
            current = context
        for tlb in tlbs:
            tlb.access_single(page)
    return [
        MultiprogCounts(misses=tlb.stats.misses, switches=tlb.switches)
        for tlb in tlbs
    ]


@dataclass(frozen=True)
class TwoSizeMultiprogramResult:
    """Outcome of one multiprogrammed *two-page-size* run.

    Extends :class:`MultiprogramResult`'s counters with the two-size
    accounting: each program runs its own dynamic promotion policy (the
    per-address-space assignment design of Section 6), and the TLB
    additionally reports large-page misses, sequential reprobes and
    shootdown invalidations.
    """

    program_names: Sequence[str]
    switch_policy: ContextSwitchPolicy
    quantum: int
    config: TLBConfig
    references: int
    misses: int
    large_misses: int
    reprobes: int
    invalidations: int
    promotions: int
    demotions: int
    switches: int
    refs_per_instruction: float
    miss_penalty_cycles: float
    resolved_kernel: Optional[str] = field(
        default=None, compare=False, repr=False
    )
    fallback_reason: Optional[str] = field(
        default=None, compare=False, repr=False
    )

    @property
    def performance(self) -> TLBPerformance:
        return TLBPerformance(
            misses=self.misses,
            references=self.references,
            refs_per_instruction=self.refs_per_instruction,
            miss_penalty_cycles=self.miss_penalty_cycles,
        )

    @property
    def cpi_tlb(self) -> float:
        return self.performance.cpi_tlb

    def to_payload(self) -> Dict[str, Any]:
        """JSON-serializable form, for the result cache."""
        return {
            "program_names": list(self.program_names),
            "switch_policy": self.switch_policy.value,
            "quantum": int(self.quantum),
            "config": self.config.cache_parts(),
            "references": int(self.references),
            "misses": int(self.misses),
            "large_misses": int(self.large_misses),
            "reprobes": int(self.reprobes),
            "invalidations": int(self.invalidations),
            "promotions": int(self.promotions),
            "demotions": int(self.demotions),
            "switches": int(self.switches),
            "refs_per_instruction": float(self.refs_per_instruction),
            "miss_penalty_cycles": float(self.miss_penalty_cycles),
            "resolved_kernel": self.resolved_kernel,
            "fallback_reason": self.fallback_reason,
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], config: TLBConfig
    ) -> "TwoSizeMultiprogramResult":
        """Rebuild a result stored by :meth:`to_payload`."""
        return cls(
            program_names=tuple(payload["program_names"]),
            switch_policy=ContextSwitchPolicy(payload["switch_policy"]),
            quantum=int(payload["quantum"]),
            config=config,
            references=int(payload["references"]),
            misses=int(payload["misses"]),
            large_misses=int(payload["large_misses"]),
            reprobes=int(payload["reprobes"]),
            invalidations=int(payload["invalidations"]),
            promotions=int(payload["promotions"]),
            demotions=int(payload["demotions"]),
            switches=int(payload["switches"]),
            refs_per_instruction=float(payload["refs_per_instruction"]),
            miss_penalty_cycles=float(payload["miss_penalty_cycles"]),
            resolved_kernel=payload.get("resolved_kernel"),
            fallback_reason=payload.get("fallback_reason"),
        )


def _fresh_policy(scheme: TwoSizeScheme) -> DynamicPromotionPolicy:
    return DynamicPromotionPolicy(
        scheme.pair,
        scheme.window,
        promote_fraction=scheme.promote_fraction,
        demote_fraction=scheme.demote_fraction,
    )


def _composed_decisions(
    blocks: np.ndarray,
    contexts: np.ndarray,
    scheme: TwoSizeScheme,
    num_programs: int,
    blocks_shift: int,
) -> PolicyDecisions:
    """Interleave per-program policy decision streams into one.

    Each program's fresh policy replays over *its own* block
    subsequence (policies are per-address-space software state and see
    nothing across switches); the promoted/demoted chunk columns are
    folded into the program's private namespace so the composed event
    plan keeps the state machines independent.
    """
    n = int(blocks.size)
    large = np.zeros(n, dtype=bool)
    promoted = np.full(n, -1, dtype=np.int64)
    demoted = np.full(n, -1, dtype=np.int64)
    promotions = demotions = 0
    for ctx in range(num_programs):
        idx = np.flatnonzero(contexts == ctx)
        if idx.size == 0:
            continue
        d = policy_decisions(_fresh_policy(scheme), blocks[idx])
        large[idx] = d.large
        promoted[idx] = fold_event_chunks(ctx, d.promoted, blocks_shift)
        demoted[idx] = fold_event_chunks(ctx, d.demoted, blocks_shift)
        promotions += d.promotions
        demotions += d.demotions
    return PolicyDecisions(
        large=large,
        promoted=promoted,
        demoted=demoted,
        promotions=promotions,
        demotions=demotions,
    )


def run_multiprogrammed_two_sizes(
    traces: Sequence[Trace],
    config: TLBConfig,
    *,
    scheme: TwoSizeScheme = TwoSizeScheme(),
    quantum: int = 20_000,
    switch_policy: ContextSwitchPolicy = ContextSwitchPolicy.ASID,
    base_penalty: float = SINGLE_SIZE_PENALTY_CYCLES,
    penalty_factor: float = TWO_SIZE_PENALTY_FACTOR,
    kernel: str = KERNEL_AUTO,
    cache: Optional[SimulationCache] = None,
) -> TwoSizeMultiprogramResult:
    """Simulate a multiprogrammed mix under the two-page-size scheme.

    The single-cell case of :func:`sweep_multiprogrammed_two_sizes`.
    """
    results = sweep_multiprogrammed_two_sizes(
        traces,
        (config,),
        scheme=scheme,
        quanta=(quantum,),
        policies=(switch_policy,),
        base_penalty=base_penalty,
        penalty_factor=penalty_factor,
        kernel=kernel,
        cache=cache,
    )
    return results[(switch_policy.value, quantum, config.label)]


def sweep_multiprogrammed_two_sizes(
    traces: Sequence[Trace],
    configs: Sequence[TLBConfig],
    *,
    scheme: TwoSizeScheme = TwoSizeScheme(),
    quanta: Sequence[int] = (20_000,),
    policies: Sequence[ContextSwitchPolicy] = (
        ContextSwitchPolicy.FLUSH,
        ContextSwitchPolicy.ASID,
    ),
    base_penalty: float = SINGLE_SIZE_PENALTY_CYCLES,
    penalty_factor: float = TWO_SIZE_PENALTY_FACTOR,
    kernel: str = KERNEL_AUTO,
    cache: Optional[SimulationCache] = None,
    jobs: Optional[int] = None,
) -> Dict[SweepKey, TwoSizeMultiprogramResult]:
    """Quantum x policy x geometry grid of multiprogrammed two-size runs.

    Each program runs its *own* dynamic promotion policy built from
    ``scheme`` — the per-address-space page-size assignment the paper's
    Section 6 leaves to the OS.  The vector path composes the
    per-program decision streams once per quantum and hands every
    (policy, geometry) cell to the composed kernel
    (:mod:`repro.perf.multiprog_twosize`); the scalar oracle walks
    :class:`~repro.tlb.context.MultiprogrammedTLB` wrappers with
    per-program policy objects and forwarded shootdowns.  Cell fan-out,
    failure isolation and caching (kind ``"multiprog2"``) mirror
    :func:`sweep_multiprogrammed`.

    Returns a dict keyed by ``(policy.value, quantum, config.label)``.
    """
    faultinject.check("sim.multiprog.sweep_two_sizes")
    if not traces:
        raise ConfigurationError("need at least one trace to mix")
    if not configs:
        raise ConfigurationError(
            "sweep_multiprogrammed_two_sizes needs at least one TLBConfig"
        )
    if not quanta:
        raise ConfigurationError(
            "sweep_multiprogrammed_two_sizes needs at least one quantum"
        )
    if not policies:
        raise ConfigurationError(
            "sweep_multiprogrammed_two_sizes needs at least one switch policy"
        )
    choice = choose_kernel(
        kernel,
        vector_supported=all(
            config.replacement == "lru" for config in configs
        ),
        reason="non-LRU replacement breaks the epoch-segmented stack identity",
    )
    scheme_token = _fresh_policy(scheme).cache_token()

    program_names = tuple(trace.name for trace in traces)
    penalty = base_penalty * penalty_factor
    results: Dict[SweepKey, TwoSizeMultiprogramResult] = {}
    pending: Dict[Tuple[int, ContextSwitchPolicy], List[Any]] = {}
    for quantum in quanta:
        for policy in policies:
            for config in configs:
                key: Optional[str] = None
                if cache is not None:
                    key = canonical_key(
                        {
                            "version": CACHE_KEY_VERSION,
                            "kind": "multiprog2",
                            "traces": [t.fingerprint for t in traces],
                            "quantum": quantum,
                            "policy": policy.value,
                            "scheme": scheme_token,
                            "config": config.cache_parts(),
                            "base_penalty": base_penalty,
                            "penalty_factor": penalty_factor,
                            "kernel": choice.kernel,
                        }
                    )
                    payload = cache.get(key)
                    if payload is not None:
                        results[(policy.value, quantum, config.label)] = (
                            TwoSizeMultiprogramResult.from_payload(
                                payload, config
                            )
                        )
                        continue
                pending.setdefault((quantum, policy), []).append(
                    (config, key)
                )
    if not pending:
        return results

    # Build each quantum's interleaving and composed decision stream
    # exactly once, in the parent, shared by both policies' cells.
    pair = scheme.pair
    blocks_shift = log2_exact(pair.blocks_per_chunk)
    shift = np.uint32(pair.small_shift)
    num_programs = len(traces)
    mixes: Dict[int, Tuple[np.ndarray, np.ndarray, PolicyDecisions, Trace]] = {}
    for quantum in {quantum for quantum, _ in pending}:
        mixed, contexts = interleave_with_contexts(traces, quantum=quantum)
        blocks = np.asarray(mixed.addresses >> shift, dtype=np.int64)
        decisions = _composed_decisions(
            blocks, contexts, scheme, num_programs, blocks_shift
        )
        mixes[quantum] = (blocks, contexts, decisions, mixed)

    def make_cell(
        quantum: int, policy: ContextSwitchPolicy, cell_configs: List[TLBConfig]
    ):
        def run_cell() -> List[Dict[str, Any]]:
            faultinject.check("sim.multiprog.cell_two_sizes")
            blocks, contexts, decisions, mixed = mixes[quantum]
            if choice.kernel == KERNEL_VECTOR:
                counts = multiprog_two_size_counts(
                    blocks,
                    contexts,
                    blocks_shift,
                    decisions,
                    policy,
                    cell_configs,
                )
            else:
                counts = _scalar_two_size_counts(
                    blocks, contexts, scheme, policy, cell_configs
                )
            return [
                TwoSizeMultiprogramResult(
                    program_names=program_names,
                    switch_policy=policy,
                    quantum=quantum,
                    config=config,
                    references=len(mixed),
                    misses=count.misses,
                    large_misses=count.large_misses,
                    reprobes=count.reprobes,
                    invalidations=count.invalidations,
                    promotions=decisions.promotions,
                    demotions=decisions.demotions,
                    switches=count.switches,
                    refs_per_instruction=mixed.refs_per_instruction,
                    miss_penalty_cycles=penalty,
                    resolved_kernel=choice.kernel,
                    fallback_reason=choice.fallback_reason,
                ).to_payload()
                for config, count in zip(cell_configs, counts)
            ]

        return run_cell

    units = []
    cells = []
    for (quantum, policy), cell_entries in pending.items():
        cell_configs = [config for config, _ in cell_entries]
        units.append(
            UnitSpec(
                name=f"multiprog2/q{quantum}/{policy.value}",
                run=make_cell(quantum, policy, cell_configs),
            )
        )
        cells.append((policy, quantum, cell_entries))
    report = run_units(units, retry_policy=NO_RETRY, jobs=jobs)
    if report.failures:
        failure = report.failures[0]
        raise SimulationError(
            f"multiprogrammed two-size sweep cell {failure.name} failed: "
            f"{failure.error}"
        )
    for outcome, (policy, quantum, cell_entries) in zip(
        report.outcomes, cells
    ):
        for payload, (config, key) in zip(outcome.result, cell_entries):
            if cache is not None and key is not None:
                cache.put(key, payload)
            results[(policy.value, quantum, config.label)] = (
                TwoSizeMultiprogramResult.from_payload(payload, config)
            )
    return results


def _scalar_two_size_counts(
    blocks: np.ndarray,
    contexts: np.ndarray,
    scheme: TwoSizeScheme,
    policy: ContextSwitchPolicy,
    configs: Sequence[TLBConfig],
) -> List[MultiprogTwoSizeCounts]:
    """Reference oracle: per-program policies, forwarded shootdowns.

    One walk drives all configurations' TLBs.  At each reference the
    operation order matches the kernel's model: switch to the
    reference's context, apply the issuing program's shootdowns
    (demote, then promote), then access.
    """
    pair = scheme.pair
    blocks_shift = log2_exact(pair.blocks_per_chunk)
    blocks_per_chunk = pair.blocks_per_chunk
    num_programs = int(contexts.max()) + 1 if contexts.size else 0
    policies = [_fresh_policy(scheme) for _ in range(num_programs)]
    tlbs = [MultiprogrammedTLB(config.build(), policy) for config in configs]
    current = -1
    for block, context in zip(blocks.tolist(), contexts.tolist()):
        if context != current:
            for tlb in tlbs:
                tlb.switch_to(context)
            current = context
        decision = policies[context].access_block(block)
        promoted = decision.promoted_chunk
        demoted = decision.demoted_chunk
        if promoted is not None or demoted is not None:
            for tlb in tlbs:
                if demoted is not None:
                    tlb.invalidate_large_page(demoted)
                if promoted is not None:
                    tlb.invalidate_small_pages_of_chunk(
                        promoted, blocks_per_chunk
                    )
        chunk = block >> blocks_shift
        large = decision.large
        for tlb in tlbs:
            tlb.access(block, chunk, large)
    return [
        MultiprogTwoSizeCounts(
            misses=tlb.stats.misses,
            large_misses=tlb.stats.large_misses,
            reprobes=tlb.stats.reprobes,
            invalidations=tlb.stats.invalidations,
            switches=tlb.switches,
        )
        for tlb in tlbs
    ]
