"""Multiprogrammed simulation driver (flush vs ASID context handling).

Runs several programs' traces through one TLB with round-robin
scheduling, under either context-switch policy of
:mod:`repro.tlb.context`.  This is the experiment the paper's traces
could not support (Sections 3.1, 6); results are labelled beyond-paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.mem.misshandler import SINGLE_SIZE_PENALTY_CYCLES
from repro.metrics.cpi import TLBPerformance
from repro.sim.config import TLBConfig
from repro.tlb.context import ContextSwitchPolicy, MultiprogrammedTLB
from repro.trace.mix import interleave_with_contexts
from repro.trace.record import Trace
from repro.types import log2_exact


@dataclass(frozen=True)
class MultiprogramResult:
    """Outcome of one multiprogrammed run.

    Attributes:
        program_names: the mixed programs.
        switch_policy: FLUSH or ASID.
        quantum: scheduling quantum in references.
        references: total references simulated.
        misses: TLB misses.
        switches: context switches performed.
        refs_per_instruction: the mix's aggregate RPI.
        miss_penalty_cycles: penalty used for CPI.
    """

    program_names: Sequence[str]
    switch_policy: ContextSwitchPolicy
    quantum: int
    references: int
    misses: int
    switches: int
    refs_per_instruction: float
    miss_penalty_cycles: float

    @property
    def performance(self) -> TLBPerformance:
        return TLBPerformance(
            misses=self.misses,
            references=self.references,
            refs_per_instruction=self.refs_per_instruction,
            miss_penalty_cycles=self.miss_penalty_cycles,
        )

    @property
    def cpi_tlb(self) -> float:
        return self.performance.cpi_tlb


def run_multiprogrammed(
    traces: Sequence[Trace],
    config: TLBConfig,
    *,
    quantum: int = 20_000,
    switch_policy: ContextSwitchPolicy = ContextSwitchPolicy.ASID,
    page_size: int = 4096,
    base_penalty: float = SINGLE_SIZE_PENALTY_CYCLES,
) -> MultiprogramResult:
    """Simulate a round-robin multiprogrammed mix on one TLB."""
    if not traces:
        raise ConfigurationError("need at least one trace to mix")
    mixed, contexts = interleave_with_contexts(traces, quantum=quantum)
    tlb = MultiprogrammedTLB(config.build(), switch_policy)

    pages = (mixed.addresses >> np.uint32(log2_exact(page_size))).tolist()
    context_list = contexts.tolist()
    current = -1
    for page, context in zip(pages, context_list):
        if context != current:
            tlb.switch_to(context)
            current = context
        tlb.access_single(page)

    return MultiprogramResult(
        program_names=tuple(trace.name for trace in traces),
        switch_policy=switch_policy,
        quantum=quantum,
        references=len(mixed),
        misses=tlb.stats.misses,
        switches=tlb.switches,
        refs_per_instruction=mixed.refs_per_instruction,
        miss_penalty_cycles=base_penalty,
    )
