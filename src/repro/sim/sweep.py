"""Single-page-size configuration sweeps via stack simulation.

The paper simulated 84 TLB configurations per trace pass with ``tycho``'s
all-associativity simulation; this module is the equivalent convenience:
give it page sizes and TLB shapes, and it extracts every miss count from
one :mod:`repro.stacksim` pass per (page size, set count) family.

Set-index bits default to the low bits of the page number; an explicit
``index_shift`` lets the caller index 4KB pages by large-page (chunk)
bits — the degenerate "two-page-size hardware, no large pages allocated"
case of Table 5.1's second column.

Passing a :class:`~repro.robustness.journal.RunJournal` checkpoints each
(page size, config) result as it is extracted and, on a resumed run,
skips any stack pass whose entire family of results is already
journaled — one pass is expensive, its results are precious.  A
:class:`~repro.parallel.cache.SimulationCache` adds a second,
cross-run layer: results found there are copied into the journal
without simulating.  ``jobs`` fans independent stack-pass families out
over the persistent worker pool (leased via
:func:`repro.parallel.pool.lease_task_pool`), shipping the trace once
via shared memory instead of pickling it per task and batching several
families per dispatch round-trip.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.mem.misshandler import SINGLE_SIZE_PENALTY_CYCLES
from repro.parallel.cache import (
    CACHE_KEY_VERSION,
    SimulationCache,
    canonical_key,
)
from repro.parallel.pool import lease_task_pool, resolve_jobs
from repro.parallel.scheduler import plan_batch_size
from repro.perf.kernels import KERNEL_AUTO
from repro.robustness import faultinject
from repro.robustness.journal import RunJournal
from repro.sim.config import SingleSizeScheme, TLBConfig
from repro.sim.driver import RunResult
from repro.stacksim.lru_stack import (
    MissCurve,
    lru_miss_curve,
    per_set_miss_curve,
)
from repro.trace.record import Trace
from repro.trace.trace_io import (
    SharedTraceHandle,
    attach_shared_trace,
    share_trace,
)
from repro.types import log2_exact


def _sweep_unit(
    trace: Trace, page_size: int, label: str, index_shift: int
) -> str:
    """Journal key for one (trace, page size, config) sweep result.

    The key embeds a trace-fingerprint prefix so a journal written
    against one trace can never satisfy a resume against a different
    trace of the same name (e.g. a regenerated workload or a different
    ``--trace-length``).  Journals written before the fingerprint was
    added simply miss and re-simulate — a deliberate one-time cost.
    """
    return (
        f"sweep:{trace.name}:{trace.fingerprint[:12]}:"
        f"{page_size}:{label}:shift{index_shift}"
    )


def _sweep_cache_key(
    trace: Trace,
    page_size: int,
    config: TLBConfig,
    index_shift: int,
    base_penalty: float,
    kernel: str,
) -> str:
    """Content address for one (trace, page size, config) sweep result."""
    return canonical_key(
        {
            "version": CACHE_KEY_VERSION,
            "kind": "sweep",
            "trace": trace.fingerprint,
            "page_size": page_size,
            "index_shift": index_shift,
            "config": config.cache_parts(),
            "base_penalty": base_penalty,
            "kernel": kernel,
        }
    )


def _group_by_sets(configs: Sequence[TLBConfig]) -> Dict[int, List[TLBConfig]]:
    """Group TLB shapes by set count; each group shares one stack pass."""
    by_sets: Dict[int, List[TLBConfig]] = {}
    for config in configs:
        sets = 1 if config.fully_associative else (
            config.entries // config.associativity
        )
        by_sets.setdefault(sets, []).append(config)
    return by_sets


def _family_depth(sets: int, group: Sequence[TLBConfig]) -> int:
    return max(
        config.entries if sets == 1 else config.entries // sets
        for config in group
    )


def _family_curve(
    pages: np.ndarray, index_shift: int, sets: int, depth: int, kernel: str
) -> MissCurve:
    """One stack pass covering every shape with this set count."""
    if sets == 1:
        return lru_miss_curve(pages, max_capacity=depth, kernel=kernel)
    indices = (pages >> np.uint32(index_shift)) & np.uint32(sets - 1)
    return per_set_miss_curve(
        indices, pages, max_associativity=depth, kernel=kernel
    )


#: Worker-local warm cache of page-number arrays, keyed by (segment
#: name, page shift).  Several stack-pass families of one sweep share a
#: page size; recomputing the shift per task would redo a full-trace
#: vector op the worker already did for the previous batch item.  Small
#: and bounded: entries die with the segment's sweep (new shm name).
_PAGES_CACHE: Dict[Tuple[str, int], np.ndarray] = {}
_PAGES_CACHE_LIMIT = 16


def _family_curve_task(
    handle: SharedTraceHandle,
    page_shift: int,
    index_shift: int,
    sets: int,
    depth: int,
    kernel: str,
) -> MissCurve:
    """Worker-side stack pass over a shared-memory trace.

    Module-level so it pickles by reference; the trace itself travels as
    a :class:`SharedTraceHandle` and is attached (and cached) inside the
    worker rather than being serialized per task.  The derived
    page-number array is cached per (segment, shift) so batch siblings
    with the same page size skip straight to the stack pass.
    """
    key = (handle.shm_name, page_shift)
    pages = _PAGES_CACHE.get(key)
    if pages is None:
        trace = attach_shared_trace(handle)
        pages = trace.addresses >> np.uint32(page_shift)
        if len(_PAGES_CACHE) >= _PAGES_CACHE_LIMIT:
            _PAGES_CACHE.clear()
        _PAGES_CACHE[key] = pages
    return _family_curve(pages, index_shift, sets, depth, kernel)


def sweep_single_size(
    trace: Trace,
    page_sizes: Sequence[int],
    configs: Sequence[TLBConfig],
    *,
    base_penalty: float = SINGLE_SIZE_PENALTY_CYCLES,
    index_shift: int = 0,
    journal: Optional[RunJournal] = None,
    kernel: str = KERNEL_AUTO,
    cache: Optional[SimulationCache] = None,
    jobs: Optional[int] = None,
) -> Dict[Tuple[int, str], RunResult]:
    """Miss counts for every (page size, TLB shape) pair.

    Args:
        trace: the reference trace.
        page_sizes: page sizes to evaluate.
        configs: TLB shapes; those sharing a set count share one pass.
        base_penalty: per-miss cycles for CPI (20 in the paper).
        index_shift: extra right-shift applied to the page number before
            taking set-index bits (0 = conventional; 3 with 4KB pages =
            index by 32KB chunk bits).
        journal: optional checkpoint journal; completed (page size,
            config) units are replayed from it instead of re-simulated,
            and fresh results are recorded as they are extracted.
        cache: optional content-addressed result cache, consulted after
            the journal; hits are recorded into the journal, fresh
            results are stored back.
        jobs: fan independent stack-pass families out over this many
            worker processes (``0`` = one per CPU; default serial).
            Results, journal contents and their order are identical to
            a serial sweep.

    Returns:
        {(page_size, config.label): RunResult}
    """
    if not configs:
        raise ConfigurationError("sweep needs at least one TLBConfig")
    results: Dict[Tuple[int, str], RunResult] = {}

    def record(page_size: int, config: TLBConfig, ways: int, curve: MissCurve):
        result = RunResult(
            trace_name=trace.name,
            scheme_label=SingleSizeScheme(page_size).label,
            config=config,
            references=len(trace),
            misses=curve.misses(ways),
            large_misses=0,
            reprobes=0,
            invalidations=0,
            promotions=0,
            demotions=0,
            refs_per_instruction=trace.refs_per_instruction,
            miss_penalty_cycles=base_penalty,
        )
        results[(page_size, config.label)] = result
        payload = result.to_payload()
        if journal is not None:
            journal.record_success(
                _sweep_unit(trace, page_size, config.label, index_shift),
                payload=payload,
            )
        if cache is not None:
            cache.put(
                _sweep_cache_key(
                    trace, page_size, config, index_shift, base_penalty, kernel
                ),
                payload,
            )

    pending: List[Tuple[int, List[TLBConfig]]] = []
    for page_size in page_sizes:
        remaining: List[TLBConfig] = []
        for config in configs:
            unit = _sweep_unit(trace, page_size, config.label, index_shift)
            journal_record = journal.get(unit) if journal is not None else None
            if (
                journal_record is not None
                and journal_record.succeeded
                and journal_record.payload
            ):
                results[(page_size, config.label)] = RunResult.from_payload(
                    journal_record.payload
                )
                continue
            if cache is not None:
                payload = cache.get(
                    _sweep_cache_key(
                        trace,
                        page_size,
                        config,
                        index_shift,
                        base_penalty,
                        kernel,
                    )
                )
                if payload is not None:
                    results[(page_size, config.label)] = (
                        RunResult.from_payload(payload)
                    )
                    if journal is not None:
                        journal.record_success(unit, payload=payload)
                    continue
            remaining.append(config)
        if remaining:
            pending.append((page_size, remaining))

    worker_count = resolve_jobs(jobs)
    family_count = sum(
        len(_group_by_sets(remaining)) for _size, remaining in pending
    )
    if worker_count > 1 and family_count > 1:
        # Parallel: every pending page size's fault check runs up front
        # (serial interleaves them with the passes), then the stack
        # passes fan out over the persistent shared pool with the trace
        # attached once per worker via shared memory.  Extraction — and
        # therefore the journal record order — replays the serial
        # (page size, set-count group, config) order.
        families: List[Tuple[int, int, int, List[TLBConfig]]] = []
        for page_size, remaining in pending:
            faultinject.check("sim.sweep")
            for sets, group in _group_by_sets(remaining).items():
                families.append(
                    (page_size, sets, _family_depth(sets, group), group)
                )
        handle = share_trace(trace)
        lease = lease_task_pool(worker_count)
        try:
            curves = lease.pool.run_calls(
                calls=[
                    (
                        _family_curve_task,
                        (
                            handle,
                            log2_exact(page_size),
                            index_shift,
                            sets,
                            depth,
                            kernel,
                        ),
                    )
                    for page_size, sets, depth, _group in families
                ],
                batch_size=plan_batch_size(len(families), worker_count),
            )
        except BaseException:
            lease.dirty = True
            raise
        finally:
            lease.release()
        for (page_size, sets, _depth, group), curve in zip(families, curves):
            for config in group:
                ways = config.entries if sets == 1 else config.entries // sets
                record(page_size, config, ways, curve)
    else:
        for page_size, remaining in pending:
            faultinject.check("sim.sweep")
            pages = trace.addresses >> np.uint32(log2_exact(page_size))
            for sets, group in _group_by_sets(remaining).items():
                depth = _family_depth(sets, group)
                curve = _family_curve(pages, index_shift, sets, depth, kernel)
                for config in group:
                    ways = (
                        config.entries if sets == 1
                        else config.entries // sets
                    )
                    record(page_size, config, ways, curve)
    return results
