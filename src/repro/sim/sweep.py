"""Single-page-size configuration sweeps via stack simulation.

The paper simulated 84 TLB configurations per trace pass with ``tycho``'s
all-associativity simulation; this module is the equivalent convenience:
give it page sizes and TLB shapes, and it extracts every miss count from
one :mod:`repro.stacksim` pass per (page size, set count) family.

Set-index bits default to the low bits of the page number; an explicit
``index_shift`` lets the caller index 4KB pages by large-page (chunk)
bits — the degenerate "two-page-size hardware, no large pages allocated"
case of Table 5.1's second column.

Passing a :class:`~repro.robustness.journal.RunJournal` checkpoints each
(page size, config) result as it is extracted and, on a resumed run,
skips any stack pass whose entire family of results is already
journaled — one pass is expensive, its results are precious.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.mem.misshandler import SINGLE_SIZE_PENALTY_CYCLES
from repro.perf.kernels import KERNEL_AUTO
from repro.robustness import faultinject
from repro.robustness.journal import RunJournal
from repro.sim.config import SingleSizeScheme, TLBConfig
from repro.sim.driver import RunResult
from repro.stacksim.lru_stack import lru_miss_curve, per_set_miss_curve
from repro.trace.record import Trace
from repro.types import log2_exact


def _sweep_unit(
    trace: Trace, page_size: int, label: str, index_shift: int
) -> str:
    """Journal key for one (trace, page size, config) sweep result."""
    return f"sweep:{trace.name}:{page_size}:{label}:shift{index_shift}"


def sweep_single_size(
    trace: Trace,
    page_sizes: Sequence[int],
    configs: Sequence[TLBConfig],
    *,
    base_penalty: float = SINGLE_SIZE_PENALTY_CYCLES,
    index_shift: int = 0,
    journal: Optional[RunJournal] = None,
    kernel: str = KERNEL_AUTO,
) -> Dict[Tuple[int, str], RunResult]:
    """Miss counts for every (page size, TLB shape) pair.

    Args:
        trace: the reference trace.
        page_sizes: page sizes to evaluate.
        configs: TLB shapes; those sharing a set count share one pass.
        base_penalty: per-miss cycles for CPI (20 in the paper).
        index_shift: extra right-shift applied to the page number before
            taking set-index bits (0 = conventional; 3 with 4KB pages =
            index by 32KB chunk bits).
        journal: optional checkpoint journal; completed (page size,
            config) units are replayed from it instead of re-simulated,
            and fresh results are recorded as they are extracted.

    Returns:
        {(page_size, config.label): RunResult}
    """
    if not configs:
        raise ConfigurationError("sweep needs at least one TLBConfig")
    results: Dict[Tuple[int, str], RunResult] = {}
    for page_size in page_sizes:
        remaining: List[TLBConfig] = []
        for config in configs:
            unit = _sweep_unit(trace, page_size, config.label, index_shift)
            record = journal.get(unit) if journal is not None else None
            if record is not None and record.succeeded and record.payload:
                results[(page_size, config.label)] = RunResult.from_payload(
                    record.payload
                )
            else:
                remaining.append(config)
        if not remaining:
            continue
        faultinject.check("sim.sweep")
        pages = trace.addresses >> np.uint32(log2_exact(page_size))
        by_sets: Dict[int, List[TLBConfig]] = {}
        for config in remaining:
            sets = 1 if config.fully_associative else (
                config.entries // config.associativity
            )
            by_sets.setdefault(sets, []).append(config)
        for sets, group in by_sets.items():
            if sets == 1:
                depth = max(config.entries for config in group)
                curve = lru_miss_curve(pages, max_capacity=depth, kernel=kernel)
            else:
                depth = max(
                    config.entries // sets for config in group
                )
                indices = (pages >> np.uint32(index_shift)) & np.uint32(sets - 1)
                curve = per_set_miss_curve(
                    indices, pages, max_associativity=depth, kernel=kernel
                )
            for config in group:
                ways = config.entries if sets == 1 else config.entries // sets
                result = RunResult(
                    trace_name=trace.name,
                    scheme_label=SingleSizeScheme(page_size).label,
                    config=config,
                    references=len(trace),
                    misses=curve.misses(ways),
                    large_misses=0,
                    reprobes=0,
                    invalidations=0,
                    promotions=0,
                    demotions=0,
                    refs_per_instruction=trace.refs_per_instruction,
                    miss_penalty_cycles=base_penalty,
                )
                results[(page_size, config.label)] = result
                if journal is not None:
                    journal.record_success(
                        _sweep_unit(
                            trace, page_size, config.label, index_shift
                        ),
                        payload=result.to_payload(),
                    )
    return results
