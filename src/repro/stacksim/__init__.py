"""Stack-simulation algorithms: Mattson LRU stacks, all-associativity
sweeps, and Slutz-Traiger average working-set calculation.

These reproduce the paper's methodology machinery (Section 3.3): the
``tycho`` all-associativity simulator and the low-memory working-set
algorithm that made 5.5 CPU-months of 1992 simulation tractable.
"""

from repro.stacksim.allassoc import GeometryResult, sweep_single_page_size
from repro.stacksim.lru_stack import MissCurve, lru_miss_curve, per_set_miss_curve
from repro.stacksim.working_set import (
    average_working_set_bytes,
    average_working_set_pages,
    forward_reference_gaps,
    naive_average_working_set_pages,
)

__all__ = [
    "GeometryResult",
    "MissCurve",
    "average_working_set_bytes",
    "average_working_set_pages",
    "forward_reference_gaps",
    "lru_miss_curve",
    "naive_average_working_set_pages",
    "per_set_miss_curve",
    "sweep_single_page_size",
]
