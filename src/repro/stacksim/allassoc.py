"""All-associativity TLB sweeps for single page sizes (the ``tycho`` role).

The paper simulated "more than one thousand TLB configurations" per trace
by exploiting stack inclusion: one pass per set count yields miss counts
for every associativity at that set count, and the fully associative case
is the one-set special case.  This module packages those passes into a
single call that sweeps page sizes and TLB geometries, which is how the
figure/table experiments obtain all their single-page-size numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.mem.address import page_numbers_array
from repro.perf.kernels import KERNEL_AUTO
from repro.stacksim.lru_stack import MissCurve, lru_miss_curve, per_set_miss_curve
from repro.trace.record import Trace
from repro.types import is_power_of_two, validate_page_size


@dataclass(frozen=True)
class GeometryResult:
    """Miss statistics for one (page size, set count) geometry family.

    One :class:`MissCurve` covers every associativity at this geometry, so
    a single ``GeometryResult`` answers e.g. both "16-entry two-way" (8
    sets, associativity 2) and "8-way at 8 sets" queries.
    """

    page_size: int
    sets: int
    curve: MissCurve

    def misses(self, associativity: int) -> int:
        """Miss count for ``sets * associativity`` total entries."""
        return self.curve.misses(associativity)

    def miss_ratio(self, associativity: int) -> float:
        """Miss ratio for ``sets * associativity`` total entries."""
        return self.curve.miss_ratio(associativity)


def sweep_single_page_size(
    trace: Trace,
    page_sizes: Sequence[int],
    set_counts: Sequence[int],
    *,
    max_associativity: int = 16,
    kernel: str = KERNEL_AUTO,
) -> Dict[Tuple[int, int], GeometryResult]:
    """Simulate every (page size, set count) pair in one pass each.

    The set index is the low ``log2(sets)`` bits of the page number, the
    conventional choice for a single-page-size TLB.  Use ``set_counts=[1]``
    for fully associative TLBs (then "associativity" is the entry count).

    Returns:
        {(page_size, sets): GeometryResult} for every requested pair.
    """
    if not page_sizes:
        raise ConfigurationError("page_sizes must not be empty")
    if not set_counts:
        raise ConfigurationError("set_counts must not be empty")
    for sets in set_counts:
        if not is_power_of_two(sets):
            raise ConfigurationError(f"set count {sets} is not a power of two")

    results: Dict[Tuple[int, int], GeometryResult] = {}
    for page_size in page_sizes:
        validate_page_size(page_size)
        pages = page_numbers_array(trace.addresses, page_size)
        for sets in set_counts:
            if sets == 1:
                curve = lru_miss_curve(
                    pages, max_capacity=max_associativity, kernel=kernel
                )
            else:
                indices = pages & np.uint32(sets - 1)
                curve = per_set_miss_curve(
                    indices,
                    pages,
                    max_associativity=max_associativity,
                    kernel=kernel,
                )
            results[(page_size, sets)] = GeometryResult(page_size, sets, curve)
    return results
