"""Stack simulation of LRU buffers (Mattson et al., 1970).

Under LRU replacement a buffer of capacity *c* contains exactly the *c*
most recently used distinct keys, so a single pass that records each
reference's *stack distance* (its depth in the recency stack) yields miss
counts for **every** capacity at once.  This is the core idea behind the
paper's ``tycho`` all-associativity simulator, which let the authors
evaluate 84 TLB configurations per trace pass.

We bound the maintained stack at ``max_capacity`` (the largest TLB we care
about — the paper never exceeds 64 entries), which keeps the pass
O(refs * max_capacity) with a tiny constant instead of O(refs * footprint).
References that hit below the bound are classified exactly; references to
keys that fell off the bounded stack miss in every capacity up to the
bound, which is all we need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.perf.kernels import KERNEL_AUTO, KERNEL_VECTOR, resolve_kernel, stack_depths


@dataclass(frozen=True)
class MissCurve:
    """Miss counts for every buffer capacity from one simulation pass.

    Attributes:
        depth_hits: ``depth_hits[d]`` counts references that hit at stack
            depth ``d`` (hits for any capacity greater than ``d``).
        cold_misses: first-ever references to a key (miss at any capacity).
        beyond_misses: references whose stack distance exceeded the bounded
            depth (miss at any capacity up to ``max_capacity``).
        total_references: total references simulated.
    """

    depth_hits: np.ndarray
    cold_misses: int
    beyond_misses: int
    total_references: int

    @property
    def max_capacity(self) -> int:
        """Largest capacity for which exact miss counts are available."""
        return int(self.depth_hits.size)

    def hits(self, capacity: int) -> int:
        """Return the hit count for an LRU buffer of ``capacity`` entries."""
        self._check_capacity(capacity)
        return int(self.depth_hits[:capacity].sum())

    def misses(self, capacity: int) -> int:
        """Return the miss count for an LRU buffer of ``capacity`` entries."""
        return self.total_references - self.hits(capacity)

    def miss_ratio(self, capacity: int) -> float:
        """Return misses / references for ``capacity`` (0.0 for empty traces)."""
        if self.total_references == 0:
            return 0.0
        return self.misses(capacity) / self.total_references

    def _check_capacity(self, capacity: int) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        if capacity > self.max_capacity:
            raise SimulationError(
                f"capacity {capacity} exceeds the simulated bound "
                f"{self.max_capacity}; rerun with a larger max_capacity"
            )


def lru_miss_curve(
    keys: Iterable[int],
    max_capacity: int = 64,
    *,
    kernel: str = KERNEL_AUTO,
) -> MissCurve:
    """Simulate a fully associative LRU buffer over ``keys`` at all sizes.

    Args:
        keys: the reference stream (e.g. virtual page numbers).  Any
            hashable integers work; numpy arrays are accepted.
        max_capacity: deepest stack depth to classify exactly; miss counts
            are valid for capacities 1..max_capacity.
        kernel: ``"scalar"`` for the bounded-stack reference loop,
            ``"vector"`` for the numpy batch kernel
            (:mod:`repro.perf.kernels`), ``"auto"`` (default) for vector.
            Both produce identical curves.

    Returns:
        A :class:`MissCurve` valid for every capacity up to the bound.
    """
    if max_capacity <= 0:
        raise ConfigurationError(
            f"max_capacity must be positive, got {max_capacity}"
        )
    if resolve_kernel(kernel) == KERNEL_VECTOR:
        result = stack_depths(np.asarray(keys, dtype=np.int64))
        depth_hits, cold, beyond = result.depth_histogram(max_capacity)
        return MissCurve(depth_hits, cold, beyond, result.total)
    if isinstance(keys, np.ndarray):
        keys = keys.tolist()

    depth_hits = np.zeros(max_capacity, dtype=np.int64)
    stack: list = []
    seen = set()
    cold = 0
    beyond = 0
    total = 0

    for key in keys:
        total += 1
        try:
            depth = stack.index(key)
        except ValueError:
            if key in seen:
                beyond += 1
            else:
                cold += 1
                seen.add(key)
            stack.insert(0, key)
            if len(stack) > max_capacity:
                stack.pop()
        else:
            depth_hits[depth] += 1
            del stack[depth]
            stack.insert(0, key)

    return MissCurve(depth_hits, cold, beyond, total)


def per_set_miss_curve(
    set_indices: Sequence[int],
    tags: Sequence[int],
    max_associativity: int = 16,
    *,
    kernel: str = KERNEL_AUTO,
) -> MissCurve:
    """Simulate set-associative LRU at every associativity in one pass.

    With the set-index function fixed, each set behaves as an independent
    fully associative LRU buffer over the references that map to it, so a
    bounded recency stack per set classifies every reference's within-set
    stack distance; aggregating the depth histograms across sets yields
    miss counts for every associativity at this set count (the
    all-associativity idea of Hill & Smith applied per set).

    Args:
        set_indices: set index of each reference.
        tags: tag compared within the set (typically the page number).
        max_associativity: deepest within-set depth to classify exactly.
        kernel: ``"scalar"`` for the per-set bounded-stack reference
            loop, ``"vector"`` for the grouped numpy batch kernel,
            ``"auto"`` (default) for vector.  Both produce identical
            curves.

    Returns:
        A :class:`MissCurve` whose "capacity" axis is the associativity.
    """
    if max_associativity <= 0:
        raise ConfigurationError(
            f"max_associativity must be positive, got {max_associativity}"
        )
    if len(set_indices) != len(tags):
        raise SimulationError("set_indices and tags must have equal length")
    if resolve_kernel(kernel) == KERNEL_VECTOR:
        result = stack_depths(
            np.asarray(tags, dtype=np.int64),
            groups=np.asarray(set_indices, dtype=np.int64),
        )
        depth_hits, cold, beyond = result.depth_histogram(max_associativity)
        return MissCurve(depth_hits, cold, beyond, result.total)
    if isinstance(set_indices, np.ndarray):
        set_indices = set_indices.tolist()
    if isinstance(tags, np.ndarray):
        tags = tags.tolist()

    depth_hits = np.zeros(max_associativity, dtype=np.int64)
    stacks: dict = {}
    seen = set()
    cold = 0
    beyond = 0
    total = 0

    for index, tag in zip(set_indices, tags):
        total += 1
        stack = stacks.get(index)
        if stack is None:
            stack = []
            stacks[index] = stack
        try:
            depth = stack.index(tag)
        except ValueError:
            key = (index, tag)
            if key in seen:
                beyond += 1
            else:
                cold += 1
                seen.add(key)
            stack.insert(0, tag)
            if len(stack) > max_associativity:
                stack.pop()
        else:
            depth_hits[depth] += 1
            del stack[depth]
            stack.insert(0, tag)

    return MissCurve(depth_hits, cold, beyond, total)
