"""Average working-set size calculation (Denning; Slutz & Traiger).

The working set W(t, T) is the set of distinct pages referenced in the
last *T* references; the paper reports the *average* working-set size
s(T) over the whole trace (Section 3.2), measured in bytes.

Slutz & Traiger (CACM 1974) observed that s(T) needs no per-window
scanning: a page referenced at position *i* whose next reference to the
same page is at position *n(i)* is a member of exactly ``min(n(i)-i, T)``
windows (truncated at trace end for final references), so

    s(T) = (1/k) * sum_i min(gap_i, T),     gap_i = n(i) - i  (or k - i).

One pass computes the gap array; evaluating s(T) for any number of window
sizes T is then a vectorised minimum-and-sum.  This is the "very few
counters" variant the paper describes using for T up to 100 million.

A direct sliding-window implementation is also provided; the property
tests assert the two agree exactly.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.mem.address import page_numbers_array
from repro.trace.record import Trace


def forward_reference_gaps(pages: np.ndarray) -> np.ndarray:
    """Return, for each reference, the distance to the next use of its page.

    For the final reference to each page the gap runs to the end of the
    trace (``k - i``), matching the truncated-window membership count.
    """
    pages = np.asarray(pages)
    count = pages.size
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(pages, kind="stable")
    ordered = pages[order]
    positions = order.astype(np.int64)
    next_position = np.full(count, count, dtype=np.int64)
    same_page = ordered[1:] == ordered[:-1]
    next_position[positions[:-1][same_page]] = positions[1:][same_page]
    return next_position - np.arange(count, dtype=np.int64)


def average_working_set_pages(
    pages: np.ndarray, windows: Sequence[int]
) -> Dict[int, float]:
    """Return {T: average working-set size in pages} for each window T."""
    for window in windows:
        if window <= 0:
            raise ConfigurationError(f"window must be positive, got {window}")
    gaps = forward_reference_gaps(pages)
    count = gaps.size
    if count == 0:
        return {int(window): 0.0 for window in windows}
    return {
        int(window): float(np.minimum(gaps, window).sum()) / count
        for window in windows
    }


def average_working_set_bytes(
    trace: Trace, page_size: int, windows: Sequence[int]
) -> Dict[int, float]:
    """Return {T: average working-set size in bytes} at ``page_size``."""
    pages = page_numbers_array(trace.addresses, page_size)
    per_pages = average_working_set_pages(pages, windows)
    return {window: size * page_size for window, size in per_pages.items()}


def naive_average_working_set_pages(pages: Sequence[int], window: int) -> float:
    """Direct sliding-window working-set average, for validation.

    Maintains per-page counts over the last ``window`` references and a
    running distinct-page total; O(refs) time but with a far larger
    constant than the gap method, so only tests use it.
    """
    if window <= 0:
        raise ConfigurationError(f"window must be positive, got {window}")
    if isinstance(pages, np.ndarray):
        pages = pages.tolist()
    counts: Dict[int, int] = {}
    total = 0.0
    for position, page in enumerate(pages):
        if position >= window:
            expiring = pages[position - window]
            remaining = counts[expiring] - 1
            if remaining == 0:
                del counts[expiring]
            else:
                counts[expiring] = remaining
        counts[page] = counts.get(page, 0) + 1
        total += len(counts)
    return total / len(pages) if pages else 0.0
