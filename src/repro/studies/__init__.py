"""Declarative studies: a study is data, the engine compiles it.

* :mod:`repro.studies.spec` — the :class:`Study`/:class:`Factor` schema
  and TOML/JSON loading.
* :mod:`repro.studies.units` — unit kinds: how one lattice point maps
  to one simulation.
* :mod:`repro.studies.engine` — the compiler (lattice → run IDs →
  cache dedupe → parallel schedule) and result aggregation.
* :mod:`repro.studies.registry` — registered declarations, including
  the migrated ablations.
* :mod:`repro.studies.cli` — the ``repro-study`` entry point.
"""

from repro.studies.engine import (
    FactorEffect,
    StudyPlan,
    StudyResult,
    StudyUnit,
    UnitResult,
    compile_study,
    run_study,
)
from repro.studies.registry import STUDIES, get_study, study_names
from repro.studies.spec import Factor, Study, load_study, study_from_mapping
from repro.studies.units import UNIT_KINDS, UnitKind, get_kind

__all__ = [
    "Factor",
    "FactorEffect",
    "STUDIES",
    "Study",
    "StudyPlan",
    "StudyResult",
    "StudyUnit",
    "UNIT_KINDS",
    "UnitKind",
    "UnitResult",
    "compile_study",
    "get_kind",
    "get_study",
    "load_study",
    "run_study",
    "study_from_mapping",
    "study_names",
]
