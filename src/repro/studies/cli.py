"""The ``repro-study`` command-line entry point.

Run a declarative study by registered name or from a TOML/JSON
declaration file::

    repro-study threshold
    repro-study examples/studies/geometry.toml --jobs 4 --json report.json
    repro-study --list

The study compiles into content-addressed simulation units, dedupes
against the result cache before anything is dispatched, and schedules
the remainder through the parallel engine (``--jobs``), with
``--journal``/``--resume`` checkpointing inherited from the robustness
layer.  ``--expect-cached`` turns the dedupe guarantee into an
assertion: the run exits non-zero if any simulation was dispatched —
CI's ``study-smoke`` step runs a study twice and holds the second run
to zero.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.errors import ReproError
from repro.experiments.scale import ExperimentScale, default_scale
from repro.robustness.journal import RunJournal
from repro.robustness.retry import RetryPolicy
from repro.studies.engine import run_study
from repro.studies.registry import get_study, study_names
from repro.studies.spec import Study, load_study
from repro.workloads.registry import GENERATOR_VERSION


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-study",
        description=(
            "Compile and run a declarative study: expand its factor "
            "lattice, dedupe against the result cache, schedule the "
            "rest through the parallel engine."
        ),
    )
    parser.add_argument(
        "study",
        nargs="?",
        default=None,
        help=(
            "registered study name or path to a .toml/.json "
            "declaration; known names: " + ", ".join(study_names())
        ),
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the registered studies and exit",
    )
    parser.add_argument(
        "--trace-length",
        type=int,
        default=None,
        help="references per workload trace (default 400000)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=None,
        help="working-set window T in references (default 50000)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="regenerate traces instead of using the on-disk cache",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run units across N worker processes (0 = one per CPU; "
            "default serial, or the REPRO_JOBS environment variable)"
        ),
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="checkpoint each completed unit to this JSONL journal",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="replay units already recorded as complete in the journal",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retries per unit after the first failure (default 1)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        dest="json_path",
        help="also write the machine-readable report to this file",
    )
    parser.add_argument(
        "--expect-cached",
        action="store_true",
        help=(
            "fail (exit 3) if any simulation was dispatched — every "
            "unit must resolve from the result cache or the journal"
        ),
    )
    return parser


def _resolve_study(name_or_path: str) -> Study:
    path = Path(name_or_path)
    if path.suffix.lower() in (".toml", ".json") or path.exists():
        return load_study(path)
    return get_study(name_or_path)


def _journal(path: Optional[str], scale: ExperimentScale,
             study: Study) -> Optional[RunJournal]:
    if path is None:
        return None
    journal = RunJournal(
        path,
        fingerprint={
            "study": study.name,
            "trace_length": scale.trace_length,
            "window": scale.window,
            "seed": scale.seed,
            "generator_version": GENERATOR_VERSION,
        },
    )
    if journal.dropped_torn_line:
        print(
            "repro-study: journal had a torn final line (crash "
            "mid-write?); its unit will re-run",
            file=sys.stderr,
        )
    return journal


def _run(args: argparse.Namespace) -> int:
    if args.list:
        for name in study_names():
            print(name)
        return 0
    if args.study is None:
        print(
            "repro-study: name a registered study or a declaration "
            "file (or use --list)",
            file=sys.stderr,
        )
        return 2
    study = _resolve_study(args.study)
    base = default_scale()
    scale = ExperimentScale(
        trace_length=args.trace_length or base.trace_length,
        window=args.window or base.window,
        use_cache=not args.no_cache,
        jobs=args.jobs if args.jobs is not None else base.jobs,
    )
    result = run_study(
        study,
        scale=scale,
        journal=_journal(args.journal, scale, study),
        resume=args.resume,
        retry_policy=RetryPolicy(max_attempts=max(1, args.retries + 1)),
        strict=False,
    )
    print(result.render())
    if args.json_path:
        path = Path(args.json_path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result.to_json(), indent=2) + "\n")
    if result.counters.get("failed"):
        return 1
    if args.expect_cached and result.counters.get("simulated"):
        print(
            f"repro-study: expected a fully cached run but "
            f"{result.counters['simulated']} unit(s) were simulated",
            file=sys.stderr,
        )
        return 3
    return 0


def main(argv=None) -> int:
    """Entry point for the ``repro-study`` console script."""
    args = build_parser().parse_args(argv)
    try:
        return _run(args)
    except ReproError as error:
        print(f"repro-study: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
