"""The study compiler and runtime.

:func:`compile_study` expands a :class:`~repro.studies.spec.Study`'s
factor lattice (workloads × every factor-level combination) into
:class:`StudyUnit`\\ s, each with a **stable content-derived run ID**:
the SHA-256 of (cache-key version, unit kind, trace fingerprint,
consumed parameters).  The ID is independent of the study's name, its
factor ordering, and any parameter the unit kind does not consume — two
studies asking the same question share results.

:func:`run_study` then:

1. **dedupes** — identical units inside the lattice collapse to one
   run, and units whose run ID is already in the
   :class:`~repro.parallel.cache.SimulationCache` (under the
   ``"study"`` kind) are resolved without dispatching anything;
2. **schedules** the remainder through
   :func:`repro.robustness.executor.run_units` — and therefore, with
   ``jobs > 1``, through the supervised parallel engine with journaled
   checkpoints, worker supervision and batched dispatch inherited
   unchanged;
3. **aggregates** the per-unit metric payloads into a
   :class:`StudyResult` with per-factor importance rankings: for every
   factor, the main-effect delta — the spread between the best and
   worst level mean of the primary metric — ranked largest first.
"""

from __future__ import annotations

import itertools
import statistics
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import StudyError
from repro.experiments.scale import ExperimentScale, default_scale
from repro.parallel.cache import (
    CACHE_KEY_VERSION,
    SimulationCache,
    canonical_key,
)
from repro.parallel.supervisor import SupervisorConfig
from repro.report.table import TextTable
from repro.robustness.executor import UnitSpec, run_units
from repro.robustness.journal import RunJournal
from repro.robustness.retry import RetryPolicy
from repro.studies.spec import Study
from repro.studies.units import UnitKind, get_kind
from repro.trace.record import Trace

#: ``source`` values a resolved unit can carry.
SOURCE_RUN = "run"
SOURCE_CACHE = "cache"
SOURCE_JOURNAL = "journal"
SOURCE_DEDUP = "dedup"

_UNSET = object()


@dataclass(frozen=True)
class StudyUnit:
    """One compiled lattice point: parameters, identity, schedule info.

    ``point`` is the declarative coordinate (workload + factor levels);
    ``params`` the resolved parameters its kind consumes; ``run_id``
    the content-derived identity; ``label`` the stable human-readable
    name used for journal records and the parallel engine.
    """

    index: int
    workload: str
    kind: str
    point: Mapping[str, Any]
    params: Mapping[str, Any]
    run_id: str
    label: str


@dataclass(frozen=True)
class StudyPlan:
    """A compiled study: every unit, plus the traces they run over."""

    study: Study
    scale: ExperimentScale
    units: Tuple[StudyUnit, ...]
    traces: Mapping[str, Trace]

    @property
    def unique_units(self) -> List[StudyUnit]:
        """First occurrence of every distinct run ID, in lattice order."""
        seen: Dict[str, StudyUnit] = {}
        for unit in self.units:
            seen.setdefault(unit.run_id, unit)
        return list(seen.values())


@dataclass(frozen=True)
class UnitResult:
    """One lattice point's resolved metrics and their provenance."""

    unit: StudyUnit
    metrics: Mapping[str, Any]
    source: str


@dataclass(frozen=True)
class FactorEffect:
    """One factor's main effect on a metric.

    ``level_means`` maps each level to the metric's mean over all units
    at that level; ``delta`` is max(mean) - min(mean) — how much of the
    response this factor alone moves.
    """

    factor: str
    metric: str
    level_means: Mapping[Any, float]
    delta: float


@dataclass
class StudyResult:
    """Everything a study run produced, queryable by lattice point."""

    study: Study
    scale: ExperimentScale
    units: List[UnitResult] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    failures: List[Tuple[str, str]] = field(default_factory=list)

    def value(self, metric: str, **point: Any) -> Any:
        """The metric at the lattice point matching ``point`` exactly.

        ``point`` may name any subset of the study's dimensions; it must
        match exactly one distinct unit (duplicates of the same run ID
        count once).
        """
        matches = [
            result
            for result in self.units
            if all(result.unit.point.get(k) == v for k, v in point.items())
        ]
        ids = {m.unit.run_id for m in matches}
        if not matches:
            raise StudyError(f"no unit matches {point!r}")
        if len(ids) > 1:
            raise StudyError(f"{point!r} is ambiguous: {len(ids)} units match")
        return matches[0].metrics.get(metric)

    def table(self, metric: str, factor: str, **fixed: Any) -> Dict[str, Dict[Any, Any]]:
        """``{workload: {level: value}}`` over one factor.

        Rows follow the study's workload order, columns the factor's
        declared level order; ``fixed`` pins any remaining dimensions.
        """
        levels = self.study.factor(factor).levels
        return {
            workload: {
                level: self.value(
                    metric, workload=workload, **{factor: level}, **fixed
                )
                for level in levels
            }
            for workload in self.study.workloads
        }

    def series(self, metric: str, **fixed: Any) -> Dict[str, Any]:
        """``{workload: value}`` with every other dimension pinned."""
        return {
            workload: self.value(metric, workload=workload, **fixed)
            for workload in self.study.workloads
        }

    def importance(self, metric: Optional[str] = None) -> List[FactorEffect]:
        """Per-factor main-effect deltas, largest first.

        The workload axis participates as a factor, so the ranking
        answers "what moved the needle: the program or the knob?".
        """
        metric = metric or self.study.metrics[0]
        effects = []
        for name in self.study.factor_names:
            groups: Dict[Any, List[float]] = {}
            for result in self.units:
                value = result.metrics.get(metric)
                if value is None or name not in result.unit.point:
                    continue
                groups.setdefault(result.unit.point[name], []).append(
                    float(value)
                )
            if len(groups) < 2:
                continue
            means = {
                level: statistics.fmean(values)
                for level, values in groups.items()
            }
            effects.append(
                FactorEffect(
                    factor=name,
                    metric=metric,
                    level_means=means,
                    delta=max(means.values()) - min(means.values()),
                )
            )
        effects.sort(key=lambda effect: effect.delta, reverse=True)
        return effects

    def render(self) -> str:
        """Generic report: unit table, dedupe counters, factor ranking."""
        dimensions = list(self.study.factor_names)
        metrics = list(self.study.metrics)
        table = TextTable(
            dimensions + metrics,
            title=self.study.title or f"Study: {self.study.name}",
            float_format="{:.4f}",
        )
        for result in self.units:
            table.add_row(
                *[_level_text(result.unit.point.get(d)) for d in dimensions],
                *[result.metrics.get(m) for m in metrics],
            )
        lines = [table.render(), ""]
        c = self.counters
        lines.append(
            f"units: {c.get('planned', 0)} planned, "
            f"{c.get('unique', 0)} unique, "
            f"{c.get('from_cache', 0)} from cache, "
            f"{c.get('resumed', 0)} resumed, "
            f"{c.get('simulated', 0)} simulated"
            + (f", {c.get('failed', 0)} FAILED" if c.get("failed") else "")
        )
        effects = self.importance()
        if effects:
            ranking = TextTable(
                ["factor", f"Δ{effects[0].metric}", "worst level", "best level"],
                title="factor importance (main-effect delta, largest first)",
                float_format="{:.4f}",
            )
            for effect in effects:
                worst = max(effect.level_means, key=effect.level_means.get)
                best = min(effect.level_means, key=effect.level_means.get)
                ranking.add_row(
                    effect.factor,
                    effect.delta,
                    _level_text(worst),
                    _level_text(best),
                )
            lines += ["", ranking.render()]
        for label, error in self.failures:
            lines.append(f"FAILED {label}: {error}")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        """Machine-readable form (the ``repro-study --json`` artifact)."""
        return {
            "schema": "repro-study/1",
            "study": self.study.name,
            "scale": {
                "trace_length": self.scale.trace_length,
                "window": self.scale.window,
                "seed": self.scale.seed,
            },
            "counters": dict(self.counters),
            "units": [
                {
                    "point": dict(result.unit.point),
                    "run_id": result.unit.run_id,
                    "source": result.source,
                    "metrics": dict(result.metrics),
                }
                for result in self.units
            ],
            "importance": [
                {
                    "factor": effect.factor,
                    "metric": effect.metric,
                    "delta": effect.delta,
                }
                for effect in self.importance()
            ],
            "failures": [
                {"unit": label, "error": error}
                for label, error in self.failures
            ],
        }


def _level_text(value: Any) -> Optional[str]:
    if value is None:
        return None
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _point_label(unit_kind: str, workload: str, point: Mapping[str, Any],
                 run_id: str) -> str:
    knobs = ",".join(
        f"{key}={_level_text(value)}"
        for key, value in point.items()
        if key not in ("workload", "kind")
    )
    return f"study:{unit_kind}:{workload}" + (
        f":{knobs}" if knobs else ""
    ) + f"#{run_id[:12]}"


def compile_study(
    study: Study, scale: Optional[ExperimentScale] = None
) -> StudyPlan:
    """Expand ``study``'s factor lattice into schedulable units.

    Validates the declaration against the unit-kind schemas: workload
    names must exist in the registry, every metric must be produced by
    at least one kind in the lattice, and every factor and fixed
    parameter must be consumed by at least one kind (catching typos in
    TOML declarations before anything runs).
    """
    from repro.workloads.registry import workload_names

    if scale is None:
        scale = default_scale()
    known_workloads = set(workload_names())
    unknown = [w for w in study.workloads if w not in known_workloads]
    if unknown:
        raise StudyError(
            f"study {study.name!r} names unknown workload(s): "
            f"{', '.join(unknown)}"
        )

    kind_factor = next(
        (f for f in study.factors if f.name == "kind"), None
    )
    kind_names = (
        tuple(kind_factor.levels) if kind_factor is not None else (study.kind,)
    )
    kinds: Dict[str, UnitKind] = {name: get_kind(name) for name in kind_names}

    # Every requested metric must come from somewhere in the lattice.
    available = set().union(*(k.metrics for k in kinds.values()))
    missing = set(study.metrics) - available
    if missing:
        raise StudyError(
            f"no unit kind in study {study.name!r} produces metric(s) "
            f"{', '.join(sorted(missing))}"
        )
    if len(kinds) == 1:
        next(iter(kinds.values())).check_metrics(study.metrics)

    # Every declared name must be consumed by at least one kind.
    consumable = set().union(*(k.params.keys() for k in kinds.values()))
    for factor in study.factors:
        if factor.name != "kind" and factor.name not in consumable:
            raise StudyError(
                f"factor {factor.name!r} is not a parameter of any unit "
                f"kind in study {study.name!r}"
            )
    for key in study.fixed:
        if key == "kind":
            raise StudyError("set the unit kind via study.kind, not fixed")
        if key not in consumable:
            raise StudyError(
                f"fixed parameter {key!r} is not consumed by any unit "
                f"kind in study {study.name!r}"
            )

    traces = {name: scale.trace(name) for name in study.workloads}
    units: List[StudyUnit] = []
    level_axes = [factor.levels for factor in study.factors]
    for workload in study.workloads:
        trace = traces[workload]
        for combo in itertools.product(*level_axes):
            point: Dict[str, Any] = {"workload": workload}
            point.update(zip((f.name for f in study.factors), combo))
            kind = kinds[point.get("kind", study.kind)]
            merged = {**study.fixed, **point}
            params = kind.resolve_params(merged, window=scale.window)
            run_id = canonical_key(
                {
                    "version": CACHE_KEY_VERSION,
                    "kind": "study",
                    "unit_kind": kind.name,
                    "trace": trace.fingerprint,
                    "params": params,
                }
            )
            units.append(
                StudyUnit(
                    index=len(units),
                    workload=workload,
                    kind=kind.name,
                    point=point,
                    params=params,
                    run_id=run_id,
                    label=_point_label(kind.name, workload, point, run_id),
                )
            )
    return StudyPlan(study=study, scale=scale, units=tuple(units),
                     traces=traces)


def _required_metrics(study: Study, kind: UnitKind) -> List[str]:
    """The study metrics this kind is expected to provide."""
    return [m for m in study.metrics if m in kind.metrics]


def run_study(
    study: Study,
    *,
    scale: Optional[ExperimentScale] = None,
    jobs: Optional[int] = _UNSET,
    cache: Optional[SimulationCache] = _UNSET,
    journal: Optional[RunJournal] = None,
    resume: bool = False,
    retry_policy: RetryPolicy = RetryPolicy(),
    supervision: Optional[SupervisorConfig] = None,
    strict: bool = True,
) -> StudyResult:
    """Compile ``study`` and execute every unit not already answered.

    Dedupe happens in two layers before any simulation: lattice points
    with identical run IDs collapse, and the
    :class:`~repro.parallel.cache.SimulationCache` (``scale.sim_cache()``
    unless ``cache`` is given) is probed per run ID so a repeated run
    dispatches **zero** simulations.  The remainder is scheduled through
    :func:`~repro.robustness.executor.run_units`; with ``jobs > 1``
    that is the supervised parallel engine, and with a ``journal`` each
    completed unit is checkpointed (``resume=True`` replays completed
    units from it).

    ``strict=True`` (default) raises :class:`~repro.errors.StudyError`
    if any unit ultimately fails; ``strict=False`` returns the partial
    :class:`StudyResult` with the failures listed.
    """
    if scale is None:
        scale = default_scale()
    if jobs is _UNSET:
        jobs = scale.jobs
    if cache is _UNSET:
        cache = scale.sim_cache()

    plan = compile_study(study, scale)
    unique = plan.unique_units
    resolved: Dict[str, UnitResult] = {}
    counters = {
        "planned": len(plan.units),
        "unique": len(unique),
        "from_cache": 0,
        "resumed": 0,
        "simulated": 0,
        "failed": 0,
    }

    pending: List[StudyUnit] = []
    for unit in unique:
        kind = get_kind(unit.kind)
        required = _required_metrics(study, kind)
        payload = cache.get(unit.run_id) if cache is not None else None
        if payload is not None and all(m in payload for m in required):
            resolved[unit.run_id] = UnitResult(unit, payload, SOURCE_CACHE)
            counters["from_cache"] += 1
        else:
            pending.append(unit)

    failures: List[Tuple[str, str]] = []
    if pending:
        wanted = tuple(study.metrics)

        def make_spec(unit: StudyUnit) -> UnitSpec:
            kind = get_kind(unit.kind)
            trace = plan.traces[unit.workload]

            def run(
                _kind=kind, _trace=trace, _unit=unit
            ) -> Dict[str, Any]:
                payload = _kind.run(_trace, _unit.params, cache, wanted)
                if cache is not None:
                    cache.put(_unit.run_id, payload)
                return payload

            return UnitSpec(
                name=unit.label,
                run=run,
                affinity=unit.workload,
                cost=float(len(trace)),
            )

        by_label = {unit.label: unit for unit in pending}
        report = run_units(
            [make_spec(unit) for unit in pending],
            journal=journal,
            resume=resume,
            retry_policy=retry_policy,
            journal_payload=lambda spec, result: result,
            jobs=jobs,
            supervision=supervision,
        )
        for outcome in report.outcomes:
            unit = by_label[outcome.name]
            if outcome.status == "ok":
                resolved[unit.run_id] = UnitResult(
                    unit, outcome.result, SOURCE_RUN
                )
                counters["simulated"] += 1
            elif outcome.status == "skipped":
                record = journal.get(unit.label) if journal else None
                payload = record.payload if record else None
                if payload is None:
                    failures.append(
                        (unit.label,
                         "journal record carries no payload; delete the "
                         "journal or rerun without --resume")
                    )
                    continue
                resolved[unit.run_id] = UnitResult(
                    unit, payload, SOURCE_JOURNAL
                )
                counters["resumed"] += 1
                # A journal-replayed unit still back-fills the shared
                # cache so later runs resolve without the journal.
                if cache is not None and cache.get(unit.run_id) is None:
                    cache.put(unit.run_id, dict(payload))
            else:
                failures.append((unit.label, outcome.error or "failed"))

    counters["failed"] = len(failures)
    if failures and strict:
        detail = "; ".join(f"{label}: {error}" for label, error in failures)
        raise StudyError(
            f"study {study.name!r}: {len(failures)} unit(s) failed: {detail}"
        )

    results = []
    seen_ids: set = set()
    for unit in plan.units:
        base = resolved.get(unit.run_id)
        if base is None:
            continue  # failed (non-strict): leave the point out
        source = base.source if unit.run_id not in seen_ids else SOURCE_DEDUP
        seen_ids.add(unit.run_id)
        results.append(UnitResult(unit, base.metrics, source))
    return StudyResult(
        study=study,
        scale=scale,
        units=results,
        counters=counters,
        failures=failures,
    )


__all__ = [
    "FactorEffect",
    "SOURCE_CACHE",
    "SOURCE_DEDUP",
    "SOURCE_JOURNAL",
    "SOURCE_RUN",
    "StudyPlan",
    "StudyResult",
    "StudyUnit",
    "UnitResult",
    "compile_study",
    "run_study",
]
