"""Registered study declarations.

Each builder returns a :class:`~repro.studies.spec.Study` — pure data,
~10 lines, no loops.  The hand-written grid loops these replace lived in
:mod:`repro.experiments.ablations`; the legacy ``run_*_ablation``
entry points still exist and now compile these declarations through
:func:`repro.studies.engine.run_study`, rendering byte-identical tables
(the equivalence tests in ``tests/test_studies.py`` hold them to that).

``repro-study <name>`` runs any builder registered here; builders that
take arguments use their defaults in that path.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.errors import StudyError
from repro.studies.spec import Factor, Study

#: Workloads used by the migrated ablations: a strong improver, a
#: degrader and a mixed case (kept in lockstep with
#: :data:`repro.experiments.ablations.ABLATION_WORKLOADS`).
ABLATION_WORKLOADS = ("matrix300", "espresso", "doduc")


def threshold_study(
    fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
) -> Study:
    """Promotion-threshold sweep: CPI and WS inflation per fraction."""
    return Study(
        name="threshold",
        title="Ablation: promotion threshold (16e FA, 4KB/32KB)",
        kind="two_size",
        workloads=ABLATION_WORKLOADS,
        metrics=("cpi_tlb", "ws_normalized"),
        factors=(Factor("promote_fraction", tuple(fractions)),),
        fixed={"entries": 16},
    )


def penalty_study() -> Study:
    """Single-4KB baseline vs two sizes at penalty factor 1.0.

    The penalty sweep itself is a post-hoc scalar on the two-size arm
    (one simulation serves every factor), so the lattice only compares
    the two unit kinds; the multipliers are applied at render time.
    """
    return Study(
        name="penalty",
        title="Ablation: miss-penalty factor (16e FA, 4KB/32KB CPI)",
        workloads=ABLATION_WORKLOADS,
        metrics=("cpi_tlb",),
        factors=(Factor("kind", ("single", "two_size")),),
        fixed={"entries": 16, "penalty_factor": 1.0},
    )


def probe_study() -> Study:
    """Sequential exact-index probing: reprobe counts per workload."""
    return Study(
        name="probe",
        title="Ablation: sequential exact-index probing (16e 2-way, 4KB/32KB)",
        kind="two_size",
        workloads=ABLATION_WORKLOADS,
        metrics=("misses", "reprobes", "references"),
        fixed={"entries": 16, "associativity": 2, "probe": "sequential"},
    )


def replacement_study(
    policies: Sequence[str] = ("lru", "fifo", "random", "plru"),
) -> Study:
    """Replacement-policy sweep on the single-4KB 16-entry FA TLB."""
    return Study(
        name="replacement",
        title="Ablation: replacement policy (16e FA, 4KB pages, CPI)",
        kind="single",
        workloads=ABLATION_WORKLOADS,
        metrics=("cpi_tlb",),
        factors=(Factor("replacement", tuple(policies)),),
        fixed={"entries": 16},
    )


def split_study() -> Study:
    """Unified 16-entry two-size TLB vs a split 12+4 pair."""
    return Study(
        name="split",
        title="Ablation: split TLB (4KB/32KB, fully associative halves)",
        workloads=ABLATION_WORKLOADS,
        metrics=("cpi_tlb", "large_occupancy"),
        factors=(Factor("kind", ("two_size", "split")),),
        fixed={"entries": 16, "small_entries": 12, "large_entries": 4},
    )


def twolevel_study(
    l1_entries: int = 4, l2_entries: int = 32, l2_hit_cycles: float = 4.0
) -> Study:
    """Flat 16-entry two-size TLB vs a micro-TLB + L2 hierarchy."""
    return Study(
        name="twolevel",
        title="Ablation: two-level TLB (4KB/32KB; L2 hit costs 4 cycles)",
        workloads=ABLATION_WORKLOADS,
        metrics=("cpi_tlb", "l2_catch_rate"),
        factors=(Factor("kind", ("two_size", "twolevel")),),
        fixed={"entries": 16, "l1_entries": l1_entries,
               "l2_entries": l2_entries, "l2_hit_cycles": l2_hit_cycles},
    )


#: Builders runnable by name through ``repro-study <name>``.
STUDIES: Dict[str, Callable[[], Study]] = {
    "threshold": threshold_study,
    "penalty": penalty_study,
    "probe": probe_study,
    "replacement": replacement_study,
    "split": split_study,
    "twolevel": twolevel_study,
}


def study_names() -> List[str]:
    """Registered study names, alphabetical."""
    return sorted(STUDIES)


def get_study(name: str) -> Study:
    """The registered study called ``name``, built with defaults."""
    try:
        builder = STUDIES[name]
    except KeyError:
        raise StudyError(
            f"unknown study {name!r}; registered: {', '.join(study_names())}"
        ) from None
    return builder()


__all__ = [
    "ABLATION_WORKLOADS",
    "STUDIES",
    "get_study",
    "penalty_study",
    "probe_study",
    "replacement_study",
    "split_study",
    "study_names",
    "threshold_study",
    "twolevel_study",
]
