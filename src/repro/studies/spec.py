"""Declarative study specifications: a study is data.

A :class:`Study` names *what* to measure — workloads, a lattice of
factors and levels, the metrics to collect — and nothing about *how*:
the compiler (:mod:`repro.studies.engine`) expands the lattice into
simulation units with stable content-derived run IDs, dedupes them
against the result cache, and schedules the remainder through the
parallel engine.

Studies can be written in Python (the migrated ablations in
:mod:`repro.studies.registry`) or loaded from a TOML/JSON file::

    name = "geometry"
    kind = "single"
    workloads = ["matrix300", "espresso"]
    metrics = ["cpi_tlb", "miss_ratio"]

    [fixed]
    page_size = 4096

    [[factors]]
    name = "entries"
    levels = [8, 16, 32]

Factor names must map onto parameters of the study's unit kind (see
:data:`repro.studies.units.UNIT_KINDS`); ``kind`` itself may be a
factor, letting one study compare different simulation shapes (e.g. a
flat TLB against a two-level hierarchy) in the same lattice.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping, Sequence, Tuple, Union

from repro.errors import StudyError

#: Reserved lattice dimensions that are not unit-kind parameters.
RESERVED_FACTORS = ("workload", "kind")


@dataclass(frozen=True)
class Factor:
    """One swept dimension of a study: a name and its levels."""

    name: str
    levels: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise StudyError("a factor needs a non-empty string name")
        object.__setattr__(self, "levels", tuple(self.levels))
        if not self.levels:
            raise StudyError(f"factor {self.name!r} has no levels")
        if len(set(map(repr, self.levels))) != len(self.levels):
            raise StudyError(f"factor {self.name!r} repeats a level")


@dataclass(frozen=True)
class Study:
    """A declarative study: factors, levels, metrics, workloads.

    Attributes:
        name: study identifier (journal keys, CLI lookup, reports).
        workloads: workload names; always the outermost lattice axis.
        metrics: metric names to collect, first is the primary one used
            for factor-importance ranking.  Each unit kind documents the
            metrics it can produce (:mod:`repro.studies.units`).
        factors: swept dimensions, expanded in declaration order.
        kind: default unit kind when ``"kind"`` is not itself a factor.
        fixed: parameters held constant across the lattice.
        title: optional human-readable heading for rendered reports.
    """

    name: str
    workloads: Tuple[str, ...]
    metrics: Tuple[str, ...]
    factors: Tuple[Factor, ...] = ()
    kind: str = ""
    fixed: Mapping[str, Any] = field(default_factory=dict)
    title: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise StudyError("a study needs a name")
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "metrics", tuple(self.metrics))
        object.__setattr__(self, "factors", tuple(self.factors))
        object.__setattr__(self, "fixed", dict(self.fixed))
        if not self.workloads:
            raise StudyError(f"study {self.name!r} names no workloads")
        if not self.metrics:
            raise StudyError(f"study {self.name!r} names no metrics")
        names = [factor.name for factor in self.factors]
        if len(set(names)) != len(names):
            raise StudyError(f"study {self.name!r} repeats a factor name")
        if "workload" in names:
            raise StudyError(
                "'workload' is implicit; list workloads in study.workloads"
            )
        if not self.kind and "kind" not in names:
            raise StudyError(
                f"study {self.name!r} needs a unit kind: set study.kind "
                "or sweep 'kind' as a factor"
            )
        for key in self.fixed:
            if key in names:
                raise StudyError(
                    f"{key!r} is both fixed and a factor of {self.name!r}"
                )

    @property
    def factor_names(self) -> Tuple[str, ...]:
        """Swept dimension names, ``workload`` first (the outer axis)."""
        return ("workload",) + tuple(f.name for f in self.factors)

    def factor(self, name: str) -> Factor:
        """The declared factor called ``name``."""
        for candidate in self.factors:
            if candidate.name == name:
                return candidate
        raise StudyError(f"study {self.name!r} has no factor {name!r}")

    def with_overrides(self, **levels: Sequence[Any]) -> "Study":
        """A copy with the named factors' levels replaced."""
        unknown = set(levels) - {f.name for f in self.factors}
        if unknown:
            raise StudyError(
                f"study {self.name!r} has no factor "
                f"{', '.join(sorted(unknown))}"
            )
        return replace(
            self,
            factors=tuple(
                Factor(f.name, tuple(levels[f.name]))
                if f.name in levels
                else f
                for f in self.factors
            ),
        )


def study_from_mapping(document: Mapping[str, Any]) -> Study:
    """Build a :class:`Study` from a parsed TOML/JSON document."""
    if not isinstance(document, Mapping):
        raise StudyError("a study declaration must be a table/object")
    known = {
        "name", "title", "kind", "workloads", "metrics", "factors", "fixed",
    }
    unknown = set(document) - known
    if unknown:
        raise StudyError(
            f"unknown study field(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    raw_factors = document.get("factors", [])
    if not isinstance(raw_factors, Sequence) or isinstance(raw_factors, str):
        raise StudyError("'factors' must be an array of {name, levels} tables")
    factors = []
    for entry in raw_factors:
        if not isinstance(entry, Mapping) or set(entry) - {"name", "levels"}:
            raise StudyError(
                "each factor needs exactly the fields 'name' and 'levels'"
            )
        factors.append(Factor(entry.get("name", ""), entry.get("levels", ())))
    try:
        return Study(
            name=document.get("name", ""),
            title=document.get("title", ""),
            kind=document.get("kind", ""),
            workloads=document.get("workloads", ()),
            metrics=document.get("metrics", ()),
            factors=tuple(factors),
            fixed=document.get("fixed", {}),
        )
    except (TypeError, ValueError) as error:
        raise StudyError(f"malformed study declaration: {error}") from error


def load_study(path: Union[str, Path]) -> Study:
    """Load a study declaration from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as error:
        raise StudyError(f"cannot read study file {path}: {error}") from error
    if path.suffix.lower() == ".json":
        try:
            document = json.loads(raw)
        except ValueError as error:
            raise StudyError(f"{path} is not valid JSON: {error}") from error
    elif path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError as error:  # Python < 3.11: declare in JSON.
            raise StudyError(
                f"reading {path} needs the tomllib module (Python >= 3.11); "
                "use a .json declaration instead"
            ) from error
        try:
            document = tomllib.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, tomllib.TOMLDecodeError) as error:
            raise StudyError(f"{path} is not valid TOML: {error}") from error
    else:
        raise StudyError(
            f"unsupported study file suffix {path.suffix!r}; "
            "use .toml or .json"
        )
    return study_from_mapping(document)


__all__ = [
    "Factor",
    "RESERVED_FACTORS",
    "Study",
    "load_study",
    "study_from_mapping",
]
