"""Unit kinds: how one lattice point becomes one simulation.

A :class:`UnitKind` is the bridge between a study's declarative
parameters and the simulation drivers in :mod:`repro.sim.driver`.  Each
kind declares:

* its **parameter schema** — which merged (fixed + factor) values it
  consumes, with defaults; the consumed parameters are exactly what the
  unit's content-derived run ID covers, so two studies asking the same
  question share cache entries even if their declarations differ in
  irrelevant ways;
* its **metrics** — the names its runner can produce.  Expensive
  metrics (currently ``ws_normalized``) are computed only when the
  study requests them;
* its **runner** — a pure function from (trace, parameters) to a JSON
  payload ``{metric: value}``, threading the shared
  :class:`~repro.parallel.cache.SimulationCache` into the drivers so
  the study layer's dedupe is backed by the drivers' own.

The ``window`` parameter of policy-driven kinds defaults to the study
scale's window at compile time, so run IDs always record the effective
value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.errors import StudyError
from repro.mem.misshandler import (
    SINGLE_SIZE_PENALTY_CYCLES,
    TWO_SIZE_PENALTY_FACTOR,
)
from repro.parallel.cache import SimulationCache
from repro.robustness import faultinject
from repro.sim.config import (
    SingleSizeScheme,
    TLBConfig,
    TwoLevelConfig,
    TwoSizeScheme,
)
from repro.tlb.indexing import IndexingScheme, ProbeStrategy
from repro.trace.record import Trace
from repro.types import PAGE_4KB, PAIR_4KB_32KB

#: Sentinel default for parameters the caller must supply.
REQUIRED = object()

#: Parameters whose default is resolved from the experiment scale at
#: compile time (never baked into the schema).
SCALE_DEFAULTS = ("window",)

Runner = Callable[
    [Trace, Mapping[str, Any], Optional[SimulationCache], Tuple[str, ...]],
    Dict[str, Any],
]


@dataclass(frozen=True)
class UnitKind:
    """One unit shape: parameter schema, metric names, runner."""

    name: str
    params: Mapping[str, Any]
    metrics: Tuple[str, ...]
    run: Runner
    #: Metrics computed only when requested (all others always are).
    lazy_metrics: Tuple[str, ...] = ()

    def resolve_params(
        self, merged: Mapping[str, Any], *, window: int
    ) -> Dict[str, Any]:
        """The parameters this kind consumes, defaults filled in.

        ``merged`` is the unit's fixed ∪ factor-point mapping; values
        the kind does not consume are ignored here (the compiler
        separately checks that every declared name is consumed by at
        least one kind in the lattice).
        """
        resolved: Dict[str, Any] = {}
        for key, default in self.params.items():
            if key in merged:
                resolved[key] = merged[key]
            elif key in SCALE_DEFAULTS:
                resolved[key] = window
            elif default is REQUIRED:
                raise StudyError(
                    f"unit kind {self.name!r} requires parameter {key!r}"
                )
            else:
                resolved[key] = default
        return resolved

    def check_metrics(self, metrics: Tuple[str, ...]) -> None:
        """Raise unless every name in ``metrics`` is one this kind has."""
        unknown = set(metrics) - set(self.metrics)
        if unknown:
            raise StudyError(
                f"unit kind {self.name!r} has no metric "
                f"{', '.join(sorted(unknown))}; available: "
                f"{', '.join(self.metrics)}"
            )


def _tlb_config(params: Mapping[str, Any]) -> TLBConfig:
    return TLBConfig(
        entries=params["entries"],
        associativity=params["associativity"],
        scheme=IndexingScheme(params["indexing"]),
        probe_strategy=ProbeStrategy(params["probe"]),
        replacement=params["replacement"],
    )


def _two_size_scheme(params: Mapping[str, Any]) -> TwoSizeScheme:
    return TwoSizeScheme(
        pair=PAIR_4KB_32KB,
        window=params["window"],
        promote_fraction=params["promote_fraction"],
        demote_fraction=params["demote_fraction"],
    )


_GEOMETRY_PARAMS = {
    "entries": REQUIRED,
    "associativity": None,
    "indexing": IndexingScheme.EXACT_INDEX.value,
    "probe": ProbeStrategy.PARALLEL.value,
    "replacement": "lru",
}

_POLICY_PARAMS = {
    "window": REQUIRED,  # filled from the scale when not declared
    "promote_fraction": 0.5,
    "demote_fraction": None,
    "base_penalty": SINGLE_SIZE_PENALTY_CYCLES,
    "penalty_factor": TWO_SIZE_PENALTY_FACTOR,
}


def _run_single(
    trace: Trace,
    params: Mapping[str, Any],
    cache: Optional[SimulationCache],
    wanted: Tuple[str, ...],
) -> Dict[str, Any]:
    from repro.sim.driver import run_single_size

    faultinject.check("studies.unit")
    result = run_single_size(
        trace,
        SingleSizeScheme(params["page_size"]),
        _tlb_config(params),
        base_penalty=params["base_penalty"],
        cache=cache,
    )
    return {
        "cpi_tlb": result.cpi_tlb,
        "miss_ratio": result.miss_ratio,
        "misses": result.misses,
        "reprobes": result.reprobes,
        "references": result.references,
    }


def _run_two_size(
    trace: Trace,
    params: Mapping[str, Any],
    cache: Optional[SimulationCache],
    wanted: Tuple[str, ...],
) -> Dict[str, Any]:
    from repro.sim.driver import run_two_sizes

    faultinject.check("studies.unit")
    (result,) = run_two_sizes(
        trace,
        _two_size_scheme(params),
        [_tlb_config(params)],
        base_penalty=params["base_penalty"],
        penalty_factor=params["penalty_factor"],
        cache=cache,
    )
    metrics: Dict[str, Any] = {
        "cpi_tlb": result.cpi_tlb,
        "miss_ratio": result.miss_ratio,
        "misses": result.misses,
        "large_misses": result.large_misses,
        "reprobes": result.reprobes,
        "invalidations": result.invalidations,
        "promotions": result.promotions,
        "demotions": result.demotions,
        "references": result.references,
    }
    if "ws_normalized" in wanted:
        from repro.policy.dynamic_ws import dynamic_average_working_set
        from repro.stacksim.working_set import average_working_set_bytes

        window = params["window"]
        baseline_ws = average_working_set_bytes(
            trace, PAGE_4KB, [window]
        )[window]
        ws_kwargs: Dict[str, Any] = {
            "promote_fraction": params["promote_fraction"],
        }
        if params["demote_fraction"] is not None:
            ws_kwargs["demote_fraction"] = params["demote_fraction"]
        dynamic = dynamic_average_working_set(
            trace, PAIR_4KB_32KB, window, **ws_kwargs
        )
        metrics["ws_normalized"] = (
            dynamic.average_bytes / baseline_ws if baseline_ws else 1.0
        )
    return metrics


def _run_split(
    trace: Trace,
    params: Mapping[str, Any],
    cache: Optional[SimulationCache],
    wanted: Tuple[str, ...],
) -> Dict[str, Any]:
    from repro.sim.driver import run_split_two_sizes

    faultinject.check("studies.unit")
    result = run_split_two_sizes(
        trace,
        _two_size_scheme(params),
        TLBConfig(params["small_entries"]),
        TLBConfig(params["large_entries"]),
        base_penalty=params["base_penalty"],
        penalty_factor=params["penalty_factor"],
        cache=cache,
    )
    return {
        "cpi_tlb": result.performance.cpi_tlb,
        "misses": result.misses,
        "large_misses": result.large_misses,
        "small_occupancy": result.small_occupancy,
        "large_occupancy": result.large_occupancy,
        "references": result.references,
    }


def _run_twolevel(
    trace: Trace,
    params: Mapping[str, Any],
    cache: Optional[SimulationCache],
    wanted: Tuple[str, ...],
) -> Dict[str, Any]:
    from repro.sim.driver import run_two_level

    faultinject.check("studies.unit")
    result = run_two_level(
        trace,
        _two_size_scheme(params),
        TwoLevelConfig(
            level1=TLBConfig(params["l1_entries"]),
            level2=TLBConfig(params["l2_entries"]),
            l2_hit_cycles=params["l2_hit_cycles"],
        ),
        base_penalty=params["base_penalty"],
        penalty_factor=params["penalty_factor"],
        cache=cache,
    )
    l1_misses = result.l2_hits + result.misses
    return {
        "cpi_tlb": result.cpi_tlb,
        "misses": result.misses,
        "l2_hits": result.l2_hits,
        "l2_catch_rate": result.l2_hits / l1_misses if l1_misses else 0.0,
        "references": result.references,
    }


#: Every unit shape the compiler can schedule, by name.
UNIT_KINDS: Dict[str, UnitKind] = {
    kind.name: kind
    for kind in (
        UnitKind(
            name="single",
            params={
                "page_size": PAGE_4KB,
                "base_penalty": SINGLE_SIZE_PENALTY_CYCLES,
                **_GEOMETRY_PARAMS,
            },
            metrics=(
                "cpi_tlb", "miss_ratio", "misses", "reprobes", "references",
            ),
            run=_run_single,
        ),
        UnitKind(
            name="two_size",
            params={**_GEOMETRY_PARAMS, **_POLICY_PARAMS},
            metrics=(
                "cpi_tlb", "miss_ratio", "misses", "large_misses",
                "reprobes", "invalidations", "promotions", "demotions",
                "references", "ws_normalized",
            ),
            lazy_metrics=("ws_normalized",),
            run=_run_two_size,
        ),
        UnitKind(
            name="split",
            params={
                "small_entries": REQUIRED,
                "large_entries": REQUIRED,
                **_POLICY_PARAMS,
            },
            metrics=(
                "cpi_tlb", "misses", "large_misses", "small_occupancy",
                "large_occupancy", "references",
            ),
            run=_run_split,
        ),
        UnitKind(
            name="twolevel",
            params={
                "l1_entries": REQUIRED,
                "l2_entries": REQUIRED,
                "l2_hit_cycles": 4.0,
                **_POLICY_PARAMS,
            },
            metrics=(
                "cpi_tlb", "misses", "l2_hits", "l2_catch_rate",
                "references",
            ),
            run=_run_twolevel,
        ),
    )
}


def get_kind(name: str) -> UnitKind:
    """The :class:`UnitKind` called ``name``."""
    try:
        return UNIT_KINDS[name]
    except KeyError:
        raise StudyError(
            f"unknown unit kind {name!r}; known: "
            f"{', '.join(sorted(UNIT_KINDS))}"
        ) from None


__all__ = ["REQUIRED", "UNIT_KINDS", "UnitKind", "get_kind"]
