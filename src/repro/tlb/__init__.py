"""TLB models supporting one or two page sizes — the paper's Section 2.

Exports the fully associative model (2.1), the set-associative model with
its three indexing schemes and two probe strategies (2.2), the split
per-page-size composite (2.2 option c), and the replacement policies.
"""

from repro.tlb.base import TLB
from repro.tlb.context import ContextSwitchPolicy, MultiprogrammedTLB
from repro.tlb.entry import decode_tag, encode_tag
from repro.tlb.fully_assoc import FullyAssociativeTLB
from repro.tlb.indexing import IndexingScheme, ProbeStrategy
from repro.tlb.replacement import (
    FIFOReplacement,
    LRUReplacement,
    RandomReplacement,
    ReplacementPolicy,
    make_replacement_policy,
)
from repro.tlb.replacement import TreePLRUReplacement
from repro.tlb.set_assoc import SetAssociativeTLB
from repro.tlb.split import SplitTLB
from repro.tlb.stats import TLBStatistics
from repro.tlb.twolevel import TwoLevelTLB

__all__ = [
    "ContextSwitchPolicy",
    "FIFOReplacement",
    "FullyAssociativeTLB",
    "IndexingScheme",
    "MultiprogrammedTLB",
    "LRUReplacement",
    "ProbeStrategy",
    "RandomReplacement",
    "ReplacementPolicy",
    "SetAssociativeTLB",
    "SplitTLB",
    "TLB",
    "TLBStatistics",
    "TreePLRUReplacement",
    "TwoLevelTLB",
    "decode_tag",
    "encode_tag",
    "make_replacement_policy",
]
