"""Common machinery shared by every TLB model.

A TLB is a collection of *sets*, each a small list of encoded entry tags
ordered by the replacement policy (one set of full capacity for the fully
associative case).  Subclasses implement :meth:`access` — which sets to
probe and where to place a fill is exactly what distinguishes the
indexing schemes of Section 2.2 — while this base class provides the
set storage, replacement, statistics, flush and the (rare, so simply
scan-everything) invalidation paths used by page promotion and demotion.

The access interface takes the reference's *block* number (small-page
number) and *chunk* number (large-page number) plus the page size the
assignment policy chose.  Both numbers are needed because set indexing
may use either, independent of the page size actually mapped
(e.g. large-page indexing applies the chunk bits even to small pages).
For single-page-size simulation use :meth:`access_single`, which treats
the page number as both block and chunk.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.tlb.entry import decode_tag, encode_tag
from repro.tlb.replacement import LRUReplacement, ReplacementPolicy
from repro.tlb.stats import TLBStatistics


class TLB(ABC):
    """Abstract TLB: sets of encoded tags plus statistics."""

    def __init__(
        self,
        entries: int,
        sets: int,
        replacement: Optional[ReplacementPolicy] = None,
    ) -> None:
        if entries <= 0:
            raise ConfigurationError(f"TLB needs at least one entry, got {entries}")
        if sets <= 0 or entries % sets != 0:
            raise ConfigurationError(
                f"set count {sets} must divide entry count {entries}"
            )
        self.entries = entries
        self.sets = sets
        self.associativity = entries // sets
        self.replacement = replacement if replacement is not None else LRUReplacement()
        self.stats = TLBStatistics()
        self._sets: List[List[int]] = [[] for _ in range(sets)]

    @abstractmethod
    def access(self, block: int, chunk: int, large: bool = False) -> bool:
        """Look up one reference; fill on miss.  Returns True on hit.

        Args:
            block: the reference's small-page number (address >> small_shift).
            chunk: the reference's large-page number (address >> large_shift).
            large: whether the assignment policy maps this reference with a
                large page.
        """

    def access_single(self, page: int) -> bool:
        """Single-page-size lookup: the page number serves as block and chunk."""
        return self.access(page, page, False)

    # ------------------------------------------------------------------
    # Probe/fill helpers shared by subclasses.
    # ------------------------------------------------------------------

    def _probe(self, set_index: int, tag: int) -> bool:
        """Probe one set for ``tag``; update replacement order on hit."""
        entries = self._sets[set_index]
        try:
            position = entries.index(tag)
        except ValueError:
            return False
        self.replacement.touch(entries, position)
        return True

    def _fill(self, set_index: int, tag: int) -> None:
        """Insert ``tag`` into a set, counting any replacement victim."""
        victim = self.replacement.insert(
            self._sets[set_index], tag, self.associativity
        )
        if victim is not None:
            self.stats.replacements += 1

    # ------------------------------------------------------------------
    # Invalidation (promotion/demotion shootdowns) and inspection.
    # ------------------------------------------------------------------

    def invalidate_small_pages_of_chunk(
        self, chunk: int, blocks_per_chunk: int
    ) -> int:
        """Remove every small-page entry belonging to ``chunk``.

        Called when the chunk is promoted to a large page: the old
        small-page translations are stale.  Returns the number removed.
        Invalidations are rare (policy transitions only), so a full scan
        of the at-most-64-entry structure is the simplest correct choice.
        """
        removed = 0
        low = chunk * blocks_per_chunk
        high = low + blocks_per_chunk
        for entries in self._sets:
            kept = []
            for tag in entries:
                page, large = decode_tag(tag)
                if not large and low <= page < high:
                    removed += 1
                else:
                    kept.append(tag)
            entries[:] = kept
        self.stats.invalidations += removed
        return removed

    def invalidate_large_page(self, chunk: int) -> int:
        """Remove every large-page entry mapping ``chunk``.

        Called on demotion.  More than one copy can exist under
        small-page indexing (the scheme's known flaw), hence the scan.
        """
        target = encode_tag(chunk, True)
        removed = 0
        for entries in self._sets:
            before = len(entries)
            entries[:] = [tag for tag in entries if tag != target]
            removed += before - len(entries)
        self.stats.invalidations += removed
        return removed

    def flush(self) -> None:
        """Empty the TLB (context switch); statistics are preserved."""
        for entries in self._sets:
            entries.clear()

    def reset(self) -> None:
        """Empty the TLB and zero its statistics."""
        self.flush()
        self.stats.reset()

    def resident(self) -> Iterator[Tuple[int, bool]]:
        """Iterate over ``(page, large)`` for every valid entry (tests)."""
        for entries in self._sets:
            for tag in entries:
                yield decode_tag(tag)

    def occupancy(self) -> int:
        """Number of valid entries currently held."""
        return sum(len(entries) for entries in self._sets)

    def occupancy_by_size(self) -> Tuple[int, int]:
        """``(small, large)`` resident entry counts.

        Built on :meth:`resident`, so it is correct for every model —
        including :class:`~repro.tlb.split.SplitTLB`, whose components
        store bare page numbers and normalise the size in
        ``resident()``.  Used by the utilisation ablation and by the
        vector-kernel equivalence tests to compare end-of-trace state.
        """
        small = 0
        large = 0
        for _page, is_large in self.resident():
            if is_large:
                large += 1
            else:
                small += 1
        return small, large

    def resident_pages(self, large: bool) -> FrozenSet[int]:
        """The distinct page numbers currently resident at one size.

        Large pages can be resident as several copies under small-page
        indexing; the set collapses them, which is what an exactness
        check against another model wants.
        """
        return frozenset(
            page for page, is_large in self.resident() if is_large == large
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(entries={self.entries}, sets={self.sets}, "
            f"assoc={self.associativity}, replacement={self.replacement.name})"
        )
