"""Multiprogrammed TLB models: flush-on-switch versus ASID tags.

The paper's traces are uniprogrammed, and Sections 3.1 and 6 flag the
omission: context switches either flush the TLB (architectures without
address-space identifiers, like the original SPARC reference MMU's
flush-based management) or share it under ASID tags (as the MIPS R4000
did).  This module models both so the multiprogramming ablation can
quantify the gap.

:class:`MultiprogrammedTLB` wraps any single-address-space TLB model:

* ``FLUSH`` — switching contexts empties the TLB; entries never carry
  an identifier.
* ``ASID`` — entries are tagged by folding the current address-space
  identifier into the page number (injective because 32-bit virtual
  page numbers leave headroom in Python integers), so contexts coexist
  and compete for capacity instead of losing everything on a switch.
"""

from __future__ import annotations

import enum

from repro.errors import ConfigurationError
from repro.tlb.base import TLB

#: Shift applied to the ASID when folding it into a page number.  Block
#: numbers in a 32-bit/4KB system need 20 bits; 26 leaves margin for the
#: page-size flag and keeps the folded numbers exact integers.  Public
#: because :mod:`repro.perf.multiprog` applies the identical fold as an
#: array expression and must stay bit-compatible with this model.
ASID_SHIFT = 26


class ContextSwitchPolicy(enum.Enum):
    """How the TLB copes with more than one address space."""

    FLUSH = "flush"
    ASID = "asid"

    def __str__(self) -> str:
        return self.value


class MultiprogrammedTLB:
    """A TLB shared by several address spaces.

    Wraps a single-context :class:`~repro.tlb.base.TLB`; callers switch
    contexts with :meth:`switch_to` and access with the wrapped model's
    (block, chunk, large) convention.  Statistics accumulate in the
    wrapped TLB's counters; context switches are counted here.
    """

    def __init__(self, tlb: TLB, policy: ContextSwitchPolicy) -> None:
        self.tlb = tlb
        self.policy = policy
        self.switches = 0
        self._asid = 0

    @property
    def stats(self):
        """The wrapped TLB's statistics."""
        return self.tlb.stats

    def switch_to(self, asid: int) -> None:
        """Make ``asid`` the current address space."""
        if asid < 0:
            raise ConfigurationError(f"ASID must be non-negative: {asid}")
        if asid == self._asid:
            return
        self.switches += 1
        self._asid = asid
        if self.policy is ContextSwitchPolicy.FLUSH:
            self.tlb.flush()

    def access(self, block: int, chunk: int, large: bool = False) -> bool:
        """Look up a reference in the current address space."""
        if self.policy is ContextSwitchPolicy.ASID:
            prefix = self._asid << ASID_SHIFT
            return self.tlb.access(prefix | block, prefix | chunk, large)
        return self.tlb.access(block, chunk, large)

    def access_single(self, page: int) -> bool:
        """Single-page-size lookup in the current address space."""
        return self.access(page, page, False)

    # Promotion/demotion shootdowns, forwarded in the current address
    # space: a multiprogrammed two-page-size system runs one assignment
    # policy per address space (the Section 6 design space), and its
    # shootdowns must only ever hit the issuing space's entries.  Under
    # ASID that means applying the same fold the lookups use; under
    # FLUSH entries carry no identifier and the raw numbers pass
    # through (cross-space aliasing is impossible inside one flush
    # segment, because a segment is single-context).

    def invalidate_small_pages_of_chunk(
        self, chunk: int, blocks_per_chunk: int
    ) -> int:
        """Shoot down the current space's small pages of ``chunk``."""
        if self.policy is ContextSwitchPolicy.ASID:
            # Folded blocks of this chunk occupy one contiguous range:
            # shifting the block-space prefix down to chunk space keeps
            # prefix|chunk * blocks_per_chunk == prefix<<shift | block.
            shift = blocks_per_chunk.bit_length() - 1
            if (1 << shift) != blocks_per_chunk:
                raise ConfigurationError(
                    f"blocks_per_chunk must be a power of two, "
                    f"got {blocks_per_chunk}"
                )
            chunk = (self._asid << (ASID_SHIFT - shift)) | chunk
        return self.tlb.invalidate_small_pages_of_chunk(chunk, blocks_per_chunk)

    def invalidate_large_page(self, chunk: int) -> int:
        """Shoot down the current space's large-page entry for ``chunk``."""
        if self.policy is ContextSwitchPolicy.ASID:
            chunk = (self._asid << ASID_SHIFT) | chunk
        return self.tlb.invalidate_large_page(chunk)
