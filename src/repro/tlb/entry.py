"""TLB entry (tag) encoding.

A TLB entry supporting two page sizes must record the page size alongside
the page number, because hit detection selects how many virtual-address
bits participate in the tag comparison (Section 2.1 of the paper).

For simulation speed an entry's tag is encoded as a single integer —
``page_number * 2 + is_large`` — so set scans compare machine integers
instead of tuples.  The flag occupies the low bit, mirroring how real
hardware would widen the tag by one page-size bit.
"""

from __future__ import annotations

from typing import Tuple


def encode_tag(page: int, large: bool) -> int:
    """Pack a page number and page-size flag into one comparable integer."""
    return (page << 1) | (1 if large else 0)


def decode_tag(tag: int) -> Tuple[int, bool]:
    """Unpack an encoded tag into ``(page_number, is_large)``."""
    return tag >> 1, bool(tag & 1)


def tag_is_large(tag: int) -> bool:
    """Return the page-size flag of an encoded tag."""
    return bool(tag & 1)


def tag_page(tag: int) -> int:
    """Return the page number of an encoded tag."""
    return tag >> 1
