"""Fully associative TLB supporting two page sizes (Section 2.1).

The conceptually simple design: every entry carries the page size in its
tag and (logically) owns a comparator, so any entry can hold any page.
The cost argument against it — a comparator per entry — is why the paper
studies set-associative alternatives; the simulation model is simply a
single LRU set of full capacity.
"""

from __future__ import annotations

from typing import Optional

from repro.tlb.base import TLB
from repro.tlb.entry import encode_tag
from repro.tlb.replacement import ReplacementPolicy


class FullyAssociativeTLB(TLB):
    """One set, ``entries``-way associative, page size in the tag.

    Hit detection follows Section 2.1: each *entry's* stored page size
    selects which address bits its tag is compared against, so a lookup
    matches a small-page entry for the address's block or a large-page
    entry for the address's chunk, whichever is resident — independent
    of the page size the assignment policy currently intends (that only
    chooses what a miss fills).  With a well-behaved OS both can never
    be valid simultaneously, but the hardware model must not assume so.
    """

    def __init__(
        self,
        entries: int,
        replacement: Optional[ReplacementPolicy] = None,
    ) -> None:
        super().__init__(entries, sets=1, replacement=replacement)

    def access(self, block: int, chunk: int, large: bool = False) -> bool:
        if self._probe(0, encode_tag(block, False)) or self._probe(
            0, encode_tag(chunk, True)
        ):
            self.stats.record_hit(large)
            return True
        self.stats.record_miss(large)
        self._fill(0, encode_tag(chunk if large else block, large))
        return False
