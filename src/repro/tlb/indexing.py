"""Set-index schemes for TLBs supporting two page sizes (Section 2.2).

Given two aligned power-of-two page sizes, which address bits select the
set?  The paper analyses three choices:

* ``SMALL_INDEX`` — always use the low bits of the *small* page number.
  Broken by design for large pages: bits below the large-page boundary
  are page-offset bits of a large page, so one large page scatters
  copies across up to ``blocks_per_chunk`` sets, "negating the very
  reason to support both large and small pages".  Included because the
  paper includes it (and the degenerate single-size TLB is this scheme).
* ``LARGE_INDEX`` — always use the low bits of the *large* page number.
  Sound for large pages; small pages sharing a chunk collide in one set
  (mitigated by associativity and by the OS promoting chunks whose
  blocks are used together).
* ``EXACT_INDEX`` — use the page's own size to pick the bits.  The size
  is unknown at lookup time, so hardware must probe both candidate sets
  (in parallel, sequentially with a reprobe, or with split per-size
  TLBs — Section 2.2 options a/b/c).

The probe *strategy* for ``EXACT_INDEX`` does not change what hits; it
changes probe cost, which the simulator records as ``stats.reprobes``.
"""

from __future__ import annotations

import enum


class IndexingScheme(enum.Enum):
    """Which page number supplies the set-index bits."""

    SMALL_INDEX = "small"
    LARGE_INDEX = "large"
    EXACT_INDEX = "exact"

    def __str__(self) -> str:
        return self.value


class ProbeStrategy(enum.Enum):
    """How EXACT_INDEX hardware resolves the unknown page size at lookup.

    PARALLEL models a dual-ported/replicated structure probing both sets
    at once (option a); SEQUENTIAL probes the small-page set first and
    reprobes with the large-page index on a miss (option b, after
    Kessler et al.'s reprobing caches).  Option c, split TLBs, is a
    separate structure: :class:`repro.tlb.split.SplitTLB`.
    """

    PARALLEL = "parallel"
    SEQUENTIAL = "sequential"

    def __str__(self) -> str:
        return self.value
