"""Replacement policies for TLB sets.

A TLB set (or a whole fully associative TLB) is represented as a plain
list of entries.  A replacement policy decides how a hit reorders the
list and which entry a fill displaces.  The paper assumes LRU throughout;
FIFO and random are provided for the ablation benchmarks, since 1992-era
hardware often approximated LRU with cheaper schemes.

The list convention is *most recent first* for LRU, *newest first* for
FIFO; a policy owns the meaning of list order and callers never reorder
entries themselves.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, List, Optional, Tuple

from repro.errors import ConfigurationError


class ReplacementPolicy(ABC):
    """Strategy controlling entry order and victim choice within a set."""

    name: str = "abstract"

    @abstractmethod
    def touch(self, entries: List[Any], position: int) -> None:
        """Update bookkeeping after a hit on ``entries[position]``."""

    @abstractmethod
    def insert(
        self, entries: List[Any], entry: Any, capacity: int
    ) -> Optional[Any]:
        """Insert ``entry``, evicting and returning a victim if the set is full."""


class LRUReplacement(ReplacementPolicy):
    """Least-recently-used: hits move to the front, fills evict the back."""

    name = "lru"

    def touch(self, entries: List[Any], position: int) -> None:
        if position != 0:
            entry = entries.pop(position)
            entries.insert(0, entry)

    def insert(
        self, entries: List[Any], entry: Any, capacity: int
    ) -> Optional[Any]:
        victim = entries.pop() if len(entries) >= capacity else None
        entries.insert(0, entry)
        return victim


class FIFOReplacement(ReplacementPolicy):
    """First-in-first-out: hits do not reorder, fills evict the oldest."""

    name = "fifo"

    def touch(self, entries: List[Any], position: int) -> None:
        pass  # FIFO order is insertion order; hits change nothing.

    def insert(
        self, entries: List[Any], entry: Any, capacity: int
    ) -> Optional[Any]:
        victim = entries.pop() if len(entries) >= capacity else None
        entries.insert(0, entry)
        return victim


class RandomReplacement(ReplacementPolicy):
    """Random victim choice, deterministic under a caller-supplied seed."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def touch(self, entries: List[Any], position: int) -> None:
        pass  # random replacement keeps no recency state.

    def insert(
        self, entries: List[Any], entry: Any, capacity: int
    ) -> Optional[Any]:
        victim = None
        if len(entries) >= capacity:
            victim = entries.pop(self._rng.randrange(len(entries)))
        entries.insert(0, entry)
        return victim


class TreePLRUReplacement(ReplacementPolicy):
    """Tree pseudo-LRU: the cheap hardware approximation of LRU.

    Real TLBs rarely build true LRU above two ways; a binary tree of
    "went-left/went-right" bits per set approximates it with one bit per
    internal node.  This implementation keeps one tree per set (keyed by
    the set list's identity), sized to the set's capacity rounded up to
    a power of two.

    On a hit or fill, the bits along the entry's path flip to point away
    from it; the victim is found by following the bits.
    """

    name = "plru"

    def __init__(self) -> None:
        self._trees: dict = {}

    def _tree_for(self, entries: List[Any], capacity: int) -> List[int]:
        key = id(entries)
        ways = 1
        while ways < capacity:
            ways *= 2
        tree = self._trees.get(key)
        if tree is None or len(tree) < ways - 1:
            # First sight of this set (or it was sized before the real
            # capacity was known): start from cold PLRU bits.
            tree = [0] * max(1, ways - 1)
            self._trees[key] = tree
        return tree

    @staticmethod
    def _touch_path(tree: List[int], way: int, ways: int) -> None:
        """Point every node on ``way``'s path away from it."""
        node = 0
        span = ways
        low = 0
        while span > 1:
            span //= 2
            if way < low + span:
                tree[node] = 1  # next victim search goes right
                node = 2 * node + 1
            else:
                tree[node] = 0  # next victim search goes left
                node = 2 * node + 2
                low += span

    @staticmethod
    def _victim_way(tree: List[int], ways: int) -> int:
        node = 0
        span = ways
        low = 0
        while span > 1:
            span //= 2
            if tree[node] == 0:
                node = 2 * node + 1
            else:
                node = 2 * node + 2
                low += span
        return low

    def touch(self, entries: List[Any], position: int) -> None:
        tree = self._tree_for(entries, max(len(entries), 1))
        self._touch_path(tree, position, len(tree) + 1)

    def insert(
        self, entries: List[Any], entry: Any, capacity: int
    ) -> Optional[Any]:
        tree = self._tree_for(entries, capacity)
        ways = len(tree) + 1
        victim = None
        if len(entries) >= capacity:
            way = min(self._victim_way(tree, ways), len(entries) - 1)
            victim = entries[way]
            entries[way] = entry
            self._touch_path(tree, way, ways)
            return victim
        entries.append(entry)
        self._touch_path(tree, len(entries) - 1, ways)
        return victim


def make_replacement_policy(name: str, *, seed: int = 0) -> ReplacementPolicy:
    """Construct a replacement policy by name
    (``lru``/``fifo``/``random``/``plru``)."""
    if name == "lru":
        return LRUReplacement()
    if name == "fifo":
        return FIFOReplacement()
    if name == "random":
        return RandomReplacement(seed)
    if name == "plru":
        return TreePLRUReplacement()
    raise ConfigurationError(f"unknown replacement policy {name!r}")


#: Convenience tuple used by sweeps and tests.
REPLACEMENT_POLICY_NAMES: Tuple[str, ...] = ("lru", "fifo", "random", "plru")
