"""Set-associative TLB supporting two page sizes (Section 2.2).

The set index is derived from the small page number, the large page
number, or the exact page number, per :class:`~repro.tlb.indexing.
IndexingScheme`.  See that module's docstring for the tradeoffs; this
module implements the lookup/fill behaviour each scheme implies:

* SMALL_INDEX — the probed and filled set comes from the reference's
  block number for both page sizes.  A large page therefore lands in
  whichever set the *offset* bits select, so distinct accesses to one
  large page can populate several sets with duplicate tags.
* LARGE_INDEX — the probed and filled set comes from the chunk number
  for both page sizes; a chunk's small pages all contend for one set.
* EXACT_INDEX — small pages index by block bits, large pages by chunk
  bits.  Lookups must probe both candidate sets because the page size is
  unknown until a tag matches; the probe strategy (parallel vs
  sequential reprobe) decides only the cost, recorded in
  ``stats.reprobes``.
"""

from __future__ import annotations

from typing import Optional

from repro.tlb.base import TLB
from repro.tlb.entry import encode_tag
from repro.tlb.indexing import IndexingScheme, ProbeStrategy
from repro.tlb.replacement import ReplacementPolicy


class SetAssociativeTLB(TLB):
    """Set-associative TLB with a selectable two-page-size index scheme.

    Args:
        entries: total entry count (paper: 16 or 32).
        associativity: ways per set (paper: 2).
        scheme: which page number supplies the index bits.
        probe_strategy: EXACT_INDEX lookup style; ignored otherwise.
        replacement: within-set replacement policy (default LRU).
    """

    def __init__(
        self,
        entries: int,
        associativity: int,
        scheme: IndexingScheme = IndexingScheme.EXACT_INDEX,
        *,
        probe_strategy: ProbeStrategy = ProbeStrategy.PARALLEL,
        replacement: Optional[ReplacementPolicy] = None,
    ) -> None:
        super().__init__(entries, entries // associativity, replacement)
        self.scheme = scheme
        self.probe_strategy = probe_strategy
        self._set_mask = self.sets - 1

    def access(self, block: int, chunk: int, large: bool = False) -> bool:
        scheme = self.scheme
        if scheme is IndexingScheme.SMALL_INDEX:
            return self._access_one_set(block & self._set_mask, block, chunk, large)
        if scheme is IndexingScheme.LARGE_INDEX:
            return self._access_one_set(chunk & self._set_mask, block, chunk, large)
        return self._access_exact(block, chunk, large)

    def _access_one_set(
        self, set_index: int, block: int, chunk: int, large: bool
    ) -> bool:
        """SMALL_INDEX / LARGE_INDEX: one candidate set for either size.

        Both page sizes' tags are compared (the entry's stored size
        selects the comparison, Section 2.1); the policy's size choice
        only decides what a miss fills.
        """
        if self._probe(set_index, encode_tag(block, False)) or self._probe(
            set_index, encode_tag(chunk, True)
        ):
            self.stats.record_hit(large)
            return True
        self.stats.record_miss(large)
        self._fill(set_index, encode_tag(chunk if large else block, large))
        return False

    def _access_exact(self, block: int, chunk: int, large: bool) -> bool:
        """EXACT_INDEX: probe the small-indexed and large-indexed sets."""
        small_set = block & self._set_mask
        large_set = chunk & self._set_mask
        sequential = self.probe_strategy is ProbeStrategy.SEQUENTIAL

        if self._probe(small_set, encode_tag(block, False)):
            # Found as a small page (first probe in the sequential order).
            self.stats.record_hit(large)
            return True
        if self._probe(large_set, encode_tag(chunk, True)):
            if sequential:
                self.stats.reprobes += 1
            self.stats.record_hit(large)
            return True

        if sequential:
            self.stats.reprobes += 1
        self.stats.record_miss(large)
        fill_set = large_set if large else small_set
        self._fill(fill_set, encode_tag(chunk if large else block, large))
        return False
