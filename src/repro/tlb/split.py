"""Split TLBs: a separate structure per page size (Section 2.2, option c).

Analogous to split instruction/data TLBs: one TLB holds only small-page
entries (indexed by block number) and another only large-page entries
(indexed by chunk number); both are probed in parallel with different
page numbers, so hit time is one probe and the page size never needs
resolving.  The cost the paper notes is *unused hardware* when pages are
not appropriately distributed between the sizes — a program using no
large pages leaves the whole large-page TLB idle.

This is how PA-RISC 1.1's Block TLB and the i860 XP's 4MB-page TLB were
organised at the time of the paper.

The component TLBs can be any :class:`~repro.tlb.base.TLB`; the composite
presents the same ``access``/invalidate interface and keeps aggregate
statistics (the components also keep their own, which the utilisation
ablation inspects).
"""

from __future__ import annotations

from repro.tlb.base import TLB


class SplitTLB(TLB):
    """A small-page TLB and a large-page TLB probed side by side."""

    def __init__(self, small_tlb: TLB, large_tlb: TLB) -> None:
        super().__init__(
            small_tlb.entries + large_tlb.entries,
            sets=1,  # the composite's own set storage is unused
        )
        self._sets = []  # all entries live in the components
        self.small_tlb = small_tlb
        self.large_tlb = large_tlb

    def access(self, block: int, chunk: int, large: bool = False) -> bool:
        if large:
            hit = self.large_tlb.access_single(chunk)
        else:
            hit = self.small_tlb.access_single(block)
        if hit:
            self.stats.record_hit(large)
        else:
            self.stats.record_miss(large)
        return hit

    def invalidate_small_pages_of_chunk(
        self, chunk: int, blocks_per_chunk: int
    ) -> int:
        removed = self.small_tlb.invalidate_small_pages_of_chunk(
            # Component small TLBs store bare block numbers via
            # access_single, i.e. tags with the large flag clear, so the
            # base-class scan applies unchanged.
            chunk,
            blocks_per_chunk,
        )
        self.stats.invalidations += removed
        return removed

    def invalidate_large_page(self, chunk: int) -> int:
        # In the large-page component the chunk number was stored via
        # access_single, i.e. tagged as a *small* flag entry; invalidate
        # it as the single-page structure it is.
        removed = self.large_tlb.invalidate_small_pages_of_chunk(chunk, 1)
        self.stats.invalidations += removed
        return removed

    def flush(self) -> None:
        self.small_tlb.flush()
        self.large_tlb.flush()

    def reset(self) -> None:
        self.small_tlb.reset()
        self.large_tlb.reset()
        self.stats.reset()

    def resident(self):
        for page, _ in self.small_tlb.resident():
            yield page, False
        for page, _ in self.large_tlb.resident():
            yield page, True

    def occupancy(self) -> int:
        return self.small_tlb.occupancy() + self.large_tlb.occupancy()

    def __repr__(self) -> str:
        return (
            f"SplitTLB(small={self.small_tlb!r}, large={self.large_tlb!r})"
        )
