"""Per-TLB access statistics.

Every TLB model in :mod:`repro.tlb` exposes a :class:`TLBStatistics`
counter block.  The counters deliberately separate *why* entries left the
TLB (capacity replacement vs. policy invalidation) and record the probe
behaviour that distinguishes the exact-index strategies of Section 2.2
(parallel vs. sequential reprobe).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TLBStatistics:
    """Mutable counters accumulated by a TLB model during simulation.

    Attributes:
        accesses: total lookups presented to the TLB.
        hits: lookups satisfied by a valid entry.
        misses: lookups requiring a page-table fill.
        large_hits: hits whose matching entry mapped a large page.
        large_misses: misses on references assigned to a large page.
        replacements: valid entries evicted to make room for a fill.
        invalidations: entries removed by promotion/demotion shootdowns.
        reprobes: second probes performed by the sequential exact-index
            strategy (Section 2.2, option b).
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    large_hits: int = 0
    large_misses: int = 0
    replacements: int = 0
    invalidations: int = 0
    reprobes: int = 0

    @property
    def miss_ratio(self) -> float:
        """Misses per access; 0.0 before any access."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_ratio(self) -> float:
        """Hits per access; 0.0 before any access."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def record_hit(self, large: bool) -> None:
        """Count one hit (``large`` if the matching entry was a large page)."""
        self.accesses += 1
        self.hits += 1
        if large:
            self.large_hits += 1

    def record_miss(self, large: bool) -> None:
        """Count one miss on a reference assigned to the given page size."""
        self.accesses += 1
        self.misses += 1
        if large:
            self.large_misses += 1

    def reset(self) -> None:
        """Zero all counters."""
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.large_hits = 0
        self.large_misses = 0
        self.replacements = 0
        self.invalidations = 0
        self.reprobes = 0
