"""Two-level TLB hierarchies.

Section 1 of the paper explains why TLBs could not simply grow: with a
physically tagged L1 cache, the TLB sits on every load's critical path,
so a big (or multi-ported) TLB slows *all* memory references.  The
design the industry converged on — and a natural extension experiment
here — is a hierarchy: a tiny fully associative micro-TLB backed by a
larger, slower second level, with the software walk only on an L2 miss.

:class:`TwoLevelTLB` composes any two TLB models.  On an L1 miss the L2
is probed; an L2 hit refills L1 (charging ``l2_hit_cycles``); an L2 miss
refills both (charging the full software penalty, accounted by the
caller's penalty model exactly as for a flat TLB, with L2-hit cycles
reported separately in ``l2_hits``).

Inclusion is not enforced (refills go to both levels; evictions are
independent) — matching real micro-TLB designs, which tolerate
non-inclusive contents because entries are clean.
"""

from __future__ import annotations

from repro.tlb.base import TLB


class TwoLevelTLB(TLB):
    """A small L1 TLB backed by a larger L2 TLB.

    Statistics: the composite's ``stats`` count references and *overall*
    misses (both levels missed — the events that invoke the software
    handler); ``l2_hits`` counts L1 misses satisfied by the L2 (each
    costing an ``l2_hit_cycles`` stall rather than a full walk).
    """

    def __init__(self, level1: TLB, level2: TLB,
                 l2_hit_cycles: float = 4.0) -> None:
        super().__init__(level1.entries + level2.entries, sets=1)
        self._sets = []  # entries live in the component levels
        self.level1 = level1
        self.level2 = level2
        self.l2_hit_cycles = l2_hit_cycles
        self.l2_hits = 0

    def access(self, block: int, chunk: int, large: bool = False) -> bool:
        if self.level1.access(block, chunk, large):
            self.stats.record_hit(large)
            return True
        # The L1 model has already filled itself on its miss; the probe
        # below decides whether that fill came from L2 or from the walk.
        if self.level2.access(block, chunk, large):
            self.l2_hits += 1
            self.stats.record_hit(large)
            return True
        self.stats.record_miss(large)
        return False

    def extra_hit_cycles(self) -> float:
        """Total stall cycles spent on L2 hits (beyond L1 hit time)."""
        return self.l2_hits * self.l2_hit_cycles

    def invalidate_small_pages_of_chunk(
        self, chunk: int, blocks_per_chunk: int
    ) -> int:
        removed = self.level1.invalidate_small_pages_of_chunk(
            chunk, blocks_per_chunk
        ) + self.level2.invalidate_small_pages_of_chunk(
            chunk, blocks_per_chunk
        )
        self.stats.invalidations += removed
        return removed

    def invalidate_large_page(self, chunk: int) -> int:
        removed = self.level1.invalidate_large_page(
            chunk
        ) + self.level2.invalidate_large_page(chunk)
        self.stats.invalidations += removed
        return removed

    def flush(self) -> None:
        self.level1.flush()
        self.level2.flush()

    def reset(self) -> None:
        self.level1.reset()
        self.level2.reset()
        self.stats.reset()
        self.l2_hits = 0

    def resident(self):
        seen = set()
        for entry in self.level1.resident():
            seen.add(entry)
            yield entry
        for entry in self.level2.resident():
            if entry not in seen:
                yield entry

    def occupancy(self) -> int:
        return len(set(self.level1.resident()) | set(self.level2.resident()))

    def __repr__(self) -> str:
        return (
            f"TwoLevelTLB(l1={self.level1!r}, l2={self.level2!r}, "
            f"l2_hit_cycles={self.l2_hit_cycles})"
        )
