"""Trace substrate: memory-reference traces, file formats, statistics.

The paper drives every experiment from address traces of SPARC programs;
this package is the equivalent substrate.  See :mod:`repro.workloads` for
the synthetic generators that stand in for the original SPEC'89 traces.
"""

from repro.trace.mix import interleave_with_contexts, round_robin_mix
from repro.trace.record import (
    KIND_IFETCH,
    KIND_LOAD,
    KIND_STORE,
    Reference,
    Trace,
)
from repro.trace.stats import (
    TraceStatistics,
    compute_statistics,
    page_reference_histogram,
)
from repro.trace.trace_io import (
    read_text_trace,
    read_trace,
    write_text_trace,
    write_trace,
)

__all__ = [
    "KIND_IFETCH",
    "KIND_LOAD",
    "KIND_STORE",
    "Reference",
    "Trace",
    "TraceStatistics",
    "compute_statistics",
    "interleave_with_contexts",
    "page_reference_histogram",
    "read_text_trace",
    "read_trace",
    "round_robin_mix",
    "write_text_trace",
    "write_trace",
]
