"""``repro-trace``: command-line trace utilities.

Subcommands:

* ``generate`` — produce a workload trace file (binary ``.rpt`` or
  dinero-style text);
* ``info`` — print a trace's statistics (length, footprint, mix,
  working set at a chosen window);
* ``convert`` — translate between the binary and text formats;
* ``mix`` — round-robin interleave several trace files into one
  multiprogrammed trace.

These make the library's traces interoperable with external simulators
(the text format is dinero-compatible) without writing Python.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError, TraceFormatError
from repro.stacksim.working_set import average_working_set_bytes
from repro.trace.mix import round_robin_mix
from repro.trace.record import Trace
from repro.trace.stats import compute_statistics
from repro.trace.trace_io import (
    BINARY_MAGICS,
    read_text_trace,
    read_trace,
    sniff_magic,
    write_text_trace,
    write_trace,
)
from repro.types import PAGE_4KB, format_size
from repro.workloads.registry import generate_trace, workload_names


def _load(path: str) -> Trace:
    """Read a trace, detecting the format from its magic bytes.

    The suffix is advisory only: a real binary trace is read as binary
    whatever it is named, and a file *named* ``.rpt`` that does not
    start with a binary magic gets a clear format error instead of a
    garbage binary parse (or a silent, wrong text parse).
    """
    magic = sniff_magic(path)
    if magic in BINARY_MAGICS:
        return read_trace(path)
    if path.endswith(".rpt"):
        raise TraceFormatError(
            f"{path}: named .rpt but does not start with a binary trace "
            f"magic (got {magic!r}); if this is a text trace, rename it "
            f"or convert it with 'repro-trace convert'"
        )
    return read_text_trace(path)


def _store(path: str, trace: Trace) -> None:
    """Write a trace, auto-detecting binary vs text by suffix."""
    if path.endswith(".rpt"):
        write_trace(path, trace)
    else:
        write_text_trace(path, trace)


def _cmd_generate(args: argparse.Namespace) -> int:
    trace = generate_trace(args.workload, args.length, args.seed)
    _store(args.output, trace)
    print(
        f"wrote {args.length:,} references of {args.workload} "
        f"(seed {args.seed}) to {args.output}"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    trace = _load(args.trace)
    stats = compute_statistics(trace, PAGE_4KB)
    print(f"name:            {trace.name}")
    print(f"references:      {stats.length:,}")
    print(f"refs/instr:      {trace.refs_per_instruction:.2f}")
    print(f"distinct pages:  {stats.distinct_pages:,} (4KB)")
    print(f"footprint:       {stats.footprint}")
    print(
        f"mix:             {stats.ifetch_count:,} ifetch / "
        f"{stats.load_count:,} load / {stats.store_count:,} store"
    )
    if args.window and stats.length:
        window = min(args.window, stats.length)
        ws = average_working_set_bytes(trace, PAGE_4KB, [window])[window]
        print(f"working set:     {format_size(ws)} (T={window:,}, 4KB)")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    trace = _load(args.source)
    _store(args.destination, trace)
    print(f"converted {args.source} -> {args.destination}")
    return 0


def _cmd_mix(args: argparse.Namespace) -> int:
    traces = [_load(path) for path in args.traces]
    mixed = round_robin_mix(
        traces, quantum=args.quantum, context_stride=args.stride
    )
    _store(args.output, mixed)
    print(
        f"mixed {len(traces)} traces ({len(mixed):,} references, "
        f"quantum {args.quantum:,}) into {args.output}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Generate, inspect, convert and mix memory traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a workload trace")
    generate.add_argument("workload", choices=workload_names())
    generate.add_argument("output", help=".rpt (binary) or .din (text) path")
    generate.add_argument("--length", type=int, default=400_000)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=_cmd_generate)

    info = sub.add_parser("info", help="print a trace's statistics")
    info.add_argument("trace")
    info.add_argument(
        "--window",
        type=int,
        default=50_000,
        help="working-set window T (0 to skip the measurement)",
    )
    info.set_defaults(func=_cmd_info)

    convert = sub.add_parser("convert", help="convert between formats")
    convert.add_argument("source")
    convert.add_argument("destination")
    convert.set_defaults(func=_cmd_convert)

    mix = sub.add_parser("mix", help="round-robin mix traces")
    mix.add_argument("traces", nargs="+")
    mix.add_argument("--output", required=True)
    mix.add_argument("--quantum", type=int, default=50_000)
    mix.add_argument(
        "--stride",
        type=int,
        default=1 << 30,
        help=(
            "address-space offset between programs (must exceed every "
            "program's highest address; default 1GB fits four contexts)"
        ),
    )
    mix.set_defaults(func=_cmd_mix)
    return parser


def main(argv=None) -> int:
    """Entry point for the ``repro-trace`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as error:
        print(f"repro-trace: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
