"""Multiprogramming trace mixer (beyond-paper extension).

The paper repeatedly notes (Sections 3.1 and 6) that its uniprogrammed
traces understate TLB pressure because they omit multiprogramming.  This
module provides the obvious experiment the authors could not run: a
round-robin mixer that interleaves several uniprogrammed traces with a
fixed scheduling quantum, placing each program in a disjoint slice of the
virtual address space (as distinct address-space contexts would).

Results from mixed traces are reported in the ablation benchmarks and are
clearly labelled as beyond the paper's own evaluation.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import TraceError
from repro.trace.record import Trace
from repro.types import VIRTUAL_ADDRESS_LIMIT, is_power_of_two


def _round_robin_order(
    lengths: Sequence[int], quantum: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Gather order of a round-robin interleave, fully vectorized.

    Position ``j`` of the mix takes reference ``gather[j]`` of the
    concatenation of the traces in input order, and ``contexts[j]`` is
    the index of the trace it came from.  The schedule is round-major,
    trace-minor: each round grants every unexhausted trace up to
    ``quantum`` references; exhausted traces (including empty ones) are
    skipped, so shorter traces simply stop being scheduled.

    Built as an arange/repeat construction: the (round, trace) segment
    lengths fall out of one clipped broadcast, segment source offsets
    are ``base + round * quantum``, and the gather array is a repeat of
    per-segment starts plus a global arange minus each segment's output
    start — no per-quantum Python loop.
    """
    lengths_arr = np.asarray(lengths, dtype=np.int64)
    total = int(lengths_arr.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int32)
    rounds = int(-(-int(lengths_arr.max()) // quantum))
    step = np.int64(quantum) * np.arange(rounds, dtype=np.int64)[:, None]
    seg_len = np.clip(lengths_arr[None, :] - step, 0, quantum)
    base = np.concatenate(([0], np.cumsum(lengths_arr)[:-1]))
    seg_src = base[None, :] + step
    seg_ctx = np.broadcast_to(
        np.arange(lengths_arr.size, dtype=np.int32), seg_len.shape
    )
    flat_len = seg_len.ravel()
    keep = flat_len > 0
    flat_len = flat_len[keep]
    flat_src = seg_src.ravel()[keep]
    out_start = np.cumsum(flat_len) - flat_len
    gather = np.repeat(flat_src - out_start, flat_len) + np.arange(
        total, dtype=np.int64
    )
    contexts = np.repeat(seg_ctx.ravel()[keep], flat_len)
    return gather, contexts


def _mix_name(traces: Sequence[Trace]) -> str:
    return "mix(" + ",".join(trace.name for trace in traces) + ")"


def _mix_rpi(traces: Sequence[Trace], total_length: int) -> float:
    total_instructions = sum(trace.instruction_count for trace in traces)
    return total_length / total_instructions if total_instructions else 1.0


def round_robin_mix(
    traces: Sequence[Trace],
    *,
    quantum: int = 50_000,
    context_stride: int = 1 << 28,
) -> Trace:
    """Interleave ``traces`` round-robin with ``quantum`` references per turn.

    Each trace ``i`` has its addresses offset by ``i * context_stride`` so
    distinct programs never share pages (modelling per-process address
    spaces without ASIDs, i.e. a TLB flushed conceptually by distinct
    mappings rather than literally).  The mix ends when every trace is
    exhausted; shorter traces simply stop being scheduled, and an input
    of entirely empty traces yields an empty mix.

    Args:
        traces: the uniprogrammed traces to interleave.
        quantum: scheduling quantum in references (paper-scale would be
            the OS time slice times references per cycle).
        context_stride: address-space offset between programs; must be a
            power of two larger than any program's footprint.
    """
    if not traces:
        raise TraceError("cannot mix zero traces")
    if quantum <= 0:
        raise TraceError("quantum must be positive")
    if not is_power_of_two(context_stride):
        raise TraceError("context_stride must be a power of two")
    if len(traces) * context_stride > VIRTUAL_ADDRESS_LIMIT:
        raise TraceError(
            f"{len(traces)} contexts of stride {context_stride:#x} do not "
            f"fit the 32-bit address space"
        )
    for index, trace in enumerate(traces):
        if trace.addresses.size and int(trace.addresses.max()) >= context_stride:
            raise TraceError(
                f"trace {trace.name!r} (index {index}) exceeds the "
                f"context stride {context_stride:#x}"
            )

    gather, contexts = _round_robin_order(
        [len(trace) for trace in traces], quantum
    )
    # uint32 arithmetic is exact here: the stride/footprint validations
    # above guarantee offset + address < 2**32.
    offsets = contexts.astype(np.uint32) * np.uint32(context_stride)
    addresses = np.concatenate([trace.addresses for trace in traces])
    kinds = np.concatenate([trace.kinds for trace in traces])
    return Trace(
        addresses[gather] + offsets,
        kinds[gather],
        name=_mix_name(traces),
        refs_per_instruction=_mix_rpi(traces, gather.size),
    )


def interleave_with_contexts(
    traces: Sequence[Trace],
    *,
    quantum: int = 50_000,
) -> Tuple[Trace, np.ndarray]:
    """Round-robin interleave preserving addresses, tagging contexts.

    Unlike :func:`round_robin_mix`, addresses are *not* offset into
    disjoint slices; instead each reference carries the index of the
    trace (address space) it came from, for consumption by
    :class:`repro.tlb.context.MultiprogrammedTLB` — programs may then
    genuinely alias each other's virtual pages, which is the point of
    ASIDs.

    Returns:
        ``(mixed_trace, contexts)`` where ``contexts[i]`` is the address
        space of reference ``i``.  An input of entirely empty traces
        yields an empty mix and an empty context array.
    """
    if not traces:
        raise TraceError("cannot mix zero traces")
    if quantum <= 0:
        raise TraceError("quantum must be positive")

    gather, contexts = _round_robin_order(
        [len(trace) for trace in traces], quantum
    )
    addresses = np.concatenate([trace.addresses for trace in traces])
    kinds = np.concatenate([trace.kinds for trace in traces])
    mixed = Trace(
        addresses[gather],
        kinds[gather],
        name=_mix_name(traces),
        refs_per_instruction=_mix_rpi(traces, gather.size),
    )
    return mixed, contexts
