"""Multiprogramming trace mixer (beyond-paper extension).

The paper repeatedly notes (Sections 3.1 and 6) that its uniprogrammed
traces understate TLB pressure because they omit multiprogramming.  This
module provides the obvious experiment the authors could not run: a
round-robin mixer that interleaves several uniprogrammed traces with a
fixed scheduling quantum, placing each program in a disjoint slice of the
virtual address space (as distinct address-space contexts would).

Results from mixed traces are reported in the ablation benchmarks and are
clearly labelled as beyond the paper's own evaluation.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import TraceError
from repro.trace.record import Trace
from repro.types import VIRTUAL_ADDRESS_LIMIT, is_power_of_two


def round_robin_mix(
    traces: Sequence[Trace],
    *,
    quantum: int = 50_000,
    context_stride: int = 1 << 28,
) -> Trace:
    """Interleave ``traces`` round-robin with ``quantum`` references per turn.

    Each trace ``i`` has its addresses offset by ``i * context_stride`` so
    distinct programs never share pages (modelling per-process address
    spaces without ASIDs, i.e. a TLB flushed conceptually by distinct
    mappings rather than literally).  The mix ends when every trace is
    exhausted; shorter traces simply stop being scheduled.

    Args:
        traces: the uniprogrammed traces to interleave.
        quantum: scheduling quantum in references (paper-scale would be
            the OS time slice times references per cycle).
        context_stride: address-space offset between programs; must be a
            power of two larger than any program's footprint.
    """
    if not traces:
        raise TraceError("cannot mix zero traces")
    if quantum <= 0:
        raise TraceError("quantum must be positive")
    if not is_power_of_two(context_stride):
        raise TraceError("context_stride must be a power of two")
    if len(traces) * context_stride > VIRTUAL_ADDRESS_LIMIT:
        raise TraceError(
            f"{len(traces)} contexts of stride {context_stride:#x} do not "
            f"fit the 32-bit address space"
        )
    for index, trace in enumerate(traces):
        if trace.addresses.size and int(trace.addresses.max()) >= context_stride:
            raise TraceError(
                f"trace {trace.name!r} (index {index}) exceeds the "
                f"context stride {context_stride:#x}"
            )

    address_parts = []
    kind_parts = []
    cursors = [0] * len(traces)
    remaining = sum(len(trace) for trace in traces)
    while remaining > 0:
        for index, trace in enumerate(traces):
            start = cursors[index]
            if start >= len(trace):
                continue
            stop = min(start + quantum, len(trace))
            offset = np.uint32(index * context_stride)
            address_parts.append(trace.addresses[start:stop] + offset)
            kind_parts.append(trace.kinds[start:stop])
            cursors[index] = stop
            remaining -= stop - start

    total_length = sum(part.size for part in address_parts)
    total_instructions = sum(trace.instruction_count for trace in traces)
    rpi = total_length / total_instructions if total_instructions else 1.0
    return Trace(
        np.concatenate(address_parts),
        np.concatenate(kind_parts),
        name="mix(" + ",".join(trace.name for trace in traces) + ")",
        refs_per_instruction=rpi,
    )


def interleave_with_contexts(
    traces: Sequence[Trace],
    *,
    quantum: int = 50_000,
) -> Tuple[Trace, np.ndarray]:
    """Round-robin interleave preserving addresses, tagging contexts.

    Unlike :func:`round_robin_mix`, addresses are *not* offset into
    disjoint slices; instead each reference carries the index of the
    trace (address space) it came from, for consumption by
    :class:`repro.tlb.context.MultiprogrammedTLB` — programs may then
    genuinely alias each other's virtual pages, which is the point of
    ASIDs.

    Returns:
        ``(mixed_trace, contexts)`` where ``contexts[i]`` is the address
        space of reference ``i``.
    """
    if not traces:
        raise TraceError("cannot mix zero traces")
    if quantum <= 0:
        raise TraceError("quantum must be positive")

    address_parts = []
    kind_parts = []
    context_parts = []
    cursors = [0] * len(traces)
    remaining = sum(len(trace) for trace in traces)
    while remaining > 0:
        for index, trace in enumerate(traces):
            start = cursors[index]
            if start >= len(trace):
                continue
            stop = min(start + quantum, len(trace))
            address_parts.append(trace.addresses[start:stop])
            kind_parts.append(trace.kinds[start:stop])
            context_parts.append(
                np.full(stop - start, index, dtype=np.int32)
            )
            cursors[index] = stop
            remaining -= stop - start

    total_length = sum(part.size for part in address_parts)
    total_instructions = sum(trace.instruction_count for trace in traces)
    rpi = total_length / total_instructions if total_instructions else 1.0
    mixed = Trace(
        np.concatenate(address_parts),
        np.concatenate(kind_parts),
        name="mix(" + ",".join(trace.name for trace in traces) + ")",
        refs_per_instruction=rpi,
    )
    return mixed, np.concatenate(context_parts)
