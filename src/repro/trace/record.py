"""Memory-reference traces.

A :class:`Trace` is the unit of input to every simulator in this library:
an ordered sequence of virtual-address references, as produced by the
paper's tracing tools (``shade``/``shadow``) for SPARC programs.  For
simulation speed the references are held in numpy arrays rather than as a
list of record objects; :class:`Reference` exists for tests, examples and
readable construction of tiny traces.

A trace also carries the two pieces of metadata the paper's Table 3.1
reports per workload: the workload name and the references-per-instruction
ratio (RPI), which converts miss *ratios* into misses *per instruction*
and hence into CPI.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Union

import numpy as np

from repro.errors import TraceError
from repro.types import VIRTUAL_ADDRESS_LIMIT

#: Reference kinds, stored as uint8 in the kind array.
KIND_IFETCH = 0
KIND_LOAD = 1
KIND_STORE = 2

_KIND_NAMES = {KIND_IFETCH: "ifetch", KIND_LOAD: "load", KIND_STORE: "store"}
_KIND_CODES = {name: code for code, name in _KIND_NAMES.items()}


@dataclass(frozen=True)
class Reference:
    """A single memory reference: a virtual address plus its kind."""

    address: int
    kind: int = KIND_LOAD

    def __post_init__(self) -> None:
        if not 0 <= self.address < VIRTUAL_ADDRESS_LIMIT:
            raise TraceError(f"address {self.address:#x} outside 32-bit space")
        if self.kind not in _KIND_NAMES:
            raise TraceError(f"unknown reference kind {self.kind}")

    @property
    def kind_name(self) -> str:
        """Human-readable kind (``"ifetch"``, ``"load"`` or ``"store"``)."""
        return _KIND_NAMES[self.kind]


def kind_code(name: str) -> int:
    """Map a kind name to its uint8 code (inverse of ``Reference.kind_name``)."""
    try:
        return _KIND_CODES[name]
    except KeyError:
        raise TraceError(f"unknown reference kind name {name!r}") from None


class Trace:
    """An immutable sequence of memory references with workload metadata.

    Attributes:
        addresses: uint32 numpy array of virtual byte addresses.
        kinds: uint8 numpy array of reference kinds, same length.
        name: workload name (e.g. ``"matrix300"``), free-form.
        refs_per_instruction: average memory references per instruction
            executed (Table 3.1's "RPI"); used by CPI metrics.
    """

    __slots__ = (
        "addresses",
        "kinds",
        "name",
        "refs_per_instruction",
        "_fingerprint",
    )

    def __init__(
        self,
        addresses: Union[np.ndarray, Sequence[int]],
        kinds: Union[np.ndarray, Sequence[int], None] = None,
        *,
        name: str = "anonymous",
        refs_per_instruction: float = 1.35,
    ) -> None:
        address_array = np.ascontiguousarray(addresses, dtype=np.uint32)
        if address_array.ndim != 1:
            raise TraceError("trace addresses must be a one-dimensional array")
        if kinds is None:
            kind_array = np.full(address_array.shape, KIND_LOAD, dtype=np.uint8)
        else:
            kind_array = np.ascontiguousarray(kinds, dtype=np.uint8)
            if kind_array.shape != address_array.shape:
                raise TraceError(
                    f"kinds length {kind_array.shape} does not match "
                    f"addresses length {address_array.shape}"
                )
            if kind_array.size and kind_array.max() > KIND_STORE:
                raise TraceError("kind array contains unknown kind codes")
        if refs_per_instruction <= 0:
            raise TraceError("refs_per_instruction must be positive")
        address_array.setflags(write=False)
        kind_array.setflags(write=False)
        self.addresses = address_array
        self.kinds = kind_array
        self.name = name
        self.refs_per_instruction = float(refs_per_instruction)
        self._fingerprint = None

    @classmethod
    def from_references(
        cls,
        references: Iterable[Reference],
        *,
        name: str = "anonymous",
        refs_per_instruction: float = 1.35,
    ) -> "Trace":
        """Build a trace from :class:`Reference` objects (tests/examples)."""
        refs = list(references)
        return cls(
            np.array([r.address for r in refs], dtype=np.uint32),
            np.array([r.kind for r in refs], dtype=np.uint8),
            name=name,
            refs_per_instruction=refs_per_instruction,
        )

    def __len__(self) -> int:
        return int(self.addresses.size)

    def __iter__(self) -> Iterator[Reference]:
        for address, kind in zip(self.addresses, self.kinds):
            yield Reference(int(address), int(kind))

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(
                self.addresses[index],
                self.kinds[index],
                name=self.name,
                refs_per_instruction=self.refs_per_instruction,
            )
        return Reference(int(self.addresses[index]), int(self.kinds[index]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            self.name == other.name
            and self.refs_per_instruction == other.refs_per_instruction
            and np.array_equal(self.addresses, other.addresses)
            and np.array_equal(self.kinds, other.kinds)
        )

    def __repr__(self) -> str:
        return (
            f"Trace(name={self.name!r}, length={len(self)}, "
            f"rpi={self.refs_per_instruction:.2f})"
        )

    @property
    def fingerprint(self) -> str:
        """SHA-256 over the trace's *content* (hex digest, cached).

        Covers the reference stream (addresses and kinds), the workload
        name and the RPI — everything that can change a simulation
        result.  Two traces with the same name but different contents
        (e.g. a regenerated workload after a generator bump) therefore
        get different fingerprints, which is what keys journals and the
        content-addressed result cache.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(self.name.encode("utf-8"))
            digest.update(np.float64(self.refs_per_instruction).tobytes())
            digest.update(np.uint64(len(self)).tobytes())
            digest.update(self.addresses.tobytes())
            digest.update(self.kinds.tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    @property
    def instruction_count(self) -> float:
        """Estimated instructions executed, derived from RPI.

        The paper's traces record memory references; instruction counts are
        recovered by dividing by the references-per-instruction ratio.
        """
        return len(self) / self.refs_per_instruction

    def head(self, count: int) -> "Trace":
        """Return a trace containing only the first ``count`` references."""
        return self[:count]

    def concat(self, other: "Trace", *, name: str = None) -> "Trace":
        """Concatenate two traces, averaging RPI weighted by length."""
        total = len(self) + len(other)
        if total == 0:
            rpi = self.refs_per_instruction
        else:
            instructions = self.instruction_count + other.instruction_count
            rpi = total / instructions if instructions else self.refs_per_instruction
        return Trace(
            np.concatenate([self.addresses, other.addresses]),
            np.concatenate([self.kinds, other.kinds]),
            name=name if name is not None else f"{self.name}+{other.name}",
            refs_per_instruction=rpi,
        )
