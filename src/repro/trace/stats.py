"""Trace statistics.

Summarises a trace the way the paper's Table 3.1 summarises each workload:
reference count, footprint (distinct memory touched) at a given page size,
and the mix of instruction fetches, loads and stores.  Also provides the
per-page reference histogram used by workload tests to check that a
generator produces the locality profile it claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.mem.address import page_numbers_array
from repro.trace.record import KIND_IFETCH, KIND_LOAD, KIND_STORE, Trace
from repro.types import PAGE_4KB, format_size


@dataclass(frozen=True)
class TraceStatistics:
    """Aggregate statistics of one trace at one page size.

    Attributes:
        length: total number of references.
        page_size: page size used for footprint accounting, in bytes.
        distinct_pages: number of distinct pages touched anywhere in the trace.
        footprint_bytes: ``distinct_pages * page_size``.
        ifetch_count: number of instruction-fetch references.
        load_count: number of data-load references.
        store_count: number of data-store references.
    """

    length: int
    page_size: int
    distinct_pages: int
    footprint_bytes: int
    ifetch_count: int
    load_count: int
    store_count: int

    @property
    def footprint(self) -> str:
        """Footprint formatted like the paper (e.g. ``"1.5MB"``)."""
        return format_size(self.footprint_bytes)

    @property
    def data_fraction(self) -> float:
        """Fraction of references that are data (loads + stores)."""
        if self.length == 0:
            return 0.0
        return (self.load_count + self.store_count) / self.length


def compute_statistics(trace: Trace, page_size: int = PAGE_4KB) -> TraceStatistics:
    """Compute :class:`TraceStatistics` for ``trace`` at ``page_size``."""
    pages = page_numbers_array(trace.addresses, page_size)
    distinct = int(np.unique(pages).size) if pages.size else 0
    kind_counts = np.bincount(trace.kinds, minlength=3) if len(trace) else [0, 0, 0]
    return TraceStatistics(
        length=len(trace),
        page_size=page_size,
        distinct_pages=distinct,
        footprint_bytes=distinct * page_size,
        ifetch_count=int(kind_counts[KIND_IFETCH]),
        load_count=int(kind_counts[KIND_LOAD]),
        store_count=int(kind_counts[KIND_STORE]),
    )


def page_reference_histogram(
    trace: Trace, page_size: int = PAGE_4KB
) -> Dict[int, int]:
    """Map each distinct page number to its reference count.

    Workload tests use this to assert locality properties, e.g. that a
    "hot region" program concentrates most references on few pages.
    """
    pages = page_numbers_array(trace.addresses, page_size)
    unique, counts = np.unique(pages, return_counts=True)
    return {int(page): int(count) for page, count in zip(unique, counts)}
