"""On-disk trace formats.

Two formats are supported:

* A compact **binary format** (``.rpt``) used by the benchmark harness to
  cache generated workload traces between runs.  Layout (little-endian)::

      magic   4 bytes   b"RPT1"
      nlen    uint32    length of the UTF-8 workload name
      name    nlen bytes
      rpi     float64   references per instruction
      count   uint64    number of references
      addrs   count * uint32
      kinds   count * uint8

* A human-readable **text format** compatible in spirit with the classic
  ``dinero`` trace format (one ``<kind> <hex-address>`` pair per line),
  for interchange with other simulators and for eyeballing tiny traces.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import TraceFormatError
from repro.trace.record import KIND_STORE, Trace

_MAGIC = b"RPT1"

#: dinero-style kind digits: 0=load, 1=store, 2=ifetch.
_DINERO_FROM_KIND = {0: "2", 1: "0", 2: "1"}
_KIND_FROM_DINERO = {"0": 1, "1": 2, "2": 0}

PathLike = Union[str, os.PathLike]


def write_trace(path: PathLike, trace: Trace) -> None:
    """Write ``trace`` to ``path`` in the binary ``.rpt`` format."""
    name_bytes = trace.name.encode("utf-8")
    with open(path, "wb") as stream:
        stream.write(_MAGIC)
        stream.write(np.uint32(len(name_bytes)).tobytes())
        stream.write(name_bytes)
        stream.write(np.float64(trace.refs_per_instruction).tobytes())
        stream.write(np.uint64(len(trace)).tobytes())
        stream.write(trace.addresses.tobytes())
        stream.write(trace.kinds.tobytes())


def read_trace(path: PathLike) -> Trace:
    """Read a binary ``.rpt`` trace written by :func:`write_trace`."""
    with open(path, "rb") as stream:
        magic = stream.read(4)
        if magic != _MAGIC:
            raise TraceFormatError(f"{path}: bad magic {magic!r}")
        name_length = _read_scalar(stream, np.uint32, path)
        name_bytes = stream.read(name_length)
        if len(name_bytes) != name_length:
            raise TraceFormatError(f"{path}: truncated workload name")
        rpi = _read_scalar(stream, np.float64, path)
        count = _read_scalar(stream, np.uint64, path)
        addresses = _read_array(stream, np.uint32, count, path)
        kinds = _read_array(stream, np.uint8, count, path)
        if stream.read(1):
            raise TraceFormatError(f"{path}: trailing bytes after trace data")
    return Trace(
        addresses,
        kinds,
        name=name_bytes.decode("utf-8"),
        refs_per_instruction=float(rpi),
    )


def write_text_trace(path: PathLike, trace: Trace) -> None:
    """Write ``trace`` as dinero-style ``<kind> <hex-address>`` lines."""
    with open(path, "w", encoding="ascii") as stream:
        for address, kind in zip(trace.addresses, trace.kinds):
            stream.write(f"{_DINERO_FROM_KIND[int(kind)]} {int(address):x}\n")


def read_text_trace(
    path: PathLike,
    *,
    name: str = None,
    refs_per_instruction: float = 1.35,
) -> Trace:
    """Read a dinero-style text trace.

    Blank lines and lines starting with ``#`` are ignored so traces can be
    annotated.  ``name`` defaults to the file's stem.
    """
    addresses = []
    kinds = []
    with open(path, "r", encoding="ascii") as stream:
        for line_number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != 2:
                raise TraceFormatError(
                    f"{path}:{line_number}: expected '<kind> <hex-address>'"
                )
            kind_field, address_field = fields
            if kind_field not in _KIND_FROM_DINERO:
                raise TraceFormatError(
                    f"{path}:{line_number}: unknown kind digit {kind_field!r}"
                )
            try:
                address = int(address_field, 16)
            except ValueError:
                raise TraceFormatError(
                    f"{path}:{line_number}: bad hex address {address_field!r}"
                ) from None
            addresses.append(address)
            kinds.append(_KIND_FROM_DINERO[kind_field])
    return Trace(
        np.array(addresses, dtype=np.uint32),
        np.array(kinds, dtype=np.uint8),
        name=name if name is not None else Path(path).stem,
        refs_per_instruction=refs_per_instruction,
    )


def _read_scalar(stream, dtype, path: PathLike) -> int:
    """Read one little-endian scalar of ``dtype`` or raise on truncation."""
    size = np.dtype(dtype).itemsize
    raw = stream.read(size)
    if len(raw) != size:
        raise TraceFormatError(f"{path}: truncated header")
    return dtype(np.frombuffer(raw, dtype=dtype)[0]).item()


def _read_array(stream, dtype, count: int, path: PathLike) -> np.ndarray:
    """Read ``count`` elements of ``dtype`` or raise on truncation."""
    size = int(count) * np.dtype(dtype).itemsize
    raw = stream.read(size)
    if len(raw) != size:
        raise TraceFormatError(f"{path}: truncated reference data")
    array = np.frombuffer(raw, dtype=dtype).copy()
    if dtype is np.uint8 and array.size and array.max() > KIND_STORE:
        raise TraceFormatError(f"{path}: kind array contains invalid codes")
    return array


__all__ = [
    "read_trace",
    "write_trace",
    "read_text_trace",
    "write_text_trace",
]
