"""On-disk trace formats.

Two formats are supported:

* A compact **binary format** (``.rpt``) used by the benchmark harness to
  cache generated workload traces between runs.  The current revision,
  ``RPT2``, carries a CRC32 so corruption is detected at read time
  instead of silently producing wrong simulation results.  Layout
  (little-endian)::

      magic   4 bytes   b"RPT2"
      crc     uint32    CRC32 of every byte after this field
      nlen    uint32    length of the UTF-8 workload name
      name    nlen bytes
      rpi     float64   references per instruction
      count   uint64    number of references
      addrs   count * uint32
      kinds   count * uint8

  The checksum covers the whole body (header fields and payload), so any
  single corrupted byte after the magic raises
  :class:`~repro.errors.TraceIntegrityError`.  Legacy checksumless
  ``RPT1`` files (the same layout minus the ``crc`` field) remain
  readable; :func:`write_trace` always emits ``RPT2``.  Writes go
  through a temporary file and an atomic rename, so a crash mid-write
  never leaves a half-written trace under the final name.

* A human-readable **text format** compatible in spirit with the classic
  ``dinero`` trace format (one ``<kind> <hex-address>`` pair per line),
  for interchange with other simulators and for eyeballing tiny traces.

A third, in-memory transport lives alongside the file formats: a
**shared-memory** layout (:func:`share_trace` / :func:`attach_shared_trace`)
that hands a trace to worker processes of :mod:`repro.parallel` as a
small :class:`SharedTraceHandle` instead of pickling megabytes of
reference stream through a pipe.  The layout mirrors the ``RPT`` payload
(addresses then kinds, little-endian) minus the header, which travels in
the handle.
"""

from __future__ import annotations

import atexit
import io
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Tuple, Union

import numpy as np

from repro.errors import TraceError, TraceFormatError, TraceIntegrityError
from repro.trace.record import KIND_STORE, Trace

#: Current binary magic (checksummed format).
MAGIC_RPT2 = b"RPT2"
#: Legacy binary magic (no checksum); still readable, never written.
MAGIC_RPT1 = b"RPT1"
#: Every magic that identifies a binary ``.rpt`` trace.
BINARY_MAGICS = (MAGIC_RPT2, MAGIC_RPT1)

#: dinero-style kind digits: 0=load, 1=store, 2=ifetch.
_DINERO_FROM_KIND = {0: "2", 1: "0", 2: "1"}
_KIND_FROM_DINERO = {"0": 1, "1": 2, "2": 0}

PathLike = Union[str, os.PathLike]


def _encode_body(trace: Trace) -> bytes:
    """Serialize everything after the (magic, crc) prefix."""
    name_bytes = trace.name.encode("utf-8")
    parts = [
        np.uint32(len(name_bytes)).tobytes(),
        name_bytes,
        np.float64(trace.refs_per_instruction).tobytes(),
        np.uint64(len(trace)).tobytes(),
        trace.addresses.tobytes(),
        trace.kinds.tobytes(),
    ]
    return b"".join(parts)


def write_trace(path: PathLike, trace: Trace) -> None:
    """Write ``trace`` to ``path`` in the binary ``RPT2`` format.

    The payload checksum is computed before any byte hits the disk and
    the file is renamed into place atomically, so readers never observe
    a torn or checksum-less file under ``path``.
    """
    body = _encode_body(trace)
    crc = zlib.crc32(body) & 0xFFFFFFFF
    temporary = Path(os.fspath(path)).with_name(
        Path(os.fspath(path)).name + ".tmp"
    )
    with open(temporary, "wb") as stream:
        stream.write(MAGIC_RPT2)
        stream.write(np.uint32(crc).tobytes())
        stream.write(body)
    os.replace(temporary, path)


def sniff_magic(path: PathLike) -> bytes:
    """Return the first four bytes of ``path`` (shorter files: what's there)."""
    with open(path, "rb") as stream:
        return stream.read(4)


def is_binary_trace(path: PathLike) -> bool:
    """True when ``path`` starts with a known binary trace magic."""
    return sniff_magic(path) in BINARY_MAGICS


def read_trace(path: PathLike) -> Trace:
    """Read a binary ``.rpt`` trace written by :func:`write_trace`.

    Accepts both the current ``RPT2`` format (CRC32-validated; a
    mismatch raises :class:`~repro.errors.TraceIntegrityError`) and
    legacy ``RPT1`` files, which carry no checksum and are parsed
    structurally only.
    """
    with open(path, "rb") as stream:
        magic = stream.read(4)
        if magic == MAGIC_RPT2:
            crc_raw = stream.read(4)
            if len(crc_raw) != 4:
                raise TraceFormatError(f"{path}: truncated header")
            expected = int(np.frombuffer(crc_raw, dtype=np.uint32)[0])
            body = stream.read()
            actual = zlib.crc32(body) & 0xFFFFFFFF
            if actual != expected:
                raise TraceIntegrityError(
                    f"{path}: payload checksum mismatch "
                    f"(stored {expected:#010x}, computed {actual:#010x}); "
                    f"the file is corrupt — regenerate or restore it"
                )
            return _parse_body(io.BytesIO(body), path)
        if magic == MAGIC_RPT1:
            return _parse_body(stream, path)
    raise TraceFormatError(f"{path}: bad magic {magic!r}")


def _parse_body(stream, path: PathLike) -> Trace:
    """Parse the shared RPT1/RPT2 body (everything after magic/crc)."""
    name_length = _read_scalar(stream, np.uint32, path)
    name_bytes = stream.read(name_length)
    if len(name_bytes) != name_length:
        raise TraceFormatError(f"{path}: truncated workload name")
    try:
        name = name_bytes.decode("utf-8")
    except UnicodeDecodeError:
        raise TraceFormatError(
            f"{path}: workload name is not valid UTF-8"
        ) from None
    rpi = _read_scalar(stream, np.float64, path)
    count = _read_scalar(stream, np.uint64, path)
    addresses = _read_array(stream, np.uint32, count, path)
    kinds = _read_array(stream, np.uint8, count, path)
    if stream.read(1):
        raise TraceFormatError(f"{path}: trailing bytes after trace data")
    return Trace(
        addresses,
        kinds,
        name=name,
        refs_per_instruction=float(rpi),
    )


def write_text_trace(path: PathLike, trace: Trace) -> None:
    """Write ``trace`` as dinero-style ``<kind> <hex-address>`` lines."""
    with open(path, "w", encoding="ascii") as stream:
        for address, kind in zip(trace.addresses, trace.kinds):
            stream.write(f"{_DINERO_FROM_KIND[int(kind)]} {int(address):x}\n")


def read_text_trace(
    path: PathLike,
    *,
    name: str = None,
    refs_per_instruction: float = 1.35,
) -> Trace:
    """Read a dinero-style text trace.

    Blank lines and lines starting with ``#`` are ignored so traces can be
    annotated.  ``name`` defaults to the file's stem.
    """
    addresses = []
    kinds = []
    with open(path, "r", encoding="ascii") as stream:
        for line_number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != 2:
                raise TraceFormatError(
                    f"{path}:{line_number}: expected '<kind> <hex-address>'"
                )
            kind_field, address_field = fields
            if kind_field not in _KIND_FROM_DINERO:
                raise TraceFormatError(
                    f"{path}:{line_number}: unknown kind digit {kind_field!r}"
                )
            try:
                address = int(address_field, 16)
            except ValueError:
                raise TraceFormatError(
                    f"{path}:{line_number}: bad hex address {address_field!r}"
                ) from None
            addresses.append(address)
            kinds.append(_KIND_FROM_DINERO[kind_field])
    return Trace(
        np.array(addresses, dtype=np.uint32),
        np.array(kinds, dtype=np.uint8),
        name=name if name is not None else Path(path).stem,
        refs_per_instruction=refs_per_instruction,
    )


def _read_scalar(stream, dtype, path: PathLike) -> int:
    """Read one little-endian scalar of ``dtype`` or raise on truncation."""
    size = np.dtype(dtype).itemsize
    raw = stream.read(size)
    if len(raw) != size:
        raise TraceFormatError(f"{path}: truncated header")
    return dtype(np.frombuffer(raw, dtype=dtype)[0]).item()


# ---------------------------------------------------------------------------
# Shared-memory transport (parent -> repro.parallel workers)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SharedTraceHandle:
    """Everything a worker needs to reattach a shared trace.

    A handle is a few hundred bytes however long the trace is; it is the
    *only* thing that crosses the task pipe.  ``fingerprint`` rides
    along so workers never recompute the SHA-256 the parent already has;
    ``crc`` (CRC32 of the segment payload at share time) lets a worker
    attach *verify* the bytes it maps — shared memory has no filesystem
    checksums, so a scribbled segment would otherwise simulate garbage
    silently.
    """

    shm_name: str
    count: int
    name: str
    refs_per_instruction: float
    fingerprint: str
    crc: int = 0


#: Parent-side: fingerprint -> (SharedMemory, handle), so the same trace
#: shared twice reuses one segment for the life of the process.
_SHARED_SEGMENTS: Dict[str, Tuple[object, SharedTraceHandle]] = {}
#: Worker-side: shm name -> (SharedMemory, Trace) attach cache, so a
#: worker maps each distinct trace at most once.
_ATTACHED_SEGMENTS: Dict[str, Tuple[object, Trace]] = {}
_SHM_ATEXIT = False


def _quiet_close(shm) -> None:
    """Close a segment even if numpy views still reference its buffer.

    ``SharedMemory.close`` raises ``BufferError`` while exported views
    exist — and raises *again* from ``__del__`` as an "Exception
    ignored" message.  Detaching the Python wrappers instead lets the
    C-level mapping die with its last view (or at process exit) while
    the file descriptor is released immediately.
    """
    try:
        shm.close()
    except BufferError:
        shm._buf = None
        shm._mmap = None
        try:
            shm.close()  # releases the fd; nothing else is left
        except (BufferError, OSError):
            pass


def _tracker_unregister(shm) -> None:
    """Stop the resource tracker from unlinking a segment we only attached.

    On Python <= 3.12, attaching registers the segment with the resource
    tracker exactly like creating it does, so a worker exiting would
    unlink memory the parent still owns (and warn about leaks).  The
    parent keeps sole unlink responsibility.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # noqa: BLE001 - best effort, platform-dependent
        pass


def share_trace(trace: Trace) -> SharedTraceHandle:
    """Publish ``trace`` in shared memory and return its handle.

    Idempotent per trace content: sharing the same trace (by
    fingerprint) twice returns the same segment.  Segments live until
    :func:`release_shared_traces` or process exit.
    """
    global _SHM_ATEXIT
    from multiprocessing import shared_memory

    fingerprint = trace.fingerprint
    cached = _SHARED_SEGMENTS.get(fingerprint)
    if cached is not None:
        return cached[1]
    count = len(trace)
    payload = count * 5  # uint32 addresses + uint8 kinds
    shm = shared_memory.SharedMemory(create=True, size=max(1, payload))
    if count:
        addresses = np.frombuffer(shm.buf, dtype=np.uint32, count=count)
        addresses[:] = trace.addresses
        kinds = np.frombuffer(
            shm.buf, dtype=np.uint8, count=count, offset=count * 4
        )
        kinds[:] = trace.kinds
        del addresses, kinds  # release buffer views before any close()
    crc = zlib.crc32(bytes(shm.buf[: payload or 1])) & 0xFFFFFFFF
    handle = SharedTraceHandle(
        shm_name=shm.name,
        count=count,
        name=trace.name,
        refs_per_instruction=trace.refs_per_instruction,
        fingerprint=fingerprint,
        crc=crc,
    )
    _SHARED_SEGMENTS[fingerprint] = (shm, handle)
    if not _SHM_ATEXIT:
        _SHM_ATEXIT = True
        atexit.register(release_shared_traces)
    return handle


def attach_shared_trace(handle: SharedTraceHandle) -> Trace:
    """Map a shared trace into this process (cached per segment name).

    The returned trace's arrays are zero-copy views of the shared
    segment; repeated attaches of the same handle return the same
    :class:`Trace` object.
    """
    from multiprocessing import shared_memory

    cached = _ATTACHED_SEGMENTS.get(handle.shm_name)
    if cached is not None:
        return cached[1]
    # The sharing process already holds a parent-side mapping: reuse it
    # rather than re-attach (also makes jobs=1 paths segment-free).
    from repro.parallel.pool import in_worker

    owned = _SHARED_SEGMENTS.get(handle.fingerprint)
    owner = owned is not None and owned[1].shm_name == handle.shm_name
    try:
        if owner:
            shm = owned[0]
        else:
            shm = shared_memory.SharedMemory(name=handle.shm_name)
            _tracker_unregister(shm)
        if handle.crc and (in_worker() or not owner):
            # Worker-side attach (fresh, or a forked copy of the
            # parent's own mapping — same shared pages either way):
            # verify the payload actually is what was shared before
            # simulating from it.  The sharing parent's direct reuse
            # needs no check — that is the memory the CRC came from.
            payload = handle.count * 5
            actual = zlib.crc32(bytes(shm.buf[: payload or 1])) & 0xFFFFFFFF
            if actual != handle.crc:
                if not owner:
                    _quiet_close(shm)
                raise TraceIntegrityError(
                    f"shared trace segment {handle.shm_name!r} "
                    f"({handle.name}): payload CRC {actual:#010x} != "
                    f"shared {handle.crc:#010x}; the segment was "
                    f"corrupted after sharing"
                )
    except FileNotFoundError:
        raise TraceError(
            f"shared trace segment {handle.shm_name!r} is gone; the "
            f"sharing process released it (or exited) before this attach"
        ) from None
    addresses = np.frombuffer(shm.buf, dtype=np.uint32, count=handle.count)
    kinds = np.frombuffer(
        shm.buf, dtype=np.uint8, count=handle.count, offset=handle.count * 4
    )
    trace = Trace(
        addresses,
        kinds,
        name=handle.name,
        refs_per_instruction=handle.refs_per_instruction,
    )
    trace._fingerprint = handle.fingerprint
    _ATTACHED_SEGMENTS[handle.shm_name] = (shm, trace)
    return trace


def release_shared_traces() -> None:
    """Drop every segment this process shared or attached (idempotent).

    Traces returned by :func:`attach_shared_trace` must not be used
    afterwards; their arrays view freed memory mappings.  A mapping that
    still has live numpy views is left to the garbage collector rather
    than force-closed.
    """
    shared = list(_SHARED_SEGMENTS.values())
    _SHARED_SEGMENTS.clear()
    for shm, _handle in shared:
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass
        _quiet_close(shm)
    attached = list(_ATTACHED_SEGMENTS.values())
    _ATTACHED_SEGMENTS.clear()
    for shm, _trace in attached:
        if not any(shm is owned for owned, _h in shared):
            _quiet_close(shm)


def _read_array(stream, dtype, count: int, path: PathLike) -> np.ndarray:
    """Read ``count`` elements of ``dtype`` or raise on truncation."""
    size = int(count) * np.dtype(dtype).itemsize
    raw = stream.read(size)
    if len(raw) != size:
        raise TraceFormatError(f"{path}: truncated reference data")
    array = np.frombuffer(raw, dtype=dtype).copy()
    if dtype is np.uint8 and array.size and array.max() > KIND_STORE:
        raise TraceFormatError(f"{path}: kind array contains invalid codes")
    return array


__all__ = [
    "BINARY_MAGICS",
    "MAGIC_RPT1",
    "MAGIC_RPT2",
    "is_binary_trace",
    "read_trace",
    "sniff_magic",
    "write_trace",
    "read_text_trace",
    "write_text_trace",
]
