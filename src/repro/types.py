"""Shared primitive types and constants.

The paper studies a SPARC-like machine with byte-addressed 32-bit virtual
addresses and power-of-two, self-aligned pages.  This module centralises
those conventions: page-size constants, power-of-two helpers, and the
:class:`PageSizePair` describing a two-page-size configuration (the paper's
running example is 4KB small pages inside 32KB chunks).

All addresses in this library are plain Python ``int`` (or numpy integer
arrays in the hot paths); there is deliberately no wrapper class around an
address, per the "explicit is better than implicit" rule — a wrapper would
add per-reference overhead in simulation inner loops for no clarity gain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PageSizeError

#: One kibibyte, in bytes.
KB = 1024

#: One mebibyte, in bytes.
MB = 1024 * KB

#: The paper's baseline (small) page size.
PAGE_4KB = 4 * KB

#: Alternative single page sizes studied in Figures 4.1 / 4.2 / 5.x.
PAGE_8KB = 8 * KB
PAGE_16KB = 16 * KB
PAGE_32KB = 32 * KB
PAGE_64KB = 64 * KB

#: Page sizes that appear anywhere in the paper's evaluation.
SINGLE_PAGE_SIZES = (PAGE_4KB, PAGE_8KB, PAGE_16KB, PAGE_32KB, PAGE_64KB)

#: Width of the simulated virtual address space, in bits (SPARC V8).
VIRTUAL_ADDRESS_BITS = 32

#: One past the largest representable virtual address.
VIRTUAL_ADDRESS_LIMIT = 1 << VIRTUAL_ADDRESS_BITS


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive integral power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return ``log2(value)`` for an exact power of two.

    Raises :class:`PageSizeError` if ``value`` is not a power of two,
    because every caller in this library is validating a page or set count.
    """
    if not is_power_of_two(value):
        raise PageSizeError(f"{value} is not a power of two")
    return value.bit_length() - 1


def validate_page_size(page_size: int) -> int:
    """Validate a single page size and return it unchanged.

    A page size must be a power of two and at least 512 bytes (no real
    architecture in the paper's survey goes below 512B; this also guards
    against accidentally passing a page *count*).
    """
    if not is_power_of_two(page_size):
        raise PageSizeError(f"page size {page_size} is not a power of two")
    if page_size < 512:
        raise PageSizeError(f"page size {page_size} is implausibly small")
    if page_size >= VIRTUAL_ADDRESS_LIMIT:
        raise PageSizeError(
            f"page size {page_size} does not fit the "
            f"{VIRTUAL_ADDRESS_BITS}-bit address space"
        )
    return page_size


@dataclass(frozen=True)
class PageSizePair:
    """A two-page-size configuration: a small page inside a large "chunk".

    The paper (Section 3.4) views the address space as aligned chunks of the
    large page size; each chunk is mapped either as one large page or as
    ``blocks_per_chunk`` small pages.  Both sizes must be powers of two and
    the large size a multiple of the small size, so physical addresses can
    be formed by concatenation (Section 1).

    Attributes:
        small: the small page size in bytes (paper: 4KB).
        large: the large page size in bytes (paper: 32KB; also 16KB, 64KB).
    """

    small: int
    large: int

    def __post_init__(self) -> None:
        validate_page_size(self.small)
        validate_page_size(self.large)
        if self.large <= self.small:
            raise PageSizeError(
                f"large page ({self.large}) must exceed small page ({self.small})"
            )
        # Powers of two with large > small always divide evenly, but keep the
        # check explicit so the invariant is stated where it matters.
        if self.large % self.small != 0:
            raise PageSizeError(
                f"large page ({self.large}) must be a multiple of the "
                f"small page ({self.small})"
            )

    @property
    def blocks_per_chunk(self) -> int:
        """Number of small-page blocks in one large-page chunk (paper: 8)."""
        return self.large // self.small

    @property
    def small_shift(self) -> int:
        """log2 of the small page size (bit position of the small VPN)."""
        return log2_exact(self.small)

    @property
    def large_shift(self) -> int:
        """log2 of the large page size (bit position of the large VPN)."""
        return log2_exact(self.large)

    def chunk_of(self, address: int) -> int:
        """Return the chunk number (large-page number) containing ``address``."""
        return address >> self.large_shift

    def block_of(self, address: int) -> int:
        """Return the global small-page (block) number containing ``address``."""
        return address >> self.small_shift

    def block_within_chunk(self, address: int) -> int:
        """Return the index (0..blocks_per_chunk-1) of the block inside its chunk."""
        return (address >> self.small_shift) & (self.blocks_per_chunk - 1)

    def __str__(self) -> str:
        return f"{self.small // KB}KB/{self.large // KB}KB"


#: The paper's primary two-page-size configuration.
PAIR_4KB_32KB = PageSizePair(PAGE_4KB, PAGE_32KB)

#: The alternative pairs the paper mentions collecting data for (Section 3.2).
PAIR_4KB_16KB = PageSizePair(PAGE_4KB, PAGE_16KB)
PAIR_4KB_64KB = PageSizePair(PAGE_4KB, PAGE_64KB)


def format_size(num_bytes: float) -> str:
    """Format a byte count the way the paper does (e.g. ``"32KB"``, ``"1.5MB"``).

    Values below 1MB are shown in KB, others in MB; fractional parts are
    kept to one decimal and dropped when integral.
    """
    if num_bytes >= MB:
        value, unit = num_bytes / MB, "MB"
    else:
        value, unit = num_bytes / KB, "KB"
    if value == int(value):
        return f"{int(value)}{unit}"
    return f"{value:.1f}{unit}"
