"""Synthetic models of the paper's twelve traced programs (Table 3.1).

Each model reproduces its program's documented locality archetypes —
dense sweeps, strided matrix walks, lockstep vector arrays, scattered or
packed hot data — so that the per-program TLB and working-set behaviour
the paper reports re-emerges from first principles.  See DESIGN.md for
the trace-substitution rationale.
"""

from repro.workloads.base import (
    CATEGORY_LARGE,
    CATEGORY_SMALL,
    StreamMix,
    SyntheticWorkload,
)
from repro.workloads.patterns import (
    DenseZipf,
    HotSpot,
    LockstepSweep,
    PhaseAlternator,
    PointerChase,
    SequentialRuns,
    SequentialSweep,
    SparseHot,
    Stream,
    StridedSweep,
)
from repro.workloads.regions import Region, staggered_base
from repro.workloads.registry import (
    WORKLOAD_ORDER,
    all_workloads,
    cached_trace,
    generate_trace,
    get_workload,
    workload_names,
)

__all__ = [
    "CATEGORY_LARGE",
    "CATEGORY_SMALL",
    "DenseZipf",
    "HotSpot",
    "LockstepSweep",
    "PhaseAlternator",
    "PointerChase",
    "Region",
    "SequentialRuns",
    "SequentialSweep",
    "SparseHot",
    "Stream",
    "StreamMix",
    "StridedSweep",
    "SyntheticWorkload",
    "staggered_base",
    "WORKLOAD_ORDER",
    "all_workloads",
    "cached_trace",
    "generate_trace",
    "get_workload",
    "workload_names",
]
