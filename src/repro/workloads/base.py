"""Framework for synthetic program models.

A :class:`SyntheticWorkload` assembles weighted access-pattern streams
(code fetch, array sweeps, heap walks...) into a single reference trace
with deterministic pseudo-randomness: the same ``(name, seed, length)``
always yields byte-identical traces, so experiments are reproducible and
traces can be cached on disk.

The twelve concrete models in :mod:`repro.workloads.programs` stand in
for the paper's SPEC'89-era SPARC traces (see DESIGN.md for the
substitution argument).  Each declares the Table 3.1 metadata — working
set size class and references-per-instruction — plus the locality
archetypes the original program is documented to have.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.trace.record import KIND_IFETCH, KIND_LOAD, KIND_STORE, Trace
from repro.workloads.patterns import Stream

#: Working-set size classes used by the paper's result presentation
#: (Section 5: "small" < 1MB, "large" > 1MB at 4KB pages).
CATEGORY_SMALL = "small"
CATEGORY_LARGE = "large"


@dataclass(frozen=True)
class StreamMix:
    """One component stream of a workload.

    Attributes:
        stream: the address source.
        weight: relative share of references drawn from this stream.
        kind: base reference kind (KIND_IFETCH or KIND_LOAD).
        store_fraction: for data streams, the fraction of references
            turned into stores.
    """

    stream: Stream
    weight: float
    kind: int = KIND_LOAD
    store_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise WorkloadError(f"stream weight must be positive: {self.weight}")
        if not 0.0 <= self.store_fraction <= 1.0:
            raise WorkloadError("store_fraction must lie in [0, 1]")
        if self.kind == KIND_IFETCH and self.store_fraction:
            raise WorkloadError("instruction fetches cannot be stores")


class SyntheticWorkload(ABC):
    """Base class for the twelve program models.

    Subclasses set the class attributes and implement :meth:`_build`,
    returning the stream mix; :meth:`generate` does the deterministic
    interleaving.
    """

    #: Program name as it appears in the paper's tables.
    name: str = "abstract"
    #: One-line description of the original program.
    description: str = ""
    #: CATEGORY_SMALL or CATEGORY_LARGE (Table 3.1 working-set class).
    category: str = CATEGORY_SMALL
    #: Memory references per instruction (Table 3.1's RPI).
    refs_per_instruction: float = 1.35
    #: Nominal 4KB working-set scale in bytes, for documentation/tests.
    nominal_footprint: int = 0

    @abstractmethod
    def _build(self, rng: np.random.Generator) -> List[StreamMix]:
        """Construct the component streams using ``rng`` for any seeding."""

    def generate(self, length: int, seed: int = 0) -> Trace:
        """Generate a ``length``-reference trace, deterministic in ``seed``."""
        if length < 0:
            raise WorkloadError(f"trace length must be non-negative: {length}")
        rng = np.random.default_rng(self._seed_material(seed))
        mixes = self._build(rng)
        if not mixes:
            raise WorkloadError(f"workload {self.name!r} built no streams")

        weights = np.array([mix.weight for mix in mixes], dtype=np.float64)
        weights /= weights.sum()
        choices = rng.choice(len(mixes), size=length, p=weights)

        addresses = np.empty(length, dtype=np.uint32)
        kinds = np.empty(length, dtype=np.uint8)
        for index, mix in enumerate(mixes):
            mask = choices == index
            count = int(mask.sum())
            if count == 0:
                continue
            addresses[mask] = mix.stream.take(count)
            if mix.store_fraction > 0.0:
                stores = rng.random(count) < mix.store_fraction
                kinds[mask] = np.where(stores, KIND_STORE, mix.kind).astype(
                    np.uint8
                )
            else:
                kinds[mask] = mix.kind
        return Trace(
            addresses,
            kinds,
            name=self.name,
            refs_per_instruction=self.refs_per_instruction,
        )

    def _seed_material(self, seed: int) -> Sequence[int]:
        """Mix the user seed with a stable hash of the workload name."""
        return [seed, zlib.crc32(self.name.encode("utf-8"))]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
