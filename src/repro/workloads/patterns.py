"""Composable, stateful access-pattern streams.

Each stream produces virtual addresses with one archetypal locality
structure — the building blocks from which the twelve program models are
assembled.  Streams are *stateful*: successive :meth:`~Stream.take`
calls continue where the previous batch stopped, so interleaving several
streams models a program whose loops progress concurrently.

All streams generate vectorised numpy batches; the per-reference cost of
trace generation is a few nanoseconds, which keeps million-reference
experiments cheap.

The catalogue (pattern -> programs it models):

* :class:`SequentialSweep` — row-major array scans (matrix300's A/C,
  eqntott's bit vectors).
* :class:`StridedSweep` — column-major scans touching a new page every
  couple of references (matrix300's B operand).
* :class:`LockstepSweep` — several arrays swept at one shared index
  (tomcatv's vectorised mesh arrays); the source of the paper's
  set-conflict anomaly.
* :class:`HotSpot` — uniform references within a small resident region
  (interpreter cores, device-driver state).
* :class:`SparseHot` — a Zipf-weighted set of hot *blocks scattered one
  per chunk*, the access shape that starves the promotion policy
  (espresso, worm).
* :class:`DenseZipf` — Zipf-weighted pages packed contiguously, the
  promotable counterpart (caches, symbol tables).
* :class:`PointerChase` — a random walk with geometric jump lengths
  (lisp heaps, event queues).
* :class:`SequentialRuns` — short sequential bursts at random starting
  pages (instruction fetch with taken branches).
* :class:`PhaseAlternator` — switches among sub-streams every N
  references (nasa7's seven kernels).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.regions import Region


class Stream(ABC):
    """A stateful source of virtual-address batches."""

    @abstractmethod
    def take(self, count: int) -> np.ndarray:
        """Return the next ``count`` addresses as a uint32 array."""


def _check_count(count: int) -> None:
    if count < 0:
        raise WorkloadError(f"cannot take a negative count: {count}")


class SequentialSweep(Stream):
    """Wraps repeatedly through a region at a fixed small stride.

    Models unit-stride array scans: spatially dense, so every page of the
    region is touched and reused ``page_size / stride`` times per pass.
    """

    def __init__(self, region: Region, stride: int = 8) -> None:
        if stride <= 0:
            raise WorkloadError(f"stride must be positive, got {stride}")
        self.region = region
        self.stride = stride
        self._offset = 0

    def take(self, count: int) -> np.ndarray:
        _check_count(count)
        offsets = (
            self._offset + self.stride * np.arange(count, dtype=np.int64)
        ) % self.region.size
        self._offset = int(
            (self._offset + self.stride * count) % self.region.size
        )
        return (self.region.base + offsets).astype(np.uint32)


class StridedSweep(Stream):
    """Column-major style sweep: large stride, wrapping with a skew.

    Each wrap advances the starting offset by ``element`` bytes so that
    successive "columns" are distinct, exactly like walking a row-major
    matrix by columns.  With ``stride`` of a few KB the stream touches a
    new small page every reference or two — the TLB killer the paper's
    matrix workloads exhibit.
    """

    def __init__(self, region: Region, stride: int, element: int = 8) -> None:
        if stride <= 0 or element <= 0:
            raise WorkloadError("stride and element must be positive")
        if stride > region.size:
            raise WorkloadError("stride exceeds region size")
        self.region = region
        self.stride = stride
        self.element = element
        self._rows = region.size // stride
        self._columns = max(1, stride // element)
        self._taken = 0

    def take(self, count: int) -> np.ndarray:
        _check_count(count)
        positions = self._taken + np.arange(count, dtype=np.int64)
        row = positions % self._rows
        column = (positions // self._rows) % self._columns
        offsets = row * self.stride + column * self.element
        self._taken += count
        return (self.region.base + offsets).astype(np.uint32)


class LockstepSweep(Stream):
    """Several regions swept with one shared index, round-robin.

    Models vectorised loops ``for i: a[i] = f(b[i], c[i], ...)``: each
    reference visits the next region at the current index, and the index
    advances after the last region.  When the regions' base addresses are
    congruent modulo ``sets * page_size``, all concurrently live pages
    collide in one TLB set — the tomcatv anomaly (Section 5.2).
    """

    def __init__(self, regions: Sequence[Region], element: int = 8) -> None:
        if not regions:
            raise WorkloadError("LockstepSweep needs at least one region")
        if element <= 0:
            raise WorkloadError("element must be positive")
        sweep_length = min(region.size for region in regions)
        self.regions = list(regions)
        self.element = element
        self._sweep_elements = sweep_length // element
        if self._sweep_elements == 0:
            raise WorkloadError("regions too small for one element")
        self._position = 0  # element index * len(regions) + region index

    def take(self, count: int) -> np.ndarray:
        _check_count(count)
        k = len(self.regions)
        positions = self._position + np.arange(count, dtype=np.int64)
        element_index = (positions // k) % self._sweep_elements
        region_index = positions % k
        bases = np.array([r.base for r in self.regions], dtype=np.int64)
        addresses = bases[region_index] + element_index * self.element
        self._position += count
        return addresses.astype(np.uint32)


def _repeat_bursts(
    bases: np.ndarray,
    count: int,
    burst: int,
    span: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Expand sampled base addresses into bursts of nearby references.

    Real programs touch a sampled location many times in a row (a record
    is read field by field, a node is processed before moving on), so
    each draw becomes ``burst`` consecutive references jittered within
    ``span`` bytes of the base.  Burstiness divides a stream's TLB miss
    rate by roughly ``burst`` without changing which pages are warm —
    the knob that separates footprint (working set) from miss rate.
    """
    repeated = np.repeat(bases, burst)[:count]
    if span > 4:
        jitter = rng.integers(0, span // 4, size=repeated.size) * 4
        repeated = repeated + jitter
    return repeated


class HotSpot(Stream):
    """Uniform random references within one region.

    A region a few pages long models tight temporal locality (an
    interpreter's dispatch loop, a device driver's state block).
    """

    def __init__(self, region: Region, rng: np.random.Generator,
                 alignment: int = 4, burst: int = 1) -> None:
        if alignment <= 0:
            raise WorkloadError("alignment must be positive")
        if burst <= 0:
            raise WorkloadError("burst must be positive")
        self.region = region
        self.alignment = alignment
        self.burst = burst
        self._rng = rng

    def take(self, count: int) -> np.ndarray:
        _check_count(count)
        draws = -(-count // self.burst)
        slots = max(1, self.region.size // self.alignment)
        offsets = self._rng.integers(0, slots, size=draws) * self.alignment
        bases = (self.region.base + offsets).astype(np.int64)
        repeated = np.repeat(bases, self.burst)[:count]
        return repeated.astype(np.uint32)


def _zipf_weights(ranks: int, alpha: float) -> np.ndarray:
    weights = 1.0 / np.power(np.arange(1, ranks + 1, dtype=np.float64), alpha)
    return weights / weights.sum()


class SparseHot(Stream):
    """Zipf-popular blocks scattered few-per-chunk: promotion-hostile.

    Hot blocks are spread over chunks with only ``chunk_fill`` warm
    blocks each (at pseudo-random slots), always below the paper's
    promote-at-half threshold, so the policy never fires.  Programs
    shaped like this pay the two-page-size miss penalty increase and get
    nothing back — the espresso/worm behaviour.  ``chunk_fill`` also
    sets the single-large-page working-set inflation: a chunk holding
    ``f`` warm 4KB blocks costs ``8/f``x more as one 32KB page.
    """

    def __init__(
        self,
        region: Region,
        rng: np.random.Generator,
        *,
        hot_blocks: int,
        alpha: float = 1.0,
        chunk_fill: int = 2,
        burst: int = 1,
        block_size: int = 4096,
        blocks_per_chunk: int = 8,
    ) -> None:
        if hot_blocks <= 0:
            raise WorkloadError("hot_blocks must be positive")
        if burst <= 0:
            raise WorkloadError("burst must be positive")
        if not 1 <= chunk_fill < (blocks_per_chunk + 1) // 2:
            raise WorkloadError(
                f"chunk_fill {chunk_fill} must stay below the promotion "
                f"threshold ({(blocks_per_chunk + 1) // 2} of "
                f"{blocks_per_chunk} blocks)"
            )
        chunks_needed = -(-hot_blocks // chunk_fill)  # ceil division
        chunk_span = block_size * blocks_per_chunk
        # Align the placement grid to *physical* chunk boundaries: blocks
        # placed relative to an unaligned region base would straddle two
        # real chunks, letting adjacent logical chunks' blocks pile into
        # one physical chunk and accidentally cross the promote threshold.
        first_chunk_base = -(-region.base // chunk_span) * chunk_span
        chunks_available = max(0, (region.end - first_chunk_base) // chunk_span)
        if chunks_needed > chunks_available:
            raise WorkloadError(
                f"{hot_blocks} hot blocks at {chunk_fill}/chunk need "
                f"{chunks_needed} chunks; region {region} only holds "
                f"{chunks_available} aligned chunks"
            )
        self.region = region
        self._rng = rng
        chunk_index = np.arange(hot_blocks, dtype=np.int64) // chunk_fill
        slot_sets = [
            rng.choice(blocks_per_chunk, size=chunk_fill, replace=False)
            for _ in range(chunks_needed)
        ]
        slots = np.array(
            [
                slot_sets[rank // chunk_fill][rank % chunk_fill]
                for rank in range(hot_blocks)
            ],
            dtype=np.int64,
        )
        self._block_bases = (
            first_chunk_base + chunk_index * chunk_span + slots * block_size
        )
        self._weights = _zipf_weights(hot_blocks, alpha)
        self._block_size = block_size
        self.burst = burst

    def take(self, count: int) -> np.ndarray:
        _check_count(count)
        draws = -(-count // self.burst)
        ranks = self._rng.choice(
            self._block_bases.size, size=draws, p=self._weights
        )
        bursts = _repeat_bursts(
            self._block_bases[ranks], count, self.burst, self._block_size,
            self._rng,
        )
        return bursts.astype(np.uint32)


class DenseZipf(Stream):
    """Zipf-popular pages packed contiguously: promotion-friendly.

    The mirror image of :class:`SparseHot`: popular pages sit next to
    each other, so the hot prefix of the region fills whole chunks and
    promotes readily.
    """

    def __init__(
        self,
        region: Region,
        rng: np.random.Generator,
        *,
        hot_pages: int,
        alpha: float = 1.0,
        burst: int = 1,
        page_size: int = 4096,
    ) -> None:
        if hot_pages <= 0:
            raise WorkloadError("hot_pages must be positive")
        if burst <= 0:
            raise WorkloadError("burst must be positive")
        if hot_pages * page_size > region.size:
            raise WorkloadError("hot pages exceed region size")
        self.region = region
        self._rng = rng
        self._weights = _zipf_weights(hot_pages, alpha)
        self._page_size = page_size
        self._hot_pages = hot_pages
        self.burst = burst

    def take(self, count: int) -> np.ndarray:
        _check_count(count)
        draws = -(-count // self.burst)
        pages = self._rng.choice(self._hot_pages, size=draws, p=self._weights)
        bases = self.region.base + pages.astype(np.int64) * self._page_size
        bursts = _repeat_bursts(
            bases, count, self.burst, self._page_size, self._rng
        )
        return bursts.astype(np.uint32)


class PointerChase(Stream):
    """Random walk with geometric jump lengths inside a region.

    Models traversals of linked structures allocated over time: mostly
    short hops (allocation locality) with occasional long jumps to old
    data.  ``mean_jump`` controls sparseness; walks wrap at the region
    boundary.
    """

    def __init__(
        self,
        region: Region,
        rng: np.random.Generator,
        *,
        mean_jump: int = 256,
        alignment: int = 8,
    ) -> None:
        if mean_jump <= 0:
            raise WorkloadError("mean_jump must be positive")
        self.region = region
        self.alignment = alignment
        self._rng = rng
        self._mean_jump = mean_jump
        self._position = 0

    def take(self, count: int) -> np.ndarray:
        _check_count(count)
        jumps = self._rng.geometric(1.0 / self._mean_jump, size=count)
        signs = self._rng.choice((-1, 1), size=count)
        steps = jumps * signs * self.alignment
        positions = (self._position + np.cumsum(steps)) % self.region.size
        self._position = int(positions[-1]) if count else self._position
        return (self.region.base + positions).astype(np.uint32)


class SequentialRuns(Stream):
    """Sequential bursts at random start pages: instruction fetch.

    Fetch proceeds word by word for ``run_length`` references, then
    branches to a random page of the code region (Zipf-weighted, so a
    hot inner loop dominates).
    """

    def __init__(
        self,
        region: Region,
        rng: np.random.Generator,
        *,
        run_length: int = 16,
        alpha: float = 1.2,
        page_size: int = 4096,
    ) -> None:
        if run_length <= 0:
            raise WorkloadError("run_length must be positive")
        pages = region.size // page_size
        if pages == 0:
            raise WorkloadError("code region smaller than one page")
        self.region = region
        self._rng = rng
        self._run_length = run_length
        self._page_size = page_size
        self._weights = _zipf_weights(pages, alpha)
        self._pages = pages
        self._position = region.base
        self._left_in_run = run_length

    def take(self, count: int) -> np.ndarray:
        _check_count(count)
        addresses = np.empty(count, dtype=np.uint32)
        produced = 0
        while produced < count:
            if self._left_in_run == 0:
                page = int(self._rng.choice(self._pages, p=self._weights))
                offset = int(self._rng.integers(0, self._page_size // 4)) * 4
                self._position = self.region.base + page * self._page_size + offset
                self._left_in_run = self._run_length
            burst = min(count - produced, self._left_in_run)
            run = self._position + 4 * np.arange(burst, dtype=np.int64)
            # Stay inside the region even if a run crosses its end.
            run = self.region.base + (run - self.region.base) % self.region.size
            addresses[produced : produced + burst] = run.astype(np.uint32)
            self._position = int(run[-1]) + 4
            self._left_in_run -= burst
            produced += burst
        return addresses


class PhaseAlternator(Stream):
    """Cycles through sub-streams, one per execution phase.

    Models multi-kernel programs (nasa7): references come from stream 0
    for ``phase_length`` references, then stream 1, and so on, wrapping.
    """

    def __init__(self, streams: Sequence[Stream], phase_length: int) -> None:
        if not streams:
            raise WorkloadError("PhaseAlternator needs at least one stream")
        if phase_length <= 0:
            raise WorkloadError("phase_length must be positive")
        self.streams = list(streams)
        self.phase_length = phase_length
        self._current = 0
        self._left_in_phase = phase_length

    def take(self, count: int) -> np.ndarray:
        _check_count(count)
        parts: List[np.ndarray] = []
        remaining = count
        while remaining > 0:
            burst = min(remaining, self._left_in_phase)
            parts.append(self.streams[self._current].take(burst))
            self._left_in_phase -= burst
            remaining -= burst
            if self._left_in_phase == 0:
                self._current = (self._current + 1) % len(self.streams)
                self._left_in_phase = self.phase_length
        if not parts:
            return np.empty(0, dtype=np.uint32)
        return np.concatenate(parts)
