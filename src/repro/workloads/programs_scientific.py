"""Scientific/FP program models: matrix300, tomcatv, nasa7, fpppp, doduc.

These are the SPEC'89 floating-point codes in the paper's trace set.
Their defining trait is array access: dense unit-stride sweeps, large
column strides, and (for tomcatv) several arrays advanced in lockstep —
the access shape behind the paper's Section 5.2 set-conflict anomaly.

Reference mixes follow the trace arithmetic of Table 3.1: with RPI
references per instruction and one fetch per instruction, instruction
fetches are ``1/RPI`` of all references (roughly 70%), which is what
keeps absolute TLB miss ratios in the paper's sub-percent to
few-percent range.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.trace.record import KIND_IFETCH
from repro.types import KB, MB
from repro.workloads.base import (
    CATEGORY_LARGE,
    CATEGORY_SMALL,
    StreamMix,
    SyntheticWorkload,
)
from repro.workloads.patterns import (
    DenseZipf,
    HotSpot,
    LockstepSweep,
    PhaseAlternator,
    SequentialRuns,
    SequentialSweep,
    SparseHot,
    StridedSweep,
)
from repro.workloads.regions import Region, staggered_base


class Matrix300(SyntheticWorkload):
    """SPEC'89 matrix300: 300x300 double-precision matrix multiply.

    Three ~1MB matrices; the column-major operand touches a new 4KB page
    nearly every access, which is why the paper's Table 5.1 shows
    matrix300 with the worst 4KB CPI_TLB (1.6) and the largest
    two-page-size win (whole matrices promote to 32KB pages).
    """

    name = "matrix300"
    description = "dense 300x300 matrix multiply, column-major operand"
    category = CATEGORY_LARGE
    refs_per_instruction = 1.50
    nominal_footprint = 3_200 * KB

    #: Row length in bytes of a 360-double row (stride of the column walk).
    ROW_BYTES = 360 * 8

    def _build(self, rng: np.random.Generator) -> List[StreamMix]:
        matrix_bytes = 1040 * KB  # 360x360 doubles, rounded up
        code = Region(0x0001_0000, 16 * KB)
        # Staggered bases, as a real loader interleaving other segments
        # would produce; without the stagger all three matrices' live
        # chunks collide in one TLB set and matrix300 would inherit
        # tomcatv's pathology.
        a = Region(staggered_base(4, 4), matrix_bytes)
        b = Region(staggered_base(8, 1), matrix_bytes)
        c = Region(staggered_base(12, 6), matrix_bytes)
        return [
            StreamMix(
                SequentialRuns(code, rng, run_length=64, alpha=1.5),
                weight=0.67,
                kind=KIND_IFETCH,
            ),
            StreamMix(SequentialSweep(a, stride=32), weight=0.13),
            StreamMix(
                StridedSweep(b, stride=self.ROW_BYTES, element=8), weight=0.07
            ),
            StreamMix(
                SequentialSweep(c, stride=32), weight=0.13, store_fraction=0.5
            ),
        ]


class Tomcatv(SyntheticWorkload):
    """SPEC'89 tomcatv: vectorised mesh generation over seven arrays.

    The seven arrays are advanced at one shared index.  Their bases are
    516KB apart: large-page (chunk) numbers stay congruent modulo 8 while
    small-page numbers keep distinct phases, reproducing the paper's
    anomaly — two-way set-associative TLBs thrash once chunk bits index
    the TLB, while 4KB small-page indexing spreads the arrays across
    sets (Section 5.2: "the program's access pattern causes the TLB to
    thrash even with larger pages").
    """

    name = "tomcatv"
    description = "vectorised mesh generation, seven lockstep arrays"
    category = CATEGORY_LARGE
    refs_per_instruction = 1.45
    nominal_footprint = 3_000 * KB

    ARRAY_BYTES = 416 * KB
    ARRAY_SPACING = 516 * KB  # 16.125 chunks: congruent chunks, offset blocks
    ARRAY_COUNT = 7
    #: Arrays laid out by the Fortran compiler back to back (chunk numbers
    #: congruent mod 8); the remaining arrays were padded differently and
    #: land in other sets, so the thrash involves CONGRUENT_ARRAYS streams.
    CONGRUENT_ARRAYS = 4

    def _build(self, rng: np.random.Generator) -> List[StreamMix]:
        code = Region(0x0001_0000, 32 * KB)
        arrays = []
        for index in range(self.ARRAY_COUNT):
            base = 16 * MB + index * self.ARRAY_SPACING
            if index >= self.CONGRUENT_ARRAYS:
                # Break the chunk congruence for the later arrays.
                base += (index - self.CONGRUENT_ARRAYS + 1) * 32 * KB
            arrays.append(Region(base, self.ARRAY_BYTES))
        boundary = Region(28 * MB, 64 * KB)
        return [
            StreamMix(
                SequentialRuns(code, rng, run_length=96, alpha=1.2),
                weight=0.69,
                kind=KIND_IFETCH,
            ),
            StreamMix(
                LockstepSweep(arrays, element=144),
                weight=0.21,
                store_fraction=0.3,
            ),
            StreamMix(HotSpot(boundary, rng, burst=16), weight=0.10),
        ]


class Nasa7(SyntheticWorkload):
    """SPEC'89 nasa7: seven numerical kernels run in sequence.

    Modelled as phase-alternating kernels over disjoint arrays: FFT-like
    strided passes, dense BLAS-like sweeps and a blocked solver.  Misses
    are high in the strided phases and promote away with large pages, so
    nasa7 is one of the paper's clearest two-page-size winners.
    """

    name = "nasa7"
    description = "seven NASA Ames kernels: mixed strided/dense phases"
    category = CATEGORY_LARGE
    refs_per_instruction = 1.45
    nominal_footprint = 1_600 * KB

    PHASE_REFERENCES = 12_000

    def _build(self, rng: np.random.Generator) -> List[StreamMix]:
        code = Region(0x0001_0000, 24 * KB)
        solver_state = Region(staggered_base(14, 3), 32 * KB)
        kernels = [
            StridedSweep(
                Region(staggered_base(4, 1), 640 * KB), stride=1024, element=8
            ),
            SequentialSweep(Region(staggered_base(5, 2), 640 * KB), stride=32),
            StridedSweep(
                Region(staggered_base(6, 4), 896 * KB), stride=1536, element=8
            ),
            SequentialSweep(Region(staggered_base(8, 5), 640 * KB), stride=48),
            StridedSweep(
                Region(staggered_base(9, 6), 576 * KB), stride=2048, element=8
            ),
            SequentialSweep(Region(staggered_base(10, 7), 896 * KB), stride=32),
            SequentialSweep(Region(staggered_base(12, 0), 640 * KB), stride=32),
        ]
        return [
            StreamMix(
                SequentialRuns(code, rng, run_length=48, alpha=1.3),
                weight=0.74,
                kind=KIND_IFETCH,
            ),
            StreamMix(
                PhaseAlternator(kernels, self.PHASE_REFERENCES),
                weight=0.17,
                store_fraction=0.25,
            ),
            StreamMix(HotSpot(solver_state, rng, burst=16), weight=0.09),
        ]


class Fpppp(SyntheticWorkload):
    """SPEC'89 fpppp: two-electron integral derivatives.

    Famous for enormous straight-line basic blocks: instruction fetch
    dominates and sweeps a large code footprint almost linearly, with a
    modest dense data set.  Code pages pack chunks completely, so
    promotion recovers most of the misses.
    """

    name = "fpppp"
    description = "quantum chemistry; huge straight-line basic blocks"
    category = CATEGORY_SMALL
    refs_per_instruction = 1.30
    nominal_footprint = 450 * KB

    def _build(self, rng: np.random.Generator) -> List[StreamMix]:
        code = Region(0x0001_0000, 192 * KB)
        data = Region(staggered_base(2, 1), 256 * KB)
        scratch = Region(staggered_base(3, 4), 64 * KB)
        return [
            StreamMix(
                SequentialRuns(code, rng, run_length=256, alpha=0.7),
                weight=0.76,
                kind=KIND_IFETCH,
            ),
            StreamMix(
                DenseZipf(data, rng, hot_pages=56, alpha=0.9, burst=28),
                weight=0.16,
                store_fraction=0.2,
            ),
            StreamMix(SequentialSweep(scratch, stride=16), weight=0.08),
        ]


class Doduc(SyntheticWorkload):
    """SPEC'89 doduc: Monte Carlo nuclear reactor simulation.

    Many small subroutines and data spread over scattered records: part
    of the data set is dense and promotes, part is two-blocks-per-chunk
    sparse and does not, giving doduc the paper's mixed middle-ground
    behaviour (improves at 16 entries, can lose at 32).
    """

    name = "doduc"
    description = "Monte Carlo reactor kinetics; scattered records"
    category = CATEGORY_SMALL
    refs_per_instruction = 1.30
    nominal_footprint = 550 * KB

    def _build(self, rng: np.random.Generator) -> List[StreamMix]:
        code = Region(0x0001_0000, 128 * KB)
        tables = Region(staggered_base(2, 5), 128 * KB)
        records = Region(staggered_base(4, 2), 1600 * KB)
        return [
            StreamMix(
                SequentialRuns(code, rng, run_length=40, alpha=1.3),
                weight=0.76,
                kind=KIND_IFETCH,
            ),
            StreamMix(
                DenseZipf(tables, rng, hot_pages=32, alpha=1.25, burst=32),
                weight=0.12,
            ),
            StreamMix(
                SparseHot(
                    records, rng, hot_blocks=96, alpha=0.9, chunk_fill=2,
                    burst=48,
                ),
                weight=0.07,
                store_fraction=0.3,
            ),
            StreamMix(
                DenseZipf(
                    Region(staggered_base(6, 6), 128 * KB), rng, hot_pages=28,
                    alpha=0.7, burst=24,
                ),
                weight=0.05,
            ),
        ]
