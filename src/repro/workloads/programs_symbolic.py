"""Symbolic/integer program models: li, espresso, eqntott.

The SPEC'89 integer codes in the paper's trace set.  Their traces are
dominated by instruction fetch over modest code plus heap/table data
whose *chunk density* decides how the promotion policy treats them: li's
allocation-ordered heap promotes, espresso's scattered cube tables do
not (Figure 4.1 calls out li and espresso as the biggest working-set
inflators at large page sizes).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.trace.record import KIND_IFETCH
from repro.types import KB, MB
from repro.workloads.base import CATEGORY_SMALL, StreamMix, SyntheticWorkload
from repro.workloads.patterns import (
    DenseZipf,
    HotSpot,
    SequentialRuns,
    SequentialSweep,
    SparseHot,
)
from repro.workloads.regions import Region, staggered_base


class Lisp(SyntheticWorkload):
    """SPEC'89 li: a Lisp interpreter running a standard benchmark mix.

    A hot dispatch loop, an allocation-ordered cons-cell nursery (dense,
    promotes well) and a cold old-space touched sparsely (one warm block
    per chunk, never promotes and inflates the 32KB working set).  The
    dense nursery holds most of the 4KB TLB pressure, so li is a strong
    two-page-size winner in Table 5.1 despite its sparse old space.
    """

    name = "li"
    description = "Lisp interpreter; dense nursery, sparse old space"
    category = CATEGORY_SMALL
    refs_per_instruction = 1.30
    nominal_footprint = 300 * KB

    def _build(self, rng: np.random.Generator) -> List[StreamMix]:
        code = Region(0x0001_0000, 64 * KB)
        nursery = Region(staggered_base(2, 1), 192 * KB)
        old_space = Region(staggered_base(4, 2), 1536 * KB)
        stack = Region(0x7F00_0000 + staggered_base(0, 3), 8 * KB)
        return [
            StreamMix(
                SequentialRuns(code, rng, run_length=28, alpha=1.4),
                weight=0.74,
                kind=KIND_IFETCH,
            ),
            StreamMix(
                DenseZipf(nursery, rng, hot_pages=24, alpha=1.3, burst=24),
                weight=0.13,
                store_fraction=0.35,
            ),
            StreamMix(
                SparseHot(
                    old_space, rng, hot_blocks=18, alpha=0.7, chunk_fill=1,
                    burst=12,
                ),
                weight=0.03,
            ),
            StreamMix(
                HotSpot(stack, rng, burst=20), weight=0.10, store_fraction=0.4
            ),
        ]


class Espresso(SyntheticWorkload):
    """SPEC'89 espresso: PLA minimisation over scattered cube tables.

    Strong temporal locality — the 4KB miss ratio is already low — but
    the warm data sits three blocks per chunk across a wide arena, so the
    promotion policy never fires.  Supporting two page sizes then only
    raises the miss penalty 25%, which is exactly the degradation
    espresso shows in Table 5.1.
    """

    name = "espresso"
    description = "logic minimisation; scattered cube tables"
    category = CATEGORY_SMALL
    refs_per_instruction = 1.25
    nominal_footprint = 350 * KB

    def _build(self, rng: np.random.Generator) -> List[StreamMix]:
        # Code and locals are three 4KB pages each — below the promote
        # threshold of four blocks — and phase-offset across TLB sets, so
        # the only TLB pressure is the scattered cube tables, which never
        # promote either: the pure "pay 25% for nothing" shape.
        code = Region(0x0001_0000, 12 * KB)
        cubes = Region(staggered_base(4, 1), 2 * MB)
        locals_region = Region(2 * MB + 16 * KB, 12 * KB)
        return [
            StreamMix(
                SequentialRuns(code, rng, run_length=48, alpha=1.2),
                weight=0.78,
                kind=KIND_IFETCH,
            ),
            StreamMix(
                SparseHot(
                    cubes, rng, hot_blocks=96, alpha=1.1, chunk_fill=3,
                    burst=28,
                ),
                weight=0.12,
                store_fraction=0.25,
            ),
            StreamMix(
                DenseZipf(locals_region, rng, hot_pages=3, alpha=0.9,
                          burst=16),
                weight=0.10,
            ),
        ]


class Eqntott(SyntheticWorkload):
    """SPEC'89 eqntott: truth-table generation dominated by long scans.

    Large sequential sweeps over bit vectors (dense, scan misses drop
    8x with 32KB pages) plus a small hot comparison table; a modest
    two-page-size improvement in the paper.
    """

    name = "eqntott"
    description = "boolean equation to truth table; long bit-vector scans"
    category = CATEGORY_SMALL
    refs_per_instruction = 1.25
    nominal_footprint = 900 * KB

    def _build(self, rng: np.random.Generator) -> List[StreamMix]:
        code = Region(0x0001_0000, 32 * KB)
        vectors = Region(staggered_base(4, 1), 640 * KB)
        table = Region(staggered_base(2, 4), 24 * KB)
        scatter = Region(staggered_base(8, 6), 1 * MB)
        return [
            StreamMix(
                SequentialRuns(code, rng, run_length=48, alpha=1.5),
                weight=0.78,
                kind=KIND_IFETCH,
            ),
            StreamMix(
                SequentialSweep(vectors, stride=144),
                weight=0.08,
                store_fraction=0.2,
            ),
            StreamMix(HotSpot(table, rng, burst=16), weight=0.08),
            StreamMix(
                SparseHot(
                    scatter, rng, hot_blocks=32, alpha=1.0, chunk_fill=2,
                    burst=48,
                ),
                weight=0.04,
            ),
        ]
