"""Systems/interactive program models: x11perf, xnews, verilog, worm.

The non-SPEC programs in the paper's trace set (Table 3.1): X11 window
system clients/servers, a commercial Verilog simulator, and the worm
screen benchmark.  They mix hot server loops with scanline-strided pixel
data and widely scattered session state.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.trace.record import KIND_IFETCH
from repro.types import KB, MB
from repro.workloads.base import (
    CATEGORY_LARGE,
    CATEGORY_SMALL,
    StreamMix,
    SyntheticWorkload,
)
from repro.workloads.patterns import (
    DenseZipf,
    HotSpot,
    SequentialRuns,
    SequentialSweep,
    SparseHot,
    StridedSweep,
)
from repro.workloads.regions import Region, staggered_base


class X11perf(SyntheticWorkload):
    """x11perf: X11 drawing micro-benchmarks.

    A tight rendering loop storing through a pixmap along scanlines —
    the scanline pitch crosses a 4KB page every few pixels' worth of
    rows, but the pixmap is dense, so it promotes to large pages and the
    scan misses drop by the page-size ratio.  A strong two-page-size
    winner with a high 4KB baseline, as in Table 5.1.
    """

    name = "x11perf"
    description = "X11 rendering benchmark; scanline-strided pixmap stores"
    category = CATEGORY_SMALL
    refs_per_instruction = 1.35
    nominal_footprint = 650 * KB

    #: Scanline pitch in bytes (1280 pixels at 8 bits).
    PITCH = 1280

    def _build(self, rng: np.random.Generator) -> List[StreamMix]:
        code = Region(0x0001_0000, 96 * KB)
        pixmap = Region(staggered_base(8, 1), 512 * KB)
        requests = Region(staggered_base(2, 5), 16 * KB)
        return [
            StreamMix(
                SequentialRuns(code, rng, run_length=40, alpha=1.4),
                weight=0.74,
                kind=KIND_IFETCH,
            ),
            StreamMix(
                StridedSweep(pixmap, stride=self.PITCH, element=16),
                weight=0.04,
                store_fraction=0.6,
            ),
            StreamMix(
                SequentialSweep(pixmap, stride=64),
                weight=0.08,
                store_fraction=0.5,
            ),
            StreamMix(HotSpot(requests, rng, burst=12), weight=0.14),
        ]


class Xnews(SyntheticWorkload):
    """xnews: the X11/NeWS display server under client load.

    A large dense resource database (fonts, pixmaps, GCs — promotes) and
    per-client session state scattered across the heap (does not),
    giving the moderate two-page-size improvement the paper reports.
    """

    name = "xnews"
    description = "X11/NeWS server; dense resources, scattered sessions"
    category = CATEGORY_LARGE
    refs_per_instruction = 1.35
    nominal_footprint = 1_800 * KB

    def _build(self, rng: np.random.Generator) -> List[StreamMix]:
        code = Region(0x0001_0000, 192 * KB)
        resources = Region(staggered_base(4, 1), 1024 * KB)
        glyphs = Region(staggered_base(6, 3), 384 * KB)
        sessions = Region(staggered_base(8, 5), 3 * MB)
        scratch = Region(staggered_base(2, 6), 32 * KB)
        return [
            StreamMix(
                SequentialRuns(code, rng, run_length=32, alpha=1.5),
                weight=0.74,
                kind=KIND_IFETCH,
            ),
            StreamMix(
                DenseZipf(resources, rng, hot_pages=256, alpha=1.35, burst=48),
                weight=0.14,
                store_fraction=0.2,
            ),
            StreamMix(
                SparseHot(
                    sessions, rng, hot_blocks=128, alpha=1.2, chunk_fill=2,
                    burst=40,
                ),
                weight=0.07,
            ),
            StreamMix(SequentialSweep(glyphs, stride=128), weight=0.06),
            StreamMix(
                HotSpot(scratch, rng, burst=12),
                weight=0.05,
                store_fraction=0.3,
            ),
        ]


class Verilog(SyntheticWorkload):
    """verilog: a commercial event-driven logic simulator.

    A big netlist with Zipf-popular gates packed by elaboration order
    (dense, promotes) plus an event wheel swept sequentially; the paper
    shows a solid improvement with two page sizes.
    """

    name = "verilog"
    description = "event-driven logic simulation of a large netlist"
    category = CATEGORY_LARGE
    refs_per_instruction = 1.30
    nominal_footprint = 3_500 * KB

    def _build(self, rng: np.random.Generator) -> List[StreamMix]:
        code = Region(0x0001_0000, 224 * KB)
        netlist = Region(staggered_base(4, 1), 2048 * KB)
        gate_arrays = Region(staggered_base(20, 3), 640 * KB)
        events = Region(staggered_base(2, 4), 192 * KB)
        monitors = Region(staggered_base(16, 5), 3 * MB + 64 * KB)
        return [
            StreamMix(
                SequentialRuns(code, rng, run_length=22, alpha=1.1),
                weight=0.77,
                kind=KIND_IFETCH,
            ),
            StreamMix(
                DenseZipf(netlist, rng, hot_pages=448, alpha=0.95, burst=24),
                weight=0.11,
                store_fraction=0.3,
            ),
            StreamMix(SequentialSweep(events, stride=24), weight=0.06),
            StreamMix(SequentialSweep(gate_arrays, stride=320), weight=0.05),
            StreamMix(
                SparseHot(
                    monitors, rng, hot_blocks=192, alpha=0.9, chunk_fill=2,
                    burst=20,
                ),
                weight=0.06,
            ),
            StreamMix(
                SparseHot(
                    Region(staggered_base(24, 6), 4 * MB), rng,
                    hot_blocks=200, alpha=0.8, chunk_fill=2, burst=40,
                ),
                weight=0.04,
            ),
        ]


class Worm(SyntheticWorkload):
    """worm: the classic screen-worms display hack under X11.

    Session state scattered three warm blocks per chunk across a wide
    heap: high temporal locality but no chunk density, so promotions
    are rare and the two-page-size scheme pays its higher miss penalty
    for nothing — worm degrades in Table 5.1, like espresso but with a
    working set past the 1MB "large" boundary.
    """

    name = "worm"
    description = "X11 worms demo; wide scattered session state"
    category = CATEGORY_LARGE
    refs_per_instruction = 1.30
    nominal_footprint = 1_100 * KB

    def _build(self, rng: np.random.Generator) -> List[StreamMix]:
        # Like espresso: code and state stay below the promote threshold
        # (three blocks each), so no promotion ever pays the penalty back.
        code = Region(0x0001_0000, 12 * KB)
        segments = Region(staggered_base(4, 1), 10 * MB)
        state = Region(2 * MB + 16 * KB, 12 * KB)
        return [
            StreamMix(
                SequentialRuns(code, rng, run_length=36, alpha=1.3),
                weight=0.76,
                kind=KIND_IFETCH,
            ),
            StreamMix(
                SparseHot(
                    segments, rng, hot_blocks=240, alpha=0.7, chunk_fill=3,
                    burst=14,
                ),
                weight=0.16,
                store_fraction=0.4,
            ),
            StreamMix(HotSpot(state, rng, burst=12), weight=0.08),
        ]
