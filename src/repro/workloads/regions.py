"""Virtual-address regions used to lay out synthetic programs.

A :class:`Region` is a contiguous span of the 32-bit virtual address
space standing in for a program segment — code, a matrix, a heap arena,
a stack.  Workload models compose access patterns over regions laid out
the way the original programs laid out their memory (code low, data
above it, far-apart mmapped arenas), because TLB-set behaviour depends
on the *addresses*, not just the footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.types import KB, MB, VIRTUAL_ADDRESS_LIMIT


@dataclass(frozen=True)
class Region:
    """A contiguous virtual-address range ``[base, base + size)``."""

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise WorkloadError(f"region size must be positive, got {self.size}")
        if self.base < 0:
            raise WorkloadError(f"region base must be non-negative: {self.base}")
        if self.base + self.size > VIRTUAL_ADDRESS_LIMIT:
            raise WorkloadError(
                f"region [{self.base:#x}, +{self.size:#x}) exceeds the "
                f"32-bit address space"
            )

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        """Return True if ``address`` lies inside the region."""
        return self.base <= address < self.end

    def sub(self, offset: int, size: int) -> "Region":
        """Carve out a sub-region at ``offset`` bytes into this one."""
        if offset < 0 or offset + size > self.size:
            raise WorkloadError(
                f"sub-region (+{offset:#x}, {size:#x}) escapes {self}"
            )
        return Region(self.base + offset, size)

    def __str__(self) -> str:
        return f"[{self.base:#x}, {self.end:#x})"


def staggered_base(megabytes: int, slot: int) -> int:
    """A region base at ``megabytes`` MB, offset into TLB set ``slot``.

    Naively placing every program segment on a megabyte boundary puts
    each segment's first 4KB page *and* first 32KB chunk into TLB set 0
    of a typical set-associative TLB — a layout pathology no real
    linker/allocator produces, because segments follow one another at
    odd offsets.  Offsetting by ``slot`` x 36KB (one chunk plus one
    block) rotates both the block-level and the chunk-level set index by
    ``slot``, so different segments' hottest pages spread across sets.
    """
    return megabytes * MB + (slot % 8) * 36 * KB
