"""Registry of the paper's twelve workloads (Table 3.1).

The ordering matters: the paper presents results "in ascending order of
working set size" within the small (< 1MB) and large (> 1MB) categories,
and our tables/figures follow the same order:

    small: li, espresso, fpppp, doduc, x11perf, eqntott
    large: worm, nasa7, xnews, matrix300, tomcatv, verilog
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional

import warnings

from repro.errors import TraceError, WorkloadError
from repro.trace.record import Trace
from repro.trace.trace_io import read_trace, write_trace
from repro.workloads.base import SyntheticWorkload
from repro.workloads.programs_scientific import (
    Doduc,
    Fpppp,
    Matrix300,
    Nasa7,
    Tomcatv,
)
from repro.workloads.programs_symbolic import Eqntott, Espresso, Lisp
from repro.workloads.programs_systems import Verilog, Worm, X11perf, Xnews

#: Bumped whenever any generator's parameters change, so stale disk-cached
#: traces are never mistaken for current ones.
GENERATOR_VERSION = 4

#: Paper presentation order (Table 5.1 / Figures 5.1-5.2 row order).
WORKLOAD_ORDER = (
    "li",
    "espresso",
    "fpppp",
    "doduc",
    "x11perf",
    "eqntott",
    "worm",
    "nasa7",
    "xnews",
    "matrix300",
    "tomcatv",
    "verilog",
)

_WORKLOAD_CLASSES = (
    Lisp,
    Espresso,
    Fpppp,
    Doduc,
    X11perf,
    Eqntott,
    Worm,
    Nasa7,
    Xnews,
    Matrix300,
    Tomcatv,
    Verilog,
)


def _build_registry() -> Dict[str, SyntheticWorkload]:
    registry: Dict[str, SyntheticWorkload] = {}
    for workload_class in _WORKLOAD_CLASSES:
        workload = workload_class()
        registry[workload.name] = workload
    missing = set(WORKLOAD_ORDER) - set(registry)
    if missing:  # pragma: no cover - defends against registry drift
        raise WorkloadError(f"registry missing workloads: {sorted(missing)}")
    return registry


_REGISTRY = _build_registry()


def workload_names() -> List[str]:
    """All workload names in paper presentation order."""
    return list(WORKLOAD_ORDER)


def get_workload(name: str) -> SyntheticWorkload:
    """Look up a workload model by its paper name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(WORKLOAD_ORDER)
        raise WorkloadError(f"unknown workload {name!r}; known: {known}") from None


def all_workloads() -> List[SyntheticWorkload]:
    """All twelve workload models in paper presentation order."""
    return [_REGISTRY[name] for name in WORKLOAD_ORDER]


def generate_trace(name: str, length: int, seed: int = 0) -> Trace:
    """Generate a trace for the named workload (no caching)."""
    return get_workload(name).generate(length, seed)


def cached_trace(
    name: str,
    length: int,
    seed: int = 0,
    cache_dir: Optional[os.PathLike] = None,
) -> Trace:
    """Generate-or-load a workload trace, cached on disk.

    Benchmarks regenerate the same traces many times; caching them in
    ``cache_dir`` (default ``~/.cache/repro-traces`` or
    ``$REPRO_TRACE_CACHE``) makes repeated runs start instantly.

    A cache file that fails to read — truncated, bit-rotted, or failing
    its ``RPT2`` checksum — is treated as a cache miss: the trace is
    regenerated and the bad file overwritten, with a warning, because a
    corrupt *cache* must never abort (or worse, corrupt) an experiment.
    """
    if cache_dir is None:
        cache_dir = os.environ.get(
            "REPRO_TRACE_CACHE",
            os.path.join(os.path.expanduser("~"), ".cache", "repro-traces"),
        )
    directory = Path(cache_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}-v{GENERATOR_VERSION}-{length}-{seed}.rpt"
    if path.exists():
        try:
            return read_trace(path)
        except TraceError as error:
            warnings.warn(
                f"discarding corrupt cached trace {path}: {error}",
                RuntimeWarning,
                stacklevel=2,
            )
    trace = generate_trace(name, length, seed)
    write_trace(path, trace)
    return trace
