"""Shared fixtures: keep the test suite hermetic.

The result cache defaults to ``~/.cache/repro/results`` (see
docs/performance.md).  The tests must neither read it — a stale entry
from a developer run could mask a real regression — nor write it.  So
every test runs with ``REPRO_CACHE=0`` and without inherited
``REPRO_CACHE_DIR``/``REPRO_JOBS``; cache and parallel tests opt back
in explicitly with a ``tmp_path`` cache root or a ``jobs=`` argument.
"""

import pytest


@pytest.fixture(autouse=True)
def _hermetic_parallel_env(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "0")
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)


@pytest.fixture(scope="session", autouse=True)
def _shutdown_shared_pool_at_exit():
    """Tear the persistent worker pool down once the session ends.

    The shared pool deliberately outlives individual ``run_units`` calls
    (fork cost is paid once per process); without an explicit shutdown
    its workers would linger until the atexit hook, holding open pipes
    and a copy of the test process's memory while unrelated teardown
    runs.
    """
    yield
    from repro.parallel.pool import shutdown_shared_pool

    shutdown_shared_pool()
