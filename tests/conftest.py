"""Shared fixtures: keep the test suite hermetic.

The result cache defaults to ``~/.cache/repro/results`` (see
docs/performance.md).  The tests must neither read it — a stale entry
from a developer run could mask a real regression — nor write it.  So
every test runs with ``REPRO_CACHE=0`` and without inherited
``REPRO_CACHE_DIR``/``REPRO_JOBS``; cache and parallel tests opt back
in explicitly with a ``tmp_path`` cache root or a ``jobs=`` argument.
"""

import pytest


@pytest.fixture(autouse=True)
def _hermetic_parallel_env(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "0")
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
