"""Smoke + shape tests for the extension experiments (pairs + ablations)."""

import pytest

from repro.experiments import (
    run_multiprogramming_ablation,
    run_pairs,
    run_penalty_ablation,
    run_probe_ablation,
    run_replacement_ablation,
    run_split_ablation,
    run_threshold_ablation,
    smoke_scale,
)
from repro.experiments.ablations import ABLATION_WORKLOADS
from repro.types import PAIR_4KB_16KB, PAIR_4KB_32KB, PAIR_4KB_64KB

SCALE = smoke_scale(trace_length=60_000, window=8_000)


class TestPairs:
    @pytest.fixture(scope="class")
    def pairs(self):
        return run_pairs(SCALE)

    def test_all_pairs_measured(self, pairs):
        for name in pairs.ws:
            assert set(pairs.ws[name]) == set(pairs.pairs)
            assert set(pairs.cpi[name]) == set(pairs.pairs)

    def test_two_size_working_sets_never_shrink(self, pairs):
        # Promotion can only add bytes relative to all-small pages, for
        # every pair and workload.  (Note the tradeoff is NOT monotone in
        # the large-page size: a 64KB chunk needs eight warm blocks to
        # promote, so it can promote *less* often than a 16KB chunk and
        # inflate less — visible in the rendered table.)
        for name in pairs.ws:
            for pair in pairs.pairs:
                assert pairs.ws[name][pair] >= 1.0 - 1e-9, (name, pair)

    def test_matrix300_benefits_from_any_pair(self, pairs):
        for pair in (PAIR_4KB_16KB, PAIR_4KB_32KB, PAIR_4KB_64KB):
            assert (
                pairs.cpi["matrix300"][pair].cpi_tlb
                < pairs.baseline_cpi["matrix300"]
            )

    def test_render(self, pairs):
        assert "page-size pairs" in pairs.render()


class TestThreshold:
    @pytest.fixture(scope="class")
    def threshold(self):
        return run_threshold_ablation(SCALE)

    def test_lower_threshold_inflates_working_set(self, threshold):
        # Promoting more eagerly can only add bytes, for every workload.
        for name in threshold.ws:
            assert (
                threshold.ws[name][0.25] >= threshold.ws[name][1.0] - 1e-9
            ), name

    def test_render(self, threshold):
        assert "promotion threshold" in threshold.render()


class TestPenalty:
    @pytest.fixture(scope="class")
    def penalty(self):
        return run_penalty_ablation(SCALE)

    def test_cpi_scales_linearly_with_factor(self, penalty):
        for name in penalty.cpi:
            assert penalty.cpi[name][2.0] == pytest.approx(
                2.0 * penalty.cpi[name][1.0]
            )

    def test_matrix300_survives_large_factors(self, penalty):
        # A program with a big MPI reduction tolerates big penalties.
        assert penalty.breakeven_factor("matrix300") >= 2.0

    def test_espresso_loses_quickly(self, penalty):
        # No promotions -> any factor > 1 makes two sizes a pure loss.
        assert penalty.breakeven_factor("espresso") <= 1.0

    def test_render(self, penalty):
        assert "penalty factor" in penalty.render()


class TestProbe:
    @pytest.fixture(scope="class")
    def probe(self):
        return run_probe_ablation(SCALE)

    def test_reprobes_at_least_misses(self, probe):
        # Sequential probing reprobes on every miss (plus large hits).
        for name in probe.misses:
            assert probe.reprobes[name] >= probe.misses[name]

    def test_reprobe_rate_bounded(self, probe):
        for name in probe.misses:
            assert 0.0 <= probe.reprobe_rate(name) <= 1.0

    def test_render(self, probe):
        assert "sequential exact-index" in probe.render()


class TestReplacement:
    @pytest.fixture(scope="class")
    def replacement(self):
        return run_replacement_ablation(SCALE)

    def test_all_policies_measured(self, replacement):
        for name in ABLATION_WORKLOADS:
            assert set(replacement.cpi[name]) == {"lru", "fifo", "random", "plru"}

    def test_lru_is_competitive(self, replacement):
        # LRU should not be dramatically worse than the alternatives on
        # these workloads (it is the paper's baseline assumption).
        for name in replacement.cpi:
            lru = replacement.cpi[name]["lru"]
            best = min(replacement.cpi[name].values())
            assert lru <= best * 2.0 + 1e-9

    def test_render(self, replacement):
        assert "replacement policy" in replacement.render()


class TestSplit:
    @pytest.fixture(scope="class")
    def split(self):
        return run_split_ablation(SCALE)

    def test_utilisation_in_unit_range(self, split):
        for value in split.large_utilisation.values():
            assert 0.0 <= value <= 1.0

    def test_no_promotions_leaves_large_tlb_idle(self, split):
        # espresso never promotes: its large half is wasted hardware.
        assert split.large_utilisation["espresso"] == 0.0

    def test_render(self, split):
        assert "split TLB" in split.render()


class TestMultiprogramming:
    @pytest.fixture(scope="class")
    def multi(self):
        return run_multiprogramming_ablation(SCALE, quanta=(2_000, 8_000))

    def test_mix_is_worse_than_best_solo(self, multi):
        # Context switching adds cold/conflict misses over the footprint
        # union: the mix cannot beat the *easiest* solo program.
        for value in multi.mixed_cpi.values():
            assert value >= min(multi.solo_cpi.values())

    def test_asid_never_loses_to_flush(self, multi):
        # Keeping entries across switches can only help.
        for quantum in multi.quanta:
            assert (
                multi.mixed_cpi[("asid", quantum)]
                <= multi.mixed_cpi[("flush", quantum)] + 1e-9
            )

    def test_longer_quanta_help_the_flush_design(self, multi):
        # Fewer switches amortise the flush cost.
        short, long = multi.quanta
        assert (
            multi.mixed_cpi[("flush", long)]
            <= multi.mixed_cpi[("flush", short)] + 1e-9
        )

    def test_disjoint_baseline_covers_every_quantum(self, multi):
        # The disjoint-address-space reference must compare like-for-like
        # with the flush/asid rows, not only at the last quantum.
        assert set(multi.disjoint_cpi) == set(multi.quanta)
        for value in multi.disjoint_cpi.values():
            assert value >= min(multi.solo_cpi.values())

    def test_render(self, multi):
        rendered = multi.render()
        assert "multiprogramming" in rendered
        for quantum in multi.quanta:
            assert f"disjoint address spaces, quantum={quantum}" in rendered


class TestWalkCost:
    @pytest.fixture(scope="class")
    def walkcost(self):
        from repro.experiments import run_walkcost_ablation

        return run_walkcost_ablation(SCALE)

    def test_fractions_and_factors_in_range(self, walkcost):
        for name, fraction in walkcost.large_miss_fraction.items():
            assert 0.0 <= fraction <= 1.0, name
            assert 1.0 <= walkcost.blended_factor[name] <= (
                walkcost.large_cost / walkcost.small_cost
            )

    def test_promotion_starved_programs_pay_no_walk_overhead(self, walkcost):
        # espresso/worm never promote: all misses are small-page walks.
        assert walkcost.blended_factor["espresso"] == pytest.approx(1.0)
        assert walkcost.blended_factor["worm"] == pytest.approx(1.0)

    def test_promoting_programs_pay_more(self, walkcost):
        assert (
            walkcost.blended_factor["matrix300"]
            > walkcost.blended_factor["espresso"]
        )

    def test_render(self, walkcost):
        assert "walk-derived penalty" in walkcost.render()


class TestMemDemand:
    @pytest.fixture(scope="class")
    def memdemand(self):
        from repro.experiments import run_memdemand

        return run_memdemand(smoke_scale(trace_length=50_000, window=6_000))

    def test_fault_ratios_monotone_in_memory(self, memdemand):
        for name in memdemand.workloads():
            for scheme in ("4KB", "32KB", "4KB/32KB"):
                rates = [
                    memdemand.fault_ratio[(name, scheme, memory)]
                    for memory in memdemand.memory_sizes
                ]
                assert rates == sorted(rates, reverse=True), (name, scheme)

    def test_sparse_program_pays_for_32kb_under_pressure(self, memdemand):
        # worm's inflated 32KB working set faults more than its 4KB one
        # at the tightest memory budget — the paper's Section 3.2 warning.
        tight = memdemand.memory_sizes[0]
        assert (
            memdemand.fault_ratio[("worm", "32KB", tight)]
            > memdemand.fault_ratio[("worm", "4KB", tight)]
        )

    def test_two_size_tracks_4kb_for_sparse_programs(self, memdemand):
        tight = memdemand.memory_sizes[0]
        assert memdemand.fault_ratio[("worm", "4KB/32KB", tight)] <= (
            1.2 * memdemand.fault_ratio[("worm", "4KB", tight)]
        )

    def test_render(self, memdemand):
        assert "Memory demand" in memdemand.render()


class TestTwoLevel:
    @pytest.fixture(scope="class")
    def twolevel(self):
        from repro.experiments import run_twolevel_ablation

        return run_twolevel_ablation(SCALE)

    def test_l2_catches_most_l1_misses(self, twolevel):
        # A 32-entry L2 behind a 4-entry L1 should satisfy the bulk of
        # L1 misses for these working sets.
        for name, rate in twolevel.l2_hit_rate.items():
            assert 0.0 <= rate <= 1.0
        assert max(twolevel.l2_hit_rate.values()) > 0.3

    def test_hierarchy_competitive_with_flat(self, twolevel):
        # The hierarchy has double the total entries; even paying L2-hit
        # stalls it should not be dramatically worse than the flat 16e.
        for name in twolevel.flat_cpi:
            assert twolevel.hierarchy_cpi[name] <= (
                2.0 * twolevel.flat_cpi[name] + 0.05
            ), name

    def test_render(self, twolevel):
        assert "two-level TLB" in twolevel.render()
