"""Tests for repro.mem.address: page arithmetic and translation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PageSizeError
from repro.mem.address import (
    align_down,
    align_up,
    is_aligned,
    page_base,
    page_number,
    page_numbers_array,
    page_offset,
    page_span,
    translate,
)
from repro.types import PAGE_4KB, PAGE_32KB

addresses = st.integers(min_value=0, max_value=2**32 - 1)
page_sizes = st.sampled_from([512, 4096, 8192, 32768, 65536])


class TestPageDecomposition:
    def test_page_number_and_offset(self):
        assert page_number(0x12345, PAGE_4KB) == 0x12
        assert page_offset(0x12345, PAGE_4KB) == 0x345
        assert page_base(0x12345, PAGE_4KB) == 0x12000

    @given(addresses, page_sizes)
    def test_decomposition_reconstructs_address(self, address, page_size):
        reconstructed = (
            page_number(address, page_size) * page_size
            + page_offset(address, page_size)
        )
        assert reconstructed == address

    @given(addresses, page_sizes)
    def test_page_base_is_aligned(self, address, page_size):
        assert is_aligned(page_base(address, page_size), page_size)


class TestAlignment:
    def test_align_down_up(self):
        assert align_down(0x12345, PAGE_4KB) == 0x12000
        assert align_up(0x12345, PAGE_4KB) == 0x13000
        assert align_up(0x12000, PAGE_4KB) == 0x12000

    @given(addresses, page_sizes)
    def test_align_bracket(self, address, page_size):
        down = align_down(address, page_size)
        up = align_up(address, page_size)
        assert down <= address <= up
        assert up - down in (0, page_size)

    def test_alignment_requires_power_of_two(self):
        with pytest.raises(PageSizeError):
            is_aligned(0, 3000)


class TestTranslate:
    def test_concatenation(self):
        physical = translate(0x12345, 0xABC000, PAGE_4KB)
        assert physical == 0xABC345

    def test_large_page_translation(self):
        virtual = 5 * PAGE_32KB + 0x1234
        physical = translate(virtual, 9 * PAGE_32KB, PAGE_32KB)
        assert physical == 9 * PAGE_32KB + 0x1234

    def test_unaligned_frame_rejected(self):
        with pytest.raises(PageSizeError):
            translate(0x12345, 0xABC123, PAGE_4KB)

    @given(addresses)
    def test_translation_preserves_offset(self, virtual):
        physical = translate(virtual, 7 * PAGE_4KB, PAGE_4KB)
        assert page_offset(physical, PAGE_4KB) == page_offset(virtual, PAGE_4KB)


class TestVectorised:
    def test_page_numbers_array_matches_scalar(self):
        raw = np.array([0, 1, 4095, 4096, 0xFFFFFFFF], dtype=np.uint32)
        vector = page_numbers_array(raw, PAGE_4KB)
        scalar = [page_number(int(a), PAGE_4KB) for a in raw]
        assert vector.tolist() == scalar


class TestPageSpan:
    def test_single_page(self):
        assert list(page_span(0x1000, 1, PAGE_4KB)) == [1]

    def test_straddling_region(self):
        assert list(page_span(0xFFF, 2, PAGE_4KB)) == [0, 1]

    def test_exact_pages(self):
        assert list(page_span(0, 3 * PAGE_4KB, PAGE_4KB)) == [0, 1, 2]

    def test_empty_region(self):
        assert list(page_span(0x1000, 0, PAGE_4KB)) == []

    @given(addresses, st.integers(min_value=1, max_value=1 << 20), page_sizes)
    def test_span_covers_endpoints(self, start, length, page_size):
        span = page_span(start, length, page_size)
        assert span[0] == page_number(start, page_size)
        assert span[-1] == page_number(start + length - 1, page_size)
