"""Tests for the page-size advisor."""

import math

import pytest

from repro.analysis import (
    RECOMMEND_BASELINE,
    advise,
)
from repro.workloads import generate_trace

LENGTH = 80_000
WINDOW = 10_000


@pytest.fixture(scope="module")
def matrix_report():
    trace = generate_trace("matrix300", LENGTH, seed=0)
    return advise(trace, window=WINDOW)


@pytest.fixture(scope="module")
def espresso_report():
    trace = generate_trace("espresso", LENGTH, seed=0)
    return advise(trace, window=WINDOW)


class TestVerdicts:
    def test_matrix300_gets_large_pages_in_some_form(self, matrix_report):
        # matrix300 is the flagship beneficiary; the advisor must not
        # recommend staying at 4KB.
        assert matrix_report.verdict != RECOMMEND_BASELINE
        assert matrix_report.promotions > 0
        assert matrix_report.promoted_share > 0.5

    def test_espresso_stays_at_baseline(self, espresso_report):
        assert espresso_report.verdict == RECOMMEND_BASELINE
        assert espresso_report.promotions == 0
        assert any(
            "never fires" in reason for reason in espresso_report.reasons
        )

    def test_reasons_are_present(self, matrix_report, espresso_report):
        assert matrix_report.reasons
        assert espresso_report.reasons


class TestReportContents:
    def test_inflation_fields(self, matrix_report):
        assert matrix_report.ws_inflation["32KB"] >= 1.0
        assert (
            matrix_report.ws_inflation["4KB/32KB"]
            <= matrix_report.ws_inflation["32KB"] + 1e-9
        )

    def test_critical_penalty_positive_for_winner(self, matrix_report):
        assert (
            math.isinf(matrix_report.critical_penalty_percent)
            or matrix_report.critical_penalty_percent > 0
        )

    def test_reference_capacity_included(self, matrix_report):
        assert (
            matrix_report.reference_entries
            in matrix_report.crossover.capacities
        )

    def test_render_mentions_verdict(self, matrix_report):
        text = matrix_report.render()
        assert "verdict:" in text
        assert matrix_report.workload in text

    def test_custom_reference_entries(self):
        trace = generate_trace("li", 40_000, seed=0)
        report = advise(
            trace, window=5_000, reference_entries=8, capacities=(8, 32)
        )
        assert report.reference_entries == 8
        assert 8 in report.crossover.capacities
