"""Tests for the page-size advisor."""

import math

import pytest

from repro.analysis import (
    RECOMMEND_BASELINE,
    RECOMMEND_SINGLE_LARGE,
    RECOMMEND_TWO_SIZES,
    advise,
)
from repro.analysis.advisor import decide_verdict
from repro.errors import ConfigurationError
from repro.workloads import generate_trace

LENGTH = 80_000
WINDOW = 10_000


@pytest.fixture(scope="module")
def matrix_report():
    trace = generate_trace("matrix300", LENGTH, seed=0)
    return advise(trace, window=WINDOW)


@pytest.fixture(scope="module")
def espresso_report():
    trace = generate_trace("espresso", LENGTH, seed=0)
    return advise(trace, window=WINDOW)


class TestVerdicts:
    def test_matrix300_gets_large_pages_in_some_form(self, matrix_report):
        # matrix300 is the flagship beneficiary; the advisor must not
        # recommend staying at 4KB.
        assert matrix_report.verdict != RECOMMEND_BASELINE
        assert matrix_report.promotions > 0
        assert matrix_report.promoted_share > 0.5

    def test_espresso_stays_at_baseline(self, espresso_report):
        assert espresso_report.verdict == RECOMMEND_BASELINE
        assert espresso_report.promotions == 0
        assert any(
            "never fires" in reason for reason in espresso_report.reasons
        )

    def test_reasons_are_present(self, matrix_report, espresso_report):
        assert matrix_report.reasons
        assert espresso_report.reasons


class TestReportContents:
    def test_inflation_fields(self, matrix_report):
        assert matrix_report.ws_inflation["32KB"] >= 1.0
        assert (
            matrix_report.ws_inflation["4KB/32KB"]
            <= matrix_report.ws_inflation["32KB"] + 1e-9
        )

    def test_critical_penalty_positive_for_winner(self, matrix_report):
        assert (
            math.isinf(matrix_report.critical_penalty_percent)
            or matrix_report.critical_penalty_percent > 0
        )

    def test_reference_capacity_included(self, matrix_report):
        assert (
            matrix_report.reference_entries
            in matrix_report.crossover.capacities
        )

    def test_render_mentions_verdict(self, matrix_report):
        text = matrix_report.render()
        assert "verdict:" in text
        assert matrix_report.workload in text

    def test_custom_reference_entries(self):
        trace = generate_trace("li", 40_000, seed=0)
        report = advise(
            trace, window=5_000, reference_entries=8, capacities=(8, 32)
        )
        assert report.reference_entries == 8
        assert 8 in report.crossover.capacities


def _verdict(**overrides):
    kwargs = dict(
        baseline_cpi=1.0,
        two_cpi=0.5,
        large_cpi=1.0,
        inflation={"32KB": 2.0, "4KB/32KB": 1.1},
        critical=50.0,
        promotions=10,
        reference_entries=16,
    )
    kwargs.update(overrides)
    return decide_verdict(**kwargs)


class TestDecideVerdict:
    """Each verdict path, exercised directly on the decision function."""

    def test_two_size_win(self):
        verdict, reasons = _verdict()
        assert verdict == RECOMMEND_TWO_SIZES
        assert any("cut CPI_TLB" in reason for reason in reasons)
        assert any("slower miss handler" in reason for reason in reasons)

    def test_baseline_when_two_sizes_lose(self):
        verdict, reasons = _verdict(two_cpi=1.2)
        assert verdict == RECOMMEND_BASELINE
        assert any("surcharge" in reason for reason in reasons)

    def test_baseline_mentions_dead_promotion_policy(self):
        verdict, reasons = _verdict(two_cpi=1.2, promotions=0)
        assert verdict == RECOMMEND_BASELINE
        assert any("never fires" in reason for reason in reasons)

    def test_single_large_when_two_sizes_also_win(self):
        verdict, reasons = _verdict(
            large_cpi=0.3, inflation={"32KB": 1.1, "4KB/32KB": 1.05}
        )
        assert verdict == RECOMMEND_SINGLE_LARGE
        assert any("cheaper still" in reason for reason in reasons)

    def test_single_large_when_two_sizes_lose(self):
        # The regression: the all-32KB check used to live only inside
        # the two-sizes-win branch, so a dense footprint with a
        # promotion-hostile layout (two sizes lose, 32KB wins big) fell
        # through to BASELINE.
        verdict, reasons = _verdict(
            two_cpi=1.2,
            large_cpi=0.5,
            inflation={"32KB": 1.1, "4KB/32KB": 1.3},
        )
        assert verdict == RECOMMEND_SINGLE_LARGE
        assert any("outright" in reason for reason in reasons)

    def test_inflation_gate_blocks_single_large(self):
        verdict, _ = _verdict(
            two_cpi=1.2,
            large_cpi=0.5,
            inflation={"32KB": 1.3, "4KB/32KB": 1.3},
        )
        assert verdict == RECOMMEND_BASELINE

    def test_large_must_beat_winner_not_loser(self):
        # 32KB beats the baseline but not the two-size winner by the
        # 0.8 margin -> stays with two sizes.
        verdict, _ = _verdict(
            two_cpi=0.5,
            large_cpi=0.45,
            inflation={"32KB": 1.1, "4KB/32KB": 1.05},
        )
        assert verdict == RECOMMEND_TWO_SIZES


class TestPenaltyThreading:
    def test_critical_penalty_invariant_under_base_penalty(self):
        # The critical margin is an MPI ratio, independent of the
        # penalty charged — unless a hardcoded 20.0 sneaks back into
        # the baseline reconstruction.
        trace = generate_trace("matrix300", LENGTH, seed=0)
        default = advise(trace, window=WINDOW)
        doubled = advise(trace, window=WINDOW, base_penalty=40.0)
        assert default.critical_penalty_percent == pytest.approx(
            doubled.critical_penalty_percent, rel=1e-6
        )
        assert doubled.verdict == default.verdict

    def test_penalty_factor_scales_two_size_cpi(self, matrix_report):
        trace = generate_trace("matrix300", LENGTH, seed=0)
        harsh = advise(trace, window=WINDOW, penalty_factor=2.5)
        reference = matrix_report.reference_entries
        assert (
            harsh.crossover.cpi["4KB/32KB"][reference]
            == pytest.approx(
                matrix_report.crossover.cpi["4KB/32KB"][reference]
                * (2.5 / 1.25),
                rel=1e-9,
            )
        )


class TestCapacityHandling:
    def test_capacities_normalized_and_recorded(self):
        trace = generate_trace("li", 40_000, seed=0)
        report = advise(
            trace, window=5_000, reference_entries=16,
            capacities=(32, 8, 32),
        )
        assert report.capacities == (8, 16, 32)
        assert tuple(report.crossover.capacities) == (8, 16, 32)

    def test_reference_entries_must_be_positive(self):
        trace = generate_trace("li", 40_000, seed=0)
        with pytest.raises(ConfigurationError, match="reference_entries"):
            advise(trace, window=5_000, reference_entries=0)

    def test_capacities_must_be_positive(self):
        trace = generate_trace("li", 40_000, seed=0)
        with pytest.raises(ConfigurationError, match="capacities"):
            advise(trace, window=5_000, capacities=(8, -4))
