"""Tests for the sizing and crossover analysis helpers."""

import numpy as np
import pytest

from repro.analysis import (
    entries_required,
    miss_ratio_curve,
    reach_equivalent_entries,
    scheme_ranking,
    two_size_crossover,
    working_set_entries,
)
from repro.errors import ConfigurationError
from repro.trace import Trace
from repro.types import PAGE_4KB, PAGE_32KB
from repro.workloads import generate_trace


def looping_trace(pages, repeats=200):
    addresses = np.tile(
        np.arange(pages, dtype=np.uint32) * PAGE_4KB, repeats
    )
    return Trace(addresses, name="loop", refs_per_instruction=1.25)


class TestEntriesRequired:
    def test_loop_needs_exactly_its_footprint(self):
        # A cyclic loop over 10 pages thrashes any LRU TLB smaller than
        # 10 entries and becomes near-perfect at 10.
        trace = looping_trace(10)
        result = entries_required(trace, PAGE_4KB, target_miss_ratio=0.01)
        assert result.entries == 10
        assert result.achieved_miss_ratio < 0.01
        assert result.reach == "40KB"

    def test_unreachable_target(self):
        rng = np.random.default_rng(3)
        trace = Trace(
            (rng.integers(0, 4000, size=20_000) * PAGE_4KB).astype(np.uint32)
        )
        result = entries_required(
            trace, PAGE_4KB, target_miss_ratio=0.001, max_entries=16
        )
        assert result.entries is None
        assert result.reach is None
        assert result.achieved_miss_ratio > 0.001

    def test_larger_pages_need_fewer_entries(self):
        trace = generate_trace("x11perf", 50_000, seed=0)
        small = entries_required(trace, PAGE_4KB, 0.01)
        large = entries_required(trace, PAGE_32KB, 0.01)
        if small.entries is not None and large.entries is not None:
            assert large.entries <= small.entries

    def test_invalid_arguments(self):
        trace = looping_trace(4)
        with pytest.raises(ConfigurationError):
            entries_required(trace, PAGE_4KB, 0.0)
        with pytest.raises(ConfigurationError):
            entries_required(trace, PAGE_4KB, 0.5, max_entries=0)


class TestMissRatioCurve:
    def test_monotone_non_increasing(self):
        trace = generate_trace("li", 40_000, seed=0)
        curve = miss_ratio_curve(trace, PAGE_4KB, [1, 2, 4, 8, 16, 32])
        values = [curve[c] for c in (1, 2, 4, 8, 16, 32)]
        assert values == sorted(values, reverse=True)

    def test_empty_capacities_rejected(self):
        with pytest.raises(ConfigurationError):
            miss_ratio_curve(looping_trace(4), PAGE_4KB, [])


class TestReachArithmetic:
    def test_paper_example(self):
        # A 16-entry 4KB TLB's reach equals a 2-entry 32KB TLB's.
        assert reach_equivalent_entries(16, PAGE_4KB, PAGE_32KB) == 2

    def test_never_below_one(self):
        assert reach_equivalent_entries(1, PAGE_4KB, PAGE_32KB) == 1

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            reach_equivalent_entries(0, PAGE_4KB, PAGE_32KB)


class TestWorkingSetEntries:
    def test_loop_working_set(self):
        trace = looping_trace(10)
        entries = working_set_entries(trace, PAGE_4KB, window=100)
        assert 9.0 <= entries <= 10.0


class TestCrossover:
    @pytest.fixture(scope="class")
    def matrix_result(self):
        trace = generate_trace("matrix300", 60_000, seed=0)
        return two_size_crossover(trace, window=8_000, capacities=(4, 8, 16, 32))

    def test_all_schemes_swept(self, matrix_result):
        assert set(matrix_result.cpi) == {"4KB", "8KB", "32KB", "4KB/32KB"}
        for per_capacity in matrix_result.cpi.values():
            assert set(per_capacity) == {4, 8, 16, 32}

    def test_matrix300_two_size_wins_somewhere(self, matrix_result):
        assert matrix_result.two_size_wins_at()

    def test_winner_consistent_with_advantage(self, matrix_result):
        for capacity in matrix_result.capacities:
            if matrix_result.winner(capacity) == "4KB/32KB":
                assert matrix_result.advantage(capacity) > 0

    def test_ranking_orders_by_cpi(self, matrix_result):
        ranking = scheme_ranking(matrix_result)
        for capacity, order in ranking.items():
            values = [matrix_result.cpi[s][capacity] for s in order]
            assert values == sorted(values)

    def test_empty_capacities_rejected(self):
        trace = looping_trace(4)
        with pytest.raises(ConfigurationError):
            two_size_crossover(trace, window=10, capacities=())
