"""The repro-bench CLI and its baseline regression gate.

The comparator's exit-code contract is what CI relies on: 0 when the
suite holds up, 1 on a measured regression, 2 when the gate itself is
broken (missing/corrupt baseline) — the last two must never be
conflated, or a deleted baseline would read as "performance fine".
"""

import json
from pathlib import Path

import pytest

from repro.errors import BenchmarkError
from repro.perf import bench
from repro.perf.baseline import (
    REPORT_SCHEMA,
    check_floors,
    compare_reports,
    load_report,
)
from repro.perf.bench import main, run_suite, write_report


def _report(speedups, revision="r1"):
    """A synthetic, schema-valid report with the given unit speedups."""
    return {
        "schema": REPORT_SCHEMA,
        "revision": revision,
        "quick": True,
        "seed": 0,
        "trace_length": 1000,
        "python": "3.11.0",
        "numpy": "2.0.0",
        "platform": "Linux-x86_64",
        "peak_rss_kb": 1,
        "wall_seconds": 0.1,
        "units": [
            {
                "name": name,
                "workload": "espresso",
                "references": 1000,
                "repeats": 1,
                "scalar_seconds": speedup,
                "vector_seconds": 1.0,
                "scalar_refs_per_sec": 1000.0 / speedup,
                "vector_refs_per_sec": 1000.0,
                "speedup": speedup,
            }
            for name, speedup in speedups.items()
        ],
    }


class TestComparator:
    def test_regression_detected(self):
        baseline = _report({"a": 10.0, "b": 3.0})
        current = _report({"a": 8.5, "b": 3.1})  # a: -15% with 10% allowed
        result = compare_reports(current, baseline, threshold_percent=10.0)
        assert not result.ok
        assert [unit.name for unit in result.regressions] == ["a"]

    def test_improvement_and_small_noise_accepted(self):
        baseline = _report({"a": 10.0, "b": 3.0})
        current = _report({"a": 9.5, "b": 4.0})  # -5% and +33%
        result = compare_reports(current, baseline, threshold_percent=10.0)
        assert result.ok
        assert all(not unit.regressed for unit in result.units)

    def test_missing_unit_is_an_error(self):
        baseline = _report({"a": 10.0, "gone": 2.0})
        current = _report({"a": 10.0})
        with pytest.raises(BenchmarkError):
            compare_reports(current, baseline, threshold_percent=10.0)

    def test_malformed_speedup_is_an_error(self):
        baseline = _report({"a": 10.0})
        current = _report({"a": 10.0})
        del current["units"][0]["speedup"]
        with pytest.raises(BenchmarkError):
            compare_reports(current, baseline, threshold_percent=10.0)

    def test_per_unit_threshold_overrides_global(self):
        # a drops 40%: a regression at the global 10%, but unit "a"
        # carries its own 50% threshold (as the suite-level units do).
        baseline = _report({"a": 10.0, "b": 3.0})
        baseline["units"][0]["threshold_percent"] = 50.0
        current = _report({"a": 6.0, "b": 3.0})
        result = compare_reports(current, baseline, threshold_percent=10.0)
        assert result.ok
        # ... and a 60% drop still trips the per-unit threshold.
        current = _report({"a": 4.0, "b": 3.0})
        result = compare_reports(current, baseline, threshold_percent=10.0)
        assert [unit.name for unit in result.regressions] == ["a"]

    def test_bad_per_unit_threshold_is_an_error(self):
        baseline = _report({"a": 10.0})
        current = _report({"a": 10.0})
        baseline["units"][0]["threshold_percent"] = "wide"
        with pytest.raises(BenchmarkError, match="non-numeric"):
            compare_reports(current, baseline, threshold_percent=10.0)
        baseline["units"][0]["threshold_percent"] = -5.0
        with pytest.raises(BenchmarkError, match="negative"):
            compare_reports(current, baseline, threshold_percent=10.0)


class TestFloors:
    """Absolute speedup floors: the check a relative baseline cannot do."""

    def test_all_floors_hold(self):
        report = _report({"a": 2.0, "b": 0.9})
        assert check_floors(report, {"a": 1.0}) == []
        assert check_floors(report, {"a": 1.0, "b": 0.5}) == []

    def test_violation_reported_with_both_numbers(self):
        report = _report({"a": 0.8})
        violations = check_floors(report, {"a": 1.0})
        assert len(violations) == 1
        assert violations[0].name == "a"
        assert violations[0].measured == 0.8
        assert "below the required floor 1.00x" in violations[0].describe()

    def test_unknown_unit_is_an_error_not_a_pass(self):
        report = _report({"a": 2.0})
        with pytest.raises(BenchmarkError, match="unknown benchmark unit"):
            check_floors(report, {"gone": 1.0})


class TestLoadReport:
    def test_missing_file(self, tmp_path):
        with pytest.raises(BenchmarkError, match="cannot read"):
            load_report(tmp_path / "absent.json")

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(BenchmarkError, match="not valid JSON"):
            load_report(path)

    def test_wrong_schema(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": "repro-bench/0", "units": [{}]}))
        with pytest.raises(BenchmarkError, match="schema"):
            load_report(path)

    def test_empty_units(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"schema": REPORT_SCHEMA, "units": []}))
        with pytest.raises(BenchmarkError, match="no benchmark units"):
            load_report(path)

    def test_round_trip(self, tmp_path):
        report = _report({"a": 2.0})
        path = write_report(report, tmp_path)
        assert path.name == "BENCH_r1.json"
        assert load_report(path) == report


class TestCLI:
    @pytest.fixture()
    def canned_suite(self, monkeypatch):
        """Replace the (slow) measurement with a canned report."""
        canned = _report({"a": 10.0, "b": 3.0}, revision="deadbee")

        def fake_run_suite(**kwargs):
            return canned

        monkeypatch.setattr(bench, "run_suite", fake_run_suite)
        return canned

    def test_exit_zero_without_check(self, canned_suite, tmp_path, capsys):
        code = main(["--output-dir", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "BENCH_deadbee.json").exists()
        assert "speedup 10.0x" in capsys.readouterr().out

    def test_exit_zero_when_check_passes(self, canned_suite, tmp_path):
        baseline = write_report(_report({"a": 9.8, "b": 3.0}), tmp_path)
        code = main(
            [
                "--output-dir",
                str(tmp_path),
                "--check",
                "--baseline",
                str(baseline),
                "--threshold",
                "10",
            ]
        )
        assert code == 0

    def test_exit_one_on_regression(self, canned_suite, tmp_path, capsys):
        baseline = write_report(
            _report({"a": 20.0, "b": 3.0}), tmp_path
        )  # current a=10 is a 50% drop
        code = main(
            [
                "--output-dir",
                str(tmp_path),
                "--check",
                "--baseline",
                str(baseline),
                "--threshold",
                "10",
            ]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_exit_two_on_missing_baseline(self, canned_suite, tmp_path, capsys):
        code = main(
            [
                "--output-dir",
                str(tmp_path),
                "--check",
                "--baseline",
                str(tmp_path / "nope.json"),
            ]
        )
        assert code == 2
        assert "repro-bench:" in capsys.readouterr().err

    def test_exit_two_on_corrupt_baseline(self, canned_suite, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("]", encoding="utf-8")
        code = main(
            [
                "--output-dir",
                str(tmp_path),
                "--check",
                "--baseline",
                str(bad),
            ]
        )
        assert code == 2

    def test_check_without_baseline_is_an_error(self, canned_suite, tmp_path):
        assert main(["--output-dir", str(tmp_path), "--check"]) == 2

    def test_floor_pass_prints_confirmation(self, canned_suite, tmp_path, capsys):
        code = main(
            ["--output-dir", str(tmp_path), "--floor", "a=1.0", "--floor", "b=2.5"]
        )
        assert code == 0
        assert "floors passed (2 checked)" in capsys.readouterr().out

    def test_floor_violation_exits_one(self, canned_suite, tmp_path, capsys):
        code = main(["--output-dir", str(tmp_path), "--floor", "b=5.0"])
        assert code == 1
        err = capsys.readouterr().err
        assert "below the required floor 5.00x" in err
        assert "absolute speedup floor not met" in err

    def test_floor_unknown_unit_exits_two(self, canned_suite, tmp_path, capsys):
        code = main(["--output-dir", str(tmp_path), "--floor", "nope=1.0"])
        assert code == 2
        assert "unknown benchmark unit" in capsys.readouterr().err

    def test_floor_bad_spec_exits_two(self, canned_suite, tmp_path, capsys):
        assert main(["--output-dir", str(tmp_path), "--floor", "a"]) == 2
        assert main(["--output-dir", str(tmp_path), "--floor", "a=fast"]) == 2

    def test_profile_flag_prints_profile_section(
        self, canned_suite, tmp_path, capsys
    ):
        code = main(["--output-dir", str(tmp_path), "--profile"])
        assert code == 0
        assert "profile:" in capsys.readouterr().out

    def test_list_units(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "single_size/32e-2way" in out
        assert "policy/working-set" in out


class TestSuiteSmoke:
    def test_quick_suite_produces_schema_valid_report(self, tmp_path):
        report = run_suite(quick=True, repeats=1, revision="test")
        path = write_report(report, tmp_path)
        loaded = load_report(path)
        names = [unit["name"] for unit in loaded["units"]]
        expected = [unit.name for unit in bench.SUITE] + list(bench.SUITE_LEVEL)
        assert names == expected
        headline = loaded["units"][0]
        assert headline["name"] == "single_size/32e-2way"
        assert headline["speedup"] > 1.0  # vector must actually win
        assert headline["vector_refs_per_sec"] > headline["scalar_refs_per_sec"]
        assert loaded["peak_rss_kb"] > 0
        sweep = next(
            unit
            for unit in loaded["units"]
            if unit["name"] == "suite/parallel-sweep"
        )
        # The second scaling point (double the workers) ships in every
        # report so CI can watch scaling, not just a single ratio.
        assert sweep["jobs4"] == sweep["jobs"] * 2
        assert sweep["parallel4_seconds"] > 0
        assert sweep["speedup_jobs4"] > 0
        # The committed CI baseline must match the pinned suite.
        committed_path = (
            Path(__file__).resolve().parent.parent / "benchmarks" / "baseline.json"
        )
        committed = load_report(committed_path)
        assert [u["name"] for u in committed["units"]] == names
